"""The hardening pass manager: pipelines, the repair loop and provenance.

A :class:`PassPipeline` is a list of *base* passes (placement, extraction)
plus a list of *repair* passes run in a closed loop until every channel of
the design satisfies ``d_A ≤ bound`` (or the loop converges / hits its
iteration budget).  The classic entry points of :mod:`repro.pnr.flows` are
one-line configurations:

* :func:`flat_pipeline` — ``[FlatPlacementPass, ExtractionPass]``;
* :func:`hierarchical_pipeline` — ``[HierarchicalPlacementPass,
  ExtractionPass]``;
* :func:`hardening_pipeline` — either base flow followed by the repair loop
  (fence resize → criterion-guided reposition → dummy-load equalization).

Every pass execution is recorded as a :class:`PipelineRecord` (criterion
before/after, nets re-extracted incrementally vs full, dummy capacitance
added), so a :class:`HardeningResult` carries the complete provenance of how
a design was driven below the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..circuits.netlist import Netlist
from ..core.criterion import CriterionReport
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..obs.telemetry import current
from ..pnr.flows import PlacedDesign
from ..pnr.floorplan import Floorplan
from ..pnr.placement import AnnealingSchedule
from .passes import (
    DummyLoadPass,
    ExtractionPass,
    FenceResizePass,
    FlatPlacementPass,
    HardeningError,
    HardeningPass,
    HierarchicalPlacementPass,
    PassContext,
    PassOutcome,
    RepositionPass,
)


@dataclass
class PipelineRecord:
    """Provenance of one pass execution inside a pipeline run."""

    stage: str
    iteration: int
    pass_name: str
    changed: bool
    touched_nets: int
    touched_cells: int
    dummy_cap_added_ff: float
    nets_reextracted: int
    full_extractions: int
    max_dissymmetry_after: float
    violations_after: int
    duration_s: float
    details: str = ""

    @property
    def incremental(self) -> bool:
        """True when the pass re-measured nets without a full extraction."""
        return self.full_extractions == 0 and self.nets_reextracted > 0


@dataclass
class HardeningResult:
    """Final outcome of a pipeline run, with full per-pass provenance."""

    design: PlacedDesign
    criterion: CriterionReport
    records: List[PipelineRecord] = field(default_factory=list)
    bound: Optional[float] = None
    repair_iterations: int = 0

    @property
    def max_dissymmetry(self) -> float:
        return self.criterion.max_dissymmetry

    @property
    def passed(self) -> bool:
        """True when a bound was set and every channel satisfies it."""
        return (self.bound is not None
                and self.criterion.meets_bound(self.bound))

    @property
    def netlist(self) -> Netlist:
        return self.design.netlist

    @property
    def changed(self) -> bool:
        """True when any repair pass modified the design."""
        return any(r.changed for r in self.records if r.stage == "repair")

    @property
    def dummy_cap_added_ff(self) -> float:
        return sum(r.dummy_cap_added_ff for r in self.records)

    @property
    def nets_reextracted(self) -> int:
        return sum(r.nets_reextracted for r in self.records
                   if r.stage == "repair")

    def summary(self) -> str:
        bound_text = (f" (bound {self.bound:g}: "
                      f"{'PASS' if self.passed else 'FAIL'})"
                      if self.bound is not None else "")
        return (
            f"{self.design.name} [{self.design.flow}]: "
            f"max dA = {self.max_dissymmetry:.4f} over "
            f"{len(self.criterion)} channels after "
            f"{self.repair_iterations} repair iteration(s), "
            f"+{self.dummy_cap_added_ff:.1f} fF dummy load{bound_text}"
        )

    def provenance_table(self) -> str:
        """Per-pass table of what the pipeline did (the audit trail)."""
        header = (f"{'stage':<7s} {'it':>3s} {'pass':<22s} {'chg':>4s} "
                  f"{'nets':>5s} {'cells':>6s} {'re-ext':>7s} "
                  f"{'+fF':>8s} {'max dA':>9s} {'viol':>5s} {'sec':>7s}")
        lines = [header, "-" * len(header)]
        for r in self.records:
            lines.append(
                f"{r.stage:<7s} {r.iteration:>3d} {r.pass_name:<22s} "
                f"{'yes' if r.changed else 'no':>4s} {r.touched_nets:>5d} "
                f"{r.touched_cells:>6d} "
                f"{r.nets_reextracted:>7d} {r.dummy_cap_added_ff:>8.1f} "
                f"{r.max_dissymmetry_after:>9.4f} {r.violations_after:>5d} "
                f"{r.duration_s:>7.3f}"
            )
        return "\n".join(lines)


class PassPipeline:
    """Base passes plus a closed ``repair-until(d_A ≤ bound)`` loop.

    Parameters
    ----------
    base:
        Passes establishing the design state (placement, extraction).  They
        run exactly once, in order.
    repair:
        Countermeasure passes run in a loop (each iteration runs every
        repair pass once, in order, re-evaluating the criterion after each)
        until the bound is met, no pass changes anything (convergence — in
        particular, an already-clean design is a provable no-op), or
        ``max_repair_iterations`` is reached.
    bound:
        The criterion bound of the repair loop; ``None`` disables repair.
    """

    def __init__(self, base: Sequence[HardeningPass], *,
                 repair: Sequence[HardeningPass] = (),
                 bound: Optional[float] = None,
                 max_repair_iterations: int = 5,
                 use_load_cap: bool = True,
                 name: str = "pipeline"):
        if bound is None and repair:
            raise HardeningError("repair passes need a criterion bound")
        self.base = list(base)
        self.repair = list(repair)
        self.bound = bound
        self.max_repair_iterations = max_repair_iterations
        self.use_load_cap = use_load_cap
        self.name = name

    # ----------------------------------------------------------------- hooks
    def _flow_label(self) -> tuple:
        """(flow, design-name suffix) advertised by the placement pass."""
        for step in self.base:
            flow = getattr(step, "flow", None)
            if flow:
                return flow, getattr(step, "suffix", flow)
        return "custom", "custom"

    def _record(self, context: PassContext, stage: str, iteration: int,
                outcome: PassOutcome, reextracted: int, fulls: int,
                duration: float) -> PipelineRecord:
        report = context.criterion
        return PipelineRecord(
            stage=stage,
            iteration=iteration,
            pass_name=outcome.pass_name,
            changed=outcome.changed,
            touched_nets=outcome.touched_nets,
            touched_cells=outcome.touched_cells,
            dummy_cap_added_ff=outcome.dummy_cap_added_ff,
            nets_reextracted=reextracted,
            full_extractions=fulls,
            max_dissymmetry_after=(report.max_dissymmetry
                                   if report is not None else float("nan")),
            violations_after=(report.violation_count(self.bound)
                              if report is not None and self.bound is not None
                              else 0),
            duration_s=duration,
            details=outcome.details,
        )

    def _run_pass(self, context: PassContext, step: HardeningPass,
                  stage: str, iteration: int,
                  records: List[PipelineRecord]) -> PassOutcome:
        extractor = context.extractor
        nets_before = extractor.nets_reextracted if extractor else 0
        fulls_before = extractor.full_extractions if extractor else 0
        # The span is the pass's one clock: it measures its duration even
        # under the disabled no-op telemetry, so PipelineRecord.duration_s
        # populates identically with telemetry on or off.
        with current().span("harden.pass", name=step.name, stage=stage,
                            iteration=iteration) as span:
            outcome = step.run(context)
            if stage == "repair" and outcome.changed:
                context.evaluate()
        duration = span.duration_s
        extractor = context.extractor
        reextracted = ((extractor.nets_reextracted - nets_before)
                       if extractor else 0)
        fulls = ((extractor.full_extractions - fulls_before)
                 if extractor else 0)
        records.append(self._record(context, stage, iteration, outcome,
                                    max(reextracted, 0), max(fulls, 0),
                                    duration))
        return outcome

    # ------------------------------------------------------------------- run
    def run(self, netlist: Netlist, *, seed: int = 0,
            technology: Technology = HCMOS9_LIKE,
            design_name: Optional[str] = None) -> HardeningResult:
        """Run the pipeline on a netlist and return the hardened design."""
        flow, suffix = self._flow_label()
        context = PassContext(
            netlist=netlist,
            technology=technology,
            seed=seed,
            design_name=design_name or f"{netlist.name}_{suffix}",
            use_load_cap=self.use_load_cap,
        )
        telemetry = current()
        records: List[PipelineRecord] = []
        with telemetry.span("harden.pipeline", name=self.name,
                            design=context.design_name):
            for step in self.base:
                self._run_pass(context, step, "base", 0, records)

            iterations = 0
            if self.repair and self.bound is not None:
                if context.criterion is None:
                    context.evaluate()
                for iteration in range(1, self.max_repair_iterations + 1):
                    if context.criterion.meets_bound(self.bound):
                        break
                    iterations = iteration
                    telemetry.count("repair_iterations")
                    any_change = False
                    for step in self.repair:
                        outcome = self._run_pass(context, step, "repair",
                                                 iteration, records)
                        any_change = any_change or outcome.changed
                        if context.criterion.meets_bound(self.bound):
                            break
                    if not any_change:
                        # Converged: nothing left for the passes to improve.
                        break

        extractor = context.require_extractor()
        if context.criterion is None:
            context.evaluate()
        design = PlacedDesign(
            name=context.design_name,
            flow=context.flow or flow,
            seed=seed,
            netlist=netlist,
            placement=context.require_placement(),
            routing=extractor.routing,
            extraction=extractor.extraction,
        )
        return HardeningResult(
            design=design,
            criterion=context.criterion,
            records=records,
            bound=self.bound,
            repair_iterations=iterations,
        )


# -------------------------------------------------------------------- factories
def flat_pipeline(*, utilization: float = 0.85, effort: float = 1.0,
                  schedule: Optional[AnnealingSchedule] = None,
                  security_weight: Optional[float] = None) -> PassPipeline:
    """The classic flat (reference) flow as a pass configuration."""
    return PassPipeline(
        [FlatPlacementPass(utilization=utilization, effort=effort,
                           schedule=schedule,
                           security_weight=security_weight),
         ExtractionPass()],
        name="flat",
    )


def hierarchical_pipeline(*, block_utilization: float = 0.78,
                          channel_margin_um: float = 3.0,
                          effort: float = 1.0,
                          schedule: Optional[AnnealingSchedule] = None,
                          block_order: Optional[Sequence[str]] = None,
                          floorplan: Optional[Floorplan] = None,
                          security_weight: Optional[float] = None) -> PassPipeline:
    """The classic hierarchical (constrained) flow as a pass configuration."""
    return PassPipeline(
        [HierarchicalPlacementPass(
            block_utilization=block_utilization,
            channel_margin_um=channel_margin_um, effort=effort,
            schedule=schedule, block_order=block_order, floorplan=floorplan,
            security_weight=security_weight),
         ExtractionPass()],
        name="hierarchical",
    )


#: Default repair-pass order: constrain geometry first (fences, then cell
#: moves — both free of area overhead beyond the already-placed design), and
#: close any residual imbalance with dummy loads (guaranteed convergence).
_DEFAULT_REPAIR = ("fence-resize", "reposition", "dummy-load")

_REPAIR_FACTORIES = {
    "fence-resize": lambda bound, security_weight: FenceResizePass(bound=bound),
    "reposition": lambda bound, security_weight: RepositionPass(
        bound=bound, security_weight=security_weight or 0.0),
    "dummy-load": lambda bound, security_weight: DummyLoadPass(bound=bound),
}


def _repair_passes(repair, bound: float,
                   security_weight: Optional[float] = None) -> List[HardeningPass]:
    passes: List[HardeningPass] = []
    for entry in repair:
        if isinstance(entry, str):
            try:
                passes.append(_REPAIR_FACTORIES[entry](bound, security_weight))
            except KeyError:
                raise HardeningError(
                    f"unknown repair pass {entry!r}; expected one of "
                    f"{sorted(_REPAIR_FACTORIES)}") from None
        else:
            passes.append(entry)
    return passes


def hardening_pipeline(base: Union[str, PassPipeline] = "hierarchical", *,
                       bound: float = 0.15,
                       repair: Sequence[Union[str, HardeningPass]] = _DEFAULT_REPAIR,
                       max_repair_iterations: int = 5,
                       effort: float = 1.0,
                       security_weight: Optional[float] = None,
                       **base_options) -> PassPipeline:
    """A full hardening pipeline: base flow plus the repair-until loop.

    ``base`` is ``"flat"``, ``"hierarchical"`` or an existing base
    :class:`PassPipeline` whose passes are reused; ``repair`` mixes the
    standard pass names (``"fence-resize"``, ``"reposition"``,
    ``"dummy-load"``) with ready-made pass instances.  ``base_options`` are
    forwarded to the base pipeline factory.  ``security_weight`` makes the
    base placement multi-objective (HPWL + rail dissymmetry) and arms the
    reposition pass's targeted anneal.
    """
    if isinstance(base, PassPipeline):
        base_passes = list(base.base)
        base_name = base.name
    elif base == "flat":
        base_passes = flat_pipeline(effort=effort,
                                    security_weight=security_weight,
                                    **base_options).base
        base_name = "flat"
    elif base == "hierarchical":
        base_passes = hierarchical_pipeline(effort=effort,
                                            security_weight=security_weight,
                                            **base_options).base
        base_name = "hierarchical"
    else:
        raise HardeningError(
            f"unknown base flow {base!r}; expected 'flat', 'hierarchical' "
            "or a PassPipeline")
    return PassPipeline(
        base_passes,
        repair=_repair_passes(repair, bound, security_weight),
        bound=bound,
        max_repair_iterations=max_repair_iterations,
        name=f"harden-{base_name}",
    )


def harden_design(netlist: Netlist, *, base: Union[str, PassPipeline] = "hierarchical",
                  bound: float = 0.15, seed: int = 0,
                  technology: Technology = HCMOS9_LIKE,
                  design_name: Optional[str] = None,
                  repair: Sequence[Union[str, HardeningPass]] = _DEFAULT_REPAIR,
                  max_repair_iterations: int = 5,
                  effort: float = 1.0,
                  security_weight: Optional[float] = None,
                  **base_options) -> HardeningResult:
    """One-call hardening: place, extract and repair until ``d_A ≤ bound``."""
    pipeline = hardening_pipeline(
        base, bound=bound, repair=repair,
        max_repair_iterations=max_repair_iterations, effort=effort,
        security_weight=security_weight,
        **base_options)
    return pipeline.run(netlist, seed=seed, technology=technology,
                        design_name=design_name)
