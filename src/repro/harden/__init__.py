"""Criterion-driven hardening: composable place-and-route pass pipelines.

The paper's headline result is the *improvement* loop: measure the channel
dissymmetry criterion ``d_A = |Cl0 − Cl1| / min(Cl0, Cl1)`` after place and
route, then constrain the physical design until every channel satisfies a
bound.  This package turns that loop into a pass-manager architecture:

* :mod:`repro.harden.passes` — the pass protocol (:class:`HardeningPass`),
  the shared :class:`PassContext`, the base flow passes (flat / hierarchical
  placement, extraction) and the three *repair* passes of the countermeasure
  layer: dummy-load insertion (:class:`DummyLoadPass`), criterion-guided cell
  re-placement (:class:`RepositionPass`) and fence resizing
  (:class:`FenceResizePass`);
* :mod:`repro.harden.pipeline` — :class:`PassPipeline` (base passes plus a
  closed ``repair-until(d_A ≤ bound)`` loop), the :class:`HardeningResult`
  provenance record, and the pipeline factories the classic
  :mod:`repro.pnr.flows` entry points are now configurations of.

Repair iterations stay fast across layers: nets touched by a pass are
re-measured through :class:`repro.pnr.extraction.IncrementalExtractor`
(incremental re-extraction keyed on the netlist topology version) and the
criterion is re-evaluated as one vectorized pass over the dense capacitance
matrix of :mod:`repro.core.criterion`.
"""

from .passes import (
    DummyLoadPass,
    ExtractionPass,
    FenceResizePass,
    FlatPlacementPass,
    HardeningError,
    HardeningPass,
    HierarchicalPlacementPass,
    PassContext,
    PassOutcome,
    RepositionPass,
)
from .pipeline import (
    HardeningResult,
    PassPipeline,
    PipelineRecord,
    flat_pipeline,
    harden_design,
    hardening_pipeline,
    hierarchical_pipeline,
)

__all__ = [
    "DummyLoadPass",
    "ExtractionPass",
    "FenceResizePass",
    "FlatPlacementPass",
    "HardeningError",
    "HardeningPass",
    "HierarchicalPlacementPass",
    "PassContext",
    "PassOutcome",
    "RepositionPass",
    "HardeningResult",
    "PassPipeline",
    "PipelineRecord",
    "flat_pipeline",
    "harden_design",
    "hardening_pipeline",
    "hierarchical_pipeline",
]
