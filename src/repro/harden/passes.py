"""Hardening passes: the composable units of the secure-flow pass manager.

A pass is any object with a ``name`` and a ``run(context) → PassOutcome``
method.  The :class:`PassContext` carries the mutable design state — netlist,
placement, incremental extractor, current criterion report — through the
pipeline, so passes compose freely: the classic flat and hierarchical flows
are just ``[placement pass, extraction pass]`` configurations, and the
countermeasure layer adds *repair* passes that perturb the placed design to
drive the dissymmetry criterion down:

* :class:`DummyLoadPass` — equalize the rail load capacitances of a leaky
  channel by hanging dummy loads (unswitched gate inputs / metal fill) on its
  lighter rails;
* :class:`RepositionPass` — criterion-guided re-placement: pull the pin cells
  of a channel's heaviest rail together (within their fences) to shorten it;
* :class:`FenceResizePass` — shrink the floorplan fence of a block that owns
  leaky channels, bounding net length and dispersion harder.

Repair passes re-measure only the nets they touch, through the pipeline's
:class:`~repro.pnr.extraction.IncrementalExtractor`.
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuits.netlist import Net, Netlist
from ..core.criterion import CriterionReport, channel_dissymmetry, evaluate_netlist_channels
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..pnr.extraction import IncrementalExtractor
from ..pnr.floorplan import Floorplan, Rect, Region
from ..pnr.placement import (
    AnnealingSchedule,
    FlatPlacer,
    HierarchicalPlacer,
    Placement,
)


logger = logging.getLogger(__name__)


class HardeningError(Exception):
    """Raised when a pass cannot run on the current design state."""


@dataclass
class PassOutcome:
    """What one pass did to the design."""

    pass_name: str
    changed: bool = False
    touched_nets: int = 0
    touched_cells: int = 0
    channels_repaired: int = 0
    dummy_cap_added_ff: float = 0.0
    details: str = ""


@dataclass
class PassContext:
    """Mutable design state threaded through a pass pipeline.

    The context owns the single source of truth for each layer: the netlist
    (structure + electrical annotations), the placement, the incremental
    extractor that keeps routing/extraction live, and the latest criterion
    report.  ``scratch`` is a per-run dictionary for passes that need state
    across repair iterations (e.g. which fences were already resized).
    """

    netlist: Netlist
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)
    seed: int = 0
    design_name: str = ""
    use_load_cap: bool = True
    flow: str = ""
    placement: Optional[Placement] = None
    extractor: Optional[IncrementalExtractor] = None
    criterion: Optional[CriterionReport] = None
    rng: random.Random = None
    scratch: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(self.seed)
        if not self.design_name:
            self.design_name = self.netlist.name
        self._channels_cache: Optional[Dict[str, List[Net]]] = None
        self._channels_version: Optional[int] = None

    # --------------------------------------------------------------- helpers
    def require_placement(self) -> Placement:
        if self.placement is None:
            raise HardeningError(
                "no placement in the pass context; run a placement pass first")
        return self.placement

    def require_extractor(self) -> IncrementalExtractor:
        if self.extractor is None:
            raise HardeningError(
                "no extraction in the pass context; run ExtractionPass first")
        return self.extractor

    def channels(self) -> Dict[str, List[Net]]:
        """``channel → rail nets`` map, cached per topology version."""
        version = self.netlist.topology_version
        if self._channels_cache is None or self._channels_version != version:
            self._channels_cache = self.netlist.channels()
            self._channels_version = version
        return self._channels_cache

    def rail_cap_ff(self, net: Net) -> float:
        """Capacitance of one rail under the context's criterion convention."""
        if self.use_load_cap:
            return self.netlist.load_cap_ff(net.name)
        return net.routing_cap_ff

    def channel_dissymmetry(self, rails: Sequence[Net]) -> float:
        return channel_dissymmetry([self.rail_cap_ff(net) for net in rails])

    def evaluate(self) -> CriterionReport:
        """Re-evaluate the criterion over the whole design (vectorized)."""
        self.criterion = evaluate_netlist_channels(
            self.netlist, use_load_cap=self.use_load_cap,
            design_name=self.design_name)
        return self.criterion


class HardeningPass:
    """Base class of all passes (duck-typed: only ``name``/``run`` matter)."""

    name = "pass"

    def run(self, context: PassContext) -> PassOutcome:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ------------------------------------------------------------ base flow passes
@dataclass
class FlatPlacementPass(HardeningPass):
    """The reference flow's placement step (AES_v2): one global placement."""

    utilization: float = 0.85
    effort: float = 1.0
    schedule: Optional[AnnealingSchedule] = None
    security_weight: Optional[float] = None

    name = "place-flat"
    flow = "flat"
    suffix = "flat"

    def run(self, context: PassContext) -> PassOutcome:
        placer = FlatPlacer(seed=context.seed, utilization=self.utilization,
                            effort=self.effort,
                            security_weight=self.security_weight)
        if self.schedule is not None:
            placer.schedule = self.schedule
        context.placement = placer.place(context.netlist, context.technology)
        context.flow = self.flow
        context.extractor = None
        return PassOutcome(self.name, changed=True,
                           touched_cells=len(context.placement),
                           details=f"flat placement, seed={context.seed}")


@dataclass
class HierarchicalPlacementPass(HardeningPass):
    """The proposed flow's placement step (AES_v1): per-block fences."""

    block_utilization: float = 0.78
    channel_margin_um: float = 3.0
    effort: float = 1.0
    schedule: Optional[AnnealingSchedule] = None
    block_order: Optional[Sequence[str]] = None
    floorplan: Optional[Floorplan] = None
    security_weight: Optional[float] = None

    name = "place-hierarchical"
    flow = "hierarchical"
    suffix = "hier"

    def run(self, context: PassContext) -> PassOutcome:
        placer = HierarchicalPlacer(
            seed=context.seed, block_utilization=self.block_utilization,
            channel_margin_um=self.channel_margin_um, effort=self.effort,
            block_order=self.block_order,
            security_weight=self.security_weight,
        )
        if self.schedule is not None:
            placer.schedule = self.schedule
        # The repair loop (FenceResizePass) rewrites fence regions of the
        # placed floorplan; work on a copy so a caller-supplied floorplan is
        # never mutated and a reused pipeline never compounds shrinks.
        floorplan = (Floorplan(die=self.floorplan.die,
                               regions=dict(self.floorplan.regions))
                     if self.floorplan is not None else None)
        context.placement = placer.place(context.netlist, context.technology,
                                         floorplan=floorplan)
        context.flow = self.flow
        context.extractor = None
        return PassOutcome(self.name, changed=True,
                           touched_cells=len(context.placement),
                           details=f"hierarchical placement, seed={context.seed}")


@dataclass
class ExtractionPass(HardeningPass):
    """Route-estimate and extract the whole design; prime the incremental
    extractor and the first criterion report."""

    annotate: bool = True

    name = "extract"

    def run(self, context: PassContext) -> PassOutcome:
        placement = context.require_placement()
        context.extractor = IncrementalExtractor(
            context.netlist, placement, technology=context.technology,
            annotate=self.annotate)
        context.evaluate()
        return PassOutcome(
            self.name, changed=True,
            touched_nets=len(context.extractor.extraction),
            details=f"full extraction of {len(context.extractor.extraction)} nets")


# ---------------------------------------------------------------- repair passes
@dataclass
class DummyLoadPass(HardeningPass):
    """Equalize the rail load capacitances of every channel above the bound.

    For each violating channel the heaviest rail sets the target; every
    lighter rail receives a dummy load making up the deficit (the classical
    trim-capacitance countermeasure: unswitched gate inputs or metal fill on
    the lighter rail).  Exact equalization drives the channel's ``d_A`` to
    zero; ``max_added_ff_per_net`` caps the per-net insertion so an absurd
    imbalance surfaces as a residual violation instead of a silent huge
    capacitor.  A zero-capacitance rail opposite a loaded one (infinite
    ``d_A``) is repaired like any other deficit.
    """

    bound: float = 0.15
    max_channels: Optional[int] = None
    max_added_ff_per_net: Optional[float] = None

    name = "repair-dummy-load"

    def run(self, context: PassContext) -> PassOutcome:
        if not context.use_load_cap:
            raise HardeningError(
                "dummy loads act on the load capacitance; the context "
                "evaluates the criterion on routing capacitance only "
                "(use_load_cap=False)")
        report = context.criterion if context.criterion is not None \
            else context.evaluate()
        channels = context.channels()
        violations = report.channels_above(self.bound)
        if self.max_channels is not None:
            violations = violations[:self.max_channels]
        touched: Set[str] = set()
        added_ff = 0.0
        repaired = 0
        for entry in violations:
            rails = channels.get(entry.channel)
            if not rails or len(rails) < 2:
                continue
            loads = [context.rail_cap_ff(net) for net in rails]
            # Earlier repairs this run may already have fixed the channel.
            if channel_dissymmetry(loads) <= self.bound:
                continue
            target = max(loads)
            for net, load in zip(rails, loads):
                deficit = target - load
                if deficit <= 0.0:
                    continue
                if (self.max_added_ff_per_net is not None
                        and deficit > self.max_added_ff_per_net):
                    logger.warning(
                        "dummy load on %s capped at %.1f fF (%.1f fF needed "
                        "to equalize channel %s); residual dissymmetry will "
                        "surface as a violation", net.name,
                        self.max_added_ff_per_net, deficit, entry.channel)
                    deficit = self.max_added_ff_per_net
                context.netlist.add_dummy_load(net.name, deficit)
                touched.add(net.name)
                added_ff += deficit
            repaired += 1
        return PassOutcome(
            self.name, changed=bool(touched), touched_nets=len(touched),
            channels_repaired=repaired, dummy_cap_added_ff=added_ff,
            details=(f"equalized {repaired} channel(s), "
                     f"+{added_ff:.1f} fF dummy load"))


@dataclass
class RepositionPass(HardeningPass):
    """Criterion-guided cell re-placement within the placement fences.

    For each channel above the bound, the pass walks the pin cells of the
    channel's *heaviest* rail and moves each one to the centroid of the
    rail's other pins (clamped to the cell's allowed rectangle, so
    hierarchical fences are honoured).  A move is kept only when the
    channel's dissymmetry actually improves — measured through an
    incremental re-extraction of exactly the nets the moved cell pins — and
    reverted (with a second incremental update) otherwise.

    With ``security_weight > 0`` the pass additionally runs a *targeted
    anneal*: the rail pin cells of every violating channel are re-optimized
    by the vectorized annealing engine under the multi-objective
    HPWL + dissymmetry cost while every other cell is pinned in place.  The
    annealed positions are kept only when the worst targeted channel
    improves, so the pass stays monotone like the centroid moves.
    """

    bound: float = 0.15
    max_channels: int = 16
    min_improvement: float = 1e-9
    security_weight: float = 0.0
    anneal_moves_per_cell: float = 40.0

    name = "repair-reposition"

    def run(self, context: PassContext) -> PassOutcome:
        placement = context.require_placement()
        extractor = context.require_extractor()
        report = context.criterion if context.criterion is not None \
            else context.evaluate()
        channels = context.channels()
        moved_cells: Set[str] = set()
        touched_nets: Set[str] = set()
        repaired = 0
        for entry in report.channels_above(self.bound)[:self.max_channels]:
            rails = channels.get(entry.channel)
            if not rails or len(rails) < 2:
                continue
            current = context.channel_dissymmetry(rails)
            if current <= self.bound:
                continue
            improved_channel = False
            heavy = max(rails, key=context.rail_cap_ff)
            pin_cells = [pin.instance for pin in heavy.connections()
                         if pin.instance in placement.cells]
            for cell_name in pin_cells:
                cell = placement.cells[cell_name]
                if cell.fixed:
                    continue
                others = [placement.cells[name] for name in pin_cells
                          if name != cell_name]
                if not others:
                    continue
                target_x = sum(c.x_um for c in others) / len(others)
                target_y = sum(c.y_um for c in others) / len(others)
                rect = placement.floorplan.placement_rect(cell.block)
                old_position = (cell.x_um, cell.y_um)
                cell.x_um, cell.y_um = rect.clamp(target_x, target_y)
                if (cell.x_um, cell.y_um) == old_position:
                    continue
                updated = extractor.update_cells([cell_name])
                candidate = context.channel_dissymmetry(rails)
                if candidate < current - self.min_improvement:
                    current = candidate
                    moved_cells.add(cell_name)
                    touched_nets.update(updated)
                    improved_channel = True
                    if current <= self.bound:
                        break
                else:
                    cell.x_um, cell.y_um = old_position
                    extractor.update_cells([cell_name])
            if improved_channel:
                repaired += 1
        annealed = 0
        if self.security_weight > 0:
            annealed_cells, annealed_nets = self._targeted_anneal(context)
            moved_cells.update(annealed_cells)
            touched_nets.update(annealed_nets)
            annealed = len(annealed_cells)
        return PassOutcome(
            self.name, changed=bool(moved_cells),
            touched_nets=len(touched_nets), touched_cells=len(moved_cells),
            channels_repaired=repaired,
            details=(f"moved {len(moved_cells)} cell(s) across "
                     f"{repaired} channel(s)"
                     + (f", {annealed} by targeted anneal"
                        if self.security_weight > 0 else "")))

    def _targeted_anneal(self, context: PassContext) -> Tuple[Set[str], Set[str]]:
        """Security-weighted anneal of the violating channels' pin cells.

        Every cell outside the target set is temporarily marked fixed, so
        the vectorized engine only perturbs the cells whose positions set
        the leaky rails' capacitances.  Kept only if the worst targeted
        channel strictly improves.
        """
        import numpy as np

        from ..pnr.anneal import VectorPlacementEngine

        placement = context.require_placement()
        extractor = context.require_extractor()
        report = context.criterion if context.criterion is not None \
            else context.evaluate()
        channels = context.channels()
        targets: List[Sequence[Net]] = []
        target_cells: Set[str] = set()
        for entry in report.channels_above(self.bound)[:self.max_channels]:
            rails = channels.get(entry.channel)
            if not rails or len(rails) < 2:
                continue
            if context.channel_dissymmetry(rails) <= self.bound:
                continue
            targets.append(rails)
            for net in rails:
                for pin in net.connections():
                    if pin.instance in placement.cells:
                        target_cells.add(pin.instance)
        movable = [name for name in sorted(target_cells)
                   if not placement.cells[name].fixed]
        if not targets or not movable:
            return set(), set()

        before = max(context.channel_dissymmetry(rails) for rails in targets)
        snapshot = {name: (placement.cells[name].x_um,
                           placement.cells[name].y_um) for name in movable}
        pinned = [cell for name, cell in placement.cells.items()
                  if name not in target_cells and not cell.fixed]
        for cell in pinned:
            cell.fixed = True
        try:
            schedule = AnnealingSchedule(
                moves_per_cell=self.anneal_moves_per_cell,
                temperature_steps=10,
                security_weight=self.security_weight,
            )
            # Refinement only: legalization would reflow *pinned* rows, so
            # the targeted anneal perturbs just the selected pin cells.
            engine = VectorPlacementEngine(
                context.netlist, placement.cells, placement.floorplan,
                schedule=schedule, technology=context.technology,
                rng=np.random.default_rng(context.rng.getrandbits(64)))
            if engine.conn.n_nets and engine.movable_ids.size:
                engine.refine()
                engine.writeback()
        finally:
            for cell in pinned:
                cell.fixed = False
        moved = {name for name, (x, y) in snapshot.items()
                 if (placement.cells[name].x_um,
                     placement.cells[name].y_um) != (x, y)}
        if not moved:
            return set(), set()
        touched = set(extractor.update_cells(sorted(moved)))
        after = max(context.channel_dissymmetry(rails) for rails in targets)
        if after < before - self.min_improvement:
            return moved, touched
        for name in moved:
            placement.cells[name].x_um, placement.cells[name].y_um = \
                snapshot[name]
        extractor.update_cells(sorted(moved))
        return set(), set()


@dataclass
class FenceResizePass(HardeningPass):
    """Shrink the floorplan fences of blocks that own leaky channels.

    "Dividing the design into small blocks and constraining their relative
    placement ... limits net length and dispersion" — this pass applies the
    same lever *selectively*: every block owning a channel above the bound
    has its fence shrunk around its centre by ``shrink`` (in area), its cells
    scaled inward, and the block's nets re-measured incrementally.  Each
    block is resized at most once per pipeline run (``scratch``-tracked), and
    never beyond ``max_utilization``.  Designs placed by the flat flow have
    no fences, so the pass is a structural no-op there.
    """

    bound: float = 0.15
    shrink: float = 0.8
    max_utilization: float = 0.95

    name = "repair-fence-resize"

    def run(self, context: PassContext) -> PassOutcome:
        placement = context.require_placement()
        extractor = context.require_extractor()
        floorplan = placement.floorplan
        if not floorplan.regions:
            return PassOutcome(self.name, changed=False,
                               details="no fences (flat floorplan)")
        report = context.criterion if context.criterion is not None \
            else context.evaluate()
        resized: Set[str] = context.scratch.setdefault("fences-resized", set())
        blocks = []
        for entry in report.channels_above(self.bound):
            block = entry.block
            if block and block in floorplan.regions and block not in resized \
                    and block not in blocks:
                blocks.append(block)
        touched_cells: Set[str] = set()
        touched_nets: Set[str] = set()
        shrunk_blocks = []
        for block in blocks:
            region = floorplan.regions[block]
            cells = [cell for cell in placement.cells.values()
                     if cell.block == block]
            if not cells:
                continue
            if any(cell.fixed for cell in cells):
                # Shrinking would have to relocate a cell the placement
                # machinery guarantees never moves; leave the fence alone.
                continue
            cell_area = sum(cell.area_um2 for cell in cells)
            scale = math.sqrt(self.shrink)
            new_rect_area = region.rect.area_um2 * self.shrink
            if cell_area / new_rect_area > self.max_utilization:
                continue
            cx, cy = region.rect.center
            new_rect = Rect(
                cx - region.rect.width_um * scale / 2.0,
                cy - region.rect.height_um * scale / 2.0,
                region.rect.width_um * scale,
                region.rect.height_um * scale,
            )
            for cell in cells:
                cell.x_um = cx + (cell.x_um - cx) * scale
                cell.y_um = cy + (cell.y_um - cy) * scale
                cell.x_um, cell.y_um = new_rect.clamp(cell.x_um, cell.y_um)
                touched_cells.add(cell.name)
            floorplan.regions[block] = Region(block=block, rect=new_rect)
            resized.add(block)
            shrunk_blocks.append(block)
        if touched_cells:
            touched_nets = extractor.update_cells(sorted(touched_cells))
        return PassOutcome(
            self.name, changed=bool(shrunk_blocks),
            touched_nets=len(touched_nets), touched_cells=len(touched_cells),
            channels_repaired=len(shrunk_blocks),
            details=(f"shrunk fences of {shrunk_blocks}"
                     if shrunk_blocks else "no resizable fences"))
