"""Power-trace generation for the asynchronous AES crypto-processor.

The chip measurements promised at the end of the paper are replaced by a
synthetic trace generator that applies the paper's own current model to the
block-level data flow:

* every word transferred on an inter-block channel raises exactly one rail
  per bit (evaluation phase) and lowers it again (return-to-zero phase) —
  the constant-transition-count property of the secured QDI style;
* each rail transition contributes a current pulse whose charge and width are
  set by the rail net's extracted capacitance, so the *only* data dependence
  of the trace is the capacitance mismatch between the rails of a channel —
  precisely the residual leak equation (12) identifies;
* optional Gaussian noise and uncorrelated background activity model the
  measurement environment of a real acquisition.

Traces generated for a flat-placed netlist therefore leak more than traces
generated for a hierarchically-placed one, which is the end-to-end statement
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..core.dpa import TraceSet
from ..crypto.aes import encrypt_states_batch
from ..crypto.keys import PlaintextGenerator
from ..electrical.noise import NoiseModel, apply_noise_matrix
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..electrical.waveform import Waveform
from .architecture import AesArchitecture
from .datapath import CipherDataPath, EncryptionRun
from .keypath import ChannelTransfer, KeySchedulePath


class TraceGenerationError(Exception):
    """Raised when traces cannot be generated for a netlist."""


def fixed_vs_random_plaintexts(count: int, *, fixed: Optional[Sequence[int]] = None,
                               block_size: int = 16,
                               seed: Optional[int] = None,
                               mode: str = "alternate"
                               ) -> Tuple[List[List[int]], np.ndarray]:
    """The interleaved plaintext schedule of a non-specific TVLA acquisition.

    Returns ``(plaintexts, labels)`` where ``labels[i]`` is 0 for the fixed
    plaintext and 1 for a fresh random one.  ``mode="alternate"`` interleaves
    strictly (F, R, F, R, …, the classical schedule that cancels drift);
    ``mode="shuffled"`` assigns a seeded random balanced order.  The fixed
    block defaults to one reproducible draw from the same seed, so a whole
    campaign is pinned by a single integer.
    """
    if count < 0:
        raise TraceGenerationError(f"count must be >= 0, got {count}")
    generator = PlaintextGenerator(block_size=block_size, seed=seed)
    fixed_block = list(fixed) if fixed is not None else generator.next()
    if len(fixed_block) != block_size:
        raise TraceGenerationError(
            f"fixed plaintext has {len(fixed_block)} bytes, expected {block_size}"
        )
    if mode == "alternate":
        labels = np.arange(count, dtype=np.int64) % 2
    elif mode == "shuffled":
        labels = np.zeros(count, dtype=np.int64)
        labels[count // 2:] = 1
        rng = np.random.default_rng(seed)
        rng.shuffle(labels)
    else:
        raise TraceGenerationError(
            f"unknown schedule mode {mode!r}; expected 'alternate' or 'shuffled'"
        )
    plaintexts = [list(fixed_block) if label == 0 else generator.next()
                  for label in labels]
    return plaintexts, labels


def word_digits(words: Sequence[int], width: int, radix: int) -> np.ndarray:
    """Base-``radix`` digits of a batch of words, least significant first.

    Returns a ``(len(words), width)`` integer matrix; entry ``[k, i]`` is the
    value of digit ``i`` of word ``k``, i.e. the index of the rail that fires
    on channel bit ``i`` of a 1-of-``radix`` encoded transfer.  Digits beyond
    ``width`` are ignored, mirroring how a bus truncates a wider word.
    """
    if radix < 2:
        raise TraceGenerationError(f"channel radix must be >= 2, got {radix}")
    words = np.asarray(words, dtype=np.int64)
    if radix == 2:
        return (words[:, None] >> np.arange(width, dtype=np.int64)) & 1
    digits = np.empty((len(words), width), dtype=np.int64)
    remainder = words.copy()
    for index in range(width):
        digits[:, index] = remainder % radix
        remainder //= radix
    return digits


@dataclass
class TraceGeneratorConfig:
    """Timing and sampling parameters of the synthesized traces."""

    slot_period_s: float = 2e-9
    sample_period_s: float = 100e-12
    rtz_fraction: float = 0.5
    include_return_to_zero: bool = True
    include_key_path: bool = True
    drive_resistance_ohm: float = 5000.0


class AesPowerTraceGenerator:
    """Generates supply-current traces of the asynchronous AES.

    Parameters
    ----------
    netlist:
        The placed-and-extracted structural netlist (its per-rail load
        capacitances define the leak).
    key:
        The 16-byte secret key of the device under attack.
    architecture:
        Channel/bus structure (must match the netlist generator's).
    technology:
        Supply voltage and capacitance parameters.
    noise:
        Optional additive noise model.
    config:
        Timing and sampling parameters.
    """

    def __init__(self, netlist: Netlist, key: Sequence[int], *,
                 architecture: Optional[AesArchitecture] = None,
                 technology: Technology = HCMOS9_LIKE,
                 noise: Optional[NoiseModel] = None,
                 config: Optional[TraceGeneratorConfig] = None):
        self.netlist = netlist
        self.key = list(key)
        self.architecture = architecture if architecture is not None else AesArchitecture()
        self.technology = technology
        self.noise = noise
        self.config = config if config is not None else TraceGeneratorConfig()
        self.datapath = CipherDataPath(self.key)
        self.keypath = KeySchedulePath(self.key)
        # The key-path channel activity depends only on the key, so its
        # transfers are computed once and reused for every trace.
        self._key_transfers_cache: Optional[Tuple[List[List[int]], List[ChannelTransfer]]] = None
        self._refresh_caps()

    # -------------------------------------------------------------- set-up
    def _refresh_caps(self) -> None:
        """(Re)build every capacitance-derived cache from the netlist.

        Keyed on :attr:`~repro.circuits.netlist.Netlist.state_version`: a
        hardening pass that inserts dummy loads, rewrites routing caps or
        adds structure bumps the netlist's cap/topology version, and the next
        trace generation transparently re-collects the rail capacitances
        (and drops the cap matrices and key-path templates derived from
        them) instead of synthesizing traces of the pre-countermeasure
        design.
        """
        self._rail_caps = self._collect_rail_caps()
        self._cap_matrices: Dict[str, np.ndarray] = {}
        self._key_template_cache: Dict[tuple, np.ndarray] = {}
        self._cap_state = self.netlist.state_version

    def _ensure_caps_current(self) -> None:
        if self._cap_state != self.netlist.state_version:
            self._refresh_caps()
    def _collect_rail_caps(self) -> Dict[Tuple[str, int, int], float]:
        """Load capacitance (fF) of every channel rail, keyed by (bus, bit, rail)."""
        caps: Dict[Tuple[str, int, int], float] = {}
        for bus in self.architecture.channels:
            for bit in range(bus.width):
                for rail in range(bus.radix):
                    net_name = bus.rail_net(bit, rail)
                    if not self.netlist.has_net(net_name):
                        raise TraceGenerationError(
                            f"netlist has no net {net_name!r}; was it generated "
                            f"with the same architecture?"
                        )
                    caps[(bus.name, bit, rail)] = self.netlist.load_cap_ff(net_name)
        return caps

    def rail_cap_ff(self, bus: str, bit: int, rail: int) -> float:
        self._ensure_caps_current()
        return self._rail_caps[(bus, bit, rail)]

    # ------------------------------------------------------------ one trace
    def _transfers_for(self, plaintext: Sequence[int]) -> Tuple[EncryptionRun, List[ChannelTransfer]]:
        run = self.datapath.encrypt(plaintext)
        transfers = list(run.transfers)
        if self.config.include_key_path:
            if self._key_transfers_cache is None:
                round_words, _ = self.keypath.run(start_slot=0)
                self._key_transfers_cache = (round_words, list(self.keypath.transfers))
            round_words, key_transfers = self._key_transfers_cache
            transfers.extend(key_transfers)
            transfers.extend(self.keypath.subkey_transfers(round_words,
                                                           run.round_key_slots))
        return run, transfers

    def _bus_radix(self, bus_name: str) -> int:
        """Encoding radix of a bus (2 for dual-rail, N for 1-of-N)."""
        for bus in self.architecture.channels:
            if bus.name == bus_name:
                return bus.radix
        return 2

    def _bus_cap_matrix(self, bus_name: str, width: int) -> np.ndarray:
        """Cached ``(width, radix)`` array of rail load capacitances of one bus.

        The shape honours the bus's 1-of-N encoding radix: every rail of
        every digit contributes its extracted capacitance, instead of the
        former hard-wired dual-rail assumption that silently dropped the
        rails of wider encodings.
        """
        cached = self._cap_matrices.get(bus_name)
        if cached is not None:
            return cached
        radix = self._bus_radix(bus_name)
        if radix < 2:
            raise TraceGenerationError(
                f"bus {bus_name!r} has radix {radix}; 1-of-N channels need N >= 2"
            )
        matrix = np.zeros((width, radix))
        for bit in range(width):
            for rail in range(radix):
                matrix[bit, rail] = self._rail_caps.get((bus_name, bit, rail), 0.0)
        self._cap_matrices[bus_name] = matrix
        return matrix

    def _sample_geometry(self, total_slots: int) -> Tuple[int, float, int]:
        """``(sample_count, samples_per_slot, rtz_offset)`` of a trace."""
        cfg = self.config
        duration = (total_slots + 4) * cfg.slot_period_s
        sample_count = max(1, int(np.ceil(duration / cfg.sample_period_s)))
        samples_per_slot = cfg.slot_period_s / cfg.sample_period_s
        rtz_offset = int(round(cfg.rtz_fraction * cfg.slot_period_s / cfg.sample_period_s))
        return sample_count, samples_per_slot, rtz_offset

    def _transfer_currents(self, bus: str, width: int,
                           words: np.ndarray) -> np.ndarray:
        """Supply-current contribution of a batch of words on one bus."""
        caps = self._bus_cap_matrix(bus, width)
        digits = word_digits(words, width, caps.shape[1])
        charges = caps[np.arange(width)[None, :], digits].sum(axis=1)
        return charges * 1e-15 * self.technology.vdd / self.config.sample_period_s

    def trace(self, plaintext: Sequence[int]) -> Waveform:
        """Synthesize the supply-current trace of one encryption.

        All rails of a word switch within one slot, and the individual pulse
        widths (a few tens of picoseconds) are below the sampling period, so
        each transfer deposits its total charge into the sample bin of its
        slot — the resulting current sample is ``ΣC·Vdd / dt``, which keeps
        exactly the per-bit capacitance dependence the DPA exploits.

        This is the per-trace reference path; :meth:`trace_batch` produces
        the same samples for a whole batch of plaintexts at once.
        """
        self._ensure_caps_current()
        run, transfers = self._transfers_for(plaintext)
        cfg = self.config
        sample_count, samples_per_slot, rtz_offset = self._sample_geometry(run.total_slots)
        samples = np.zeros(sample_count)

        bus_widths = {bus.name: bus.width for bus in self.architecture.channels}
        for transfer in transfers:
            width = min(transfer.width, bus_widths.get(transfer.bus, transfer.width))
            current = float(self._transfer_currents(
                transfer.bus, width, np.array([transfer.word], dtype=np.int64))[0])
            index = int(round(transfer.slot * samples_per_slot))
            if 0 <= index < sample_count:
                samples[index] += current
            if cfg.include_return_to_zero:
                rtz_index = index + rtz_offset
                if 0 <= rtz_index < sample_count:
                    samples[rtz_index] += current

        waveform = Waveform(samples, cfg.sample_period_s, 0.0)
        if self.noise is not None:
            waveform = self.noise.apply(waveform)
        return waveform

    # ------------------------------------------------------------ trace sets
    def _key_path_template(self, sample_count: int, samples_per_slot: float,
                           rtz_offset: int, round_key_slots: Dict[int, int]
                           ) -> np.ndarray:
        """Per-trace contribution of the key path (identical for every trace).

        The key-schedule channel activity depends only on the key, so its
        scatter into the sample bins is computed once per sample geometry and
        broadcast over all rows of the trace matrix (and reused across the
        chunks of a streaming generation).
        """
        cache_key = (sample_count, rtz_offset,
                     tuple(sorted(round_key_slots.items())))
        cached = self._key_template_cache.get(cache_key)
        if cached is not None:
            return cached
        if self._key_transfers_cache is None:
            round_words, _ = self.keypath.run(start_slot=0)
            self._key_transfers_cache = (round_words, list(self.keypath.transfers))
        round_words, key_transfers = self._key_transfers_cache
        transfers = list(key_transfers)
        transfers.extend(self.keypath.subkey_transfers(round_words, round_key_slots))

        template = np.zeros(sample_count)
        bus_widths = {bus.name: bus.width for bus in self.architecture.channels}
        for transfer in transfers:
            width = min(transfer.width, bus_widths.get(transfer.bus, transfer.width))
            current = float(self._transfer_currents(
                transfer.bus, width, np.array([transfer.word], dtype=np.int64))[0])
            index = int(round(transfer.slot * samples_per_slot))
            if 0 <= index < sample_count:
                template[index] += current
            if self.config.include_return_to_zero:
                rtz_index = index + rtz_offset
                if 0 <= rtz_index < sample_count:
                    template[rtz_index] += current
        self._key_template_cache[cache_key] = template
        return template

    def _batch_transfer_words(self, run0, plaintexts: List[List[int]]
                              ) -> np.ndarray:
        """``(n_traces, n_transfers)`` words carried by the fixed schedule.

        Runs the vectorized batch cipher once and resolves every transfer's
        word from its recorded ``(state label, column)`` source.  Falls back
        to walking the architecture model per plaintext when the schedule
        carries no source annotations (custom data paths).  The first row is
        checked against the reference model run, so any drift between the
        batch cipher and the architecture walk fails loudly.
        """
        n_traces, transfer_count = len(plaintexts), len(run0.transfers)
        if len(run0.word_sources) != transfer_count:
            words = np.empty((n_traces, transfer_count), dtype=np.int64)
            words[0] = [t.word for t in run0.transfers]
            for index, plaintext in enumerate(plaintexts[1:], start=1):
                run = self.datapath.encrypt(plaintext)
                if (len(run.transfers) != transfer_count
                        or run.total_slots != run0.total_slots):
                    raise TraceGenerationError(
                        "data-path transfer schedule is not batch-invariant; "
                        "cannot vectorize trace generation"
                    )
                words[index] = [t.word for t in run.transfers]
            return words

        states = encrypt_states_batch(self.key, plaintexts)
        word_cache: Dict[str, np.ndarray] = {}

        def words_of(label: str) -> np.ndarray:
            cached = word_cache.get(label)
            if cached is None:
                blocks = (np.asarray(plaintexts, dtype=np.int64)
                          if label == "plaintext"
                          else states[label].astype(np.int64))
                cached = ((blocks[:, 0::4] << 24) | (blocks[:, 1::4] << 16)
                          | (blocks[:, 2::4] << 8) | blocks[:, 3::4])
                word_cache[label] = cached
            return cached

        words = np.empty((n_traces, transfer_count), dtype=np.int64)
        for position, (label, column) in enumerate(run0.word_sources):
            words[:, position] = words_of(label)[:, column]
        reference_words = np.asarray([t.word for t in run0.transfers],
                                     dtype=np.int64)
        if not np.array_equal(words[0], reference_words):
            raise TraceGenerationError(
                "batched cipher states diverged from the architecture model"
            )
        return words

    def trace_batch(self, plaintexts: Iterable[Sequence[int]], *,
                    noise_start_index: int = 0) -> TraceSet:
        """Synthesize the traces of a whole batch of plaintexts at once.

        The generation splits into a cheap per-plaintext step — running the
        data-flow model to obtain the transferred words — and a vectorized
        scatter: the transfer *schedule* (which bus occupies which slot) is
        data-independent, so the slot sample indices and rail-capacitance
        lookups are computed once and reused across the batch, and all
        per-transfer charges land in the ``(n_traces, n_samples)`` matrix
        through a single ``np.add.at`` per pulse phase.  Numerically
        equivalent to calling :meth:`trace` per plaintext (``np.allclose``).

        ``noise_start_index`` pins the batch's place in the noise stream:
        trace row ``i`` draws the noise of global index
        ``noise_start_index + i`` (see :mod:`repro.electrical.noise`), which
        is what makes chunked generation sample-identical to one big batch.
        """
        self._ensure_caps_current()
        plaintexts = [list(p) for p in plaintexts]
        if not plaintexts:
            return TraceSet()
        cfg = self.config
        # One walk of the architecture model fixes the (bus, slot) schedule
        # and names the cipher-state word each transfer carries; the words of
        # every other plaintext come from the vectorized batch cipher.
        run0 = self.datapath.encrypt(plaintexts[0])
        schedule = run0.transfers
        transfer_count = len(schedule)
        n_traces = len(plaintexts)
        sample_count, samples_per_slot, rtz_offset = self._sample_geometry(
            run0.total_slots)
        matrix = np.zeros((n_traces, sample_count))

        words = self._batch_transfer_words(run0, plaintexts)

        # Per-transfer currents, grouped by bus so each group resolves its
        # words against one cached capacitance matrix in a single lookup.
        bus_widths = {bus.name: bus.width for bus in self.architecture.channels}
        groups: Dict[Tuple[str, int], List[int]] = {}
        for position, transfer in enumerate(schedule):
            width = min(transfer.width, bus_widths.get(transfer.bus, transfer.width))
            groups.setdefault((transfer.bus, width), []).append(position)
        currents = np.empty((n_traces, transfer_count))
        for (bus, width), positions in groups.items():
            flat = self._transfer_currents(bus, width, words[:, positions].ravel())
            currents[:, positions] = flat.reshape(n_traces, len(positions))

        # One scatter per pulse phase (evaluation, then return-to-zero).
        sample_indices = np.array(
            [int(round(t.slot * samples_per_slot)) for t in schedule], dtype=np.int64
        )
        rows = np.arange(n_traces)[:, None]
        phases = [sample_indices]
        if cfg.include_return_to_zero:
            phases.append(sample_indices + rtz_offset)
        for indices in phases:
            in_range = (indices >= 0) & (indices < sample_count)
            if in_range.any():
                np.add.at(matrix, (rows, indices[in_range][None, :]),
                          currents[:, in_range])

        if cfg.include_key_path:
            matrix += self._key_path_template(
                sample_count, samples_per_slot, rtz_offset, run0.round_key_slots
            )[None, :]

        if self.noise is not None:
            matrix = apply_noise_matrix(self.noise, matrix, cfg.sample_period_s,
                                        0.0, noise_start_index)
        return TraceSet.from_matrix(matrix, plaintexts, cfg.sample_period_s, 0.0)

    def trace_chunks(self, plaintexts: Iterable[Sequence[int]],
                     chunk_size: int, *,
                     noise_start_index: int = 0) -> Iterable[TraceSet]:
        """Yield the batch's traces as bounded-memory :class:`TraceSet` blocks.

        The streaming entry point of the generator: each block of up to
        ``chunk_size`` plaintexts goes through the vectorized batch engine
        independently — schedule, capacitance and key-path template caches
        are shared across chunks — and is yielded before the next block is
        synthesized, so a consumer that drops each chunk (an accumulator
        pipeline) never holds more than one ``(chunk_size, n_samples)``
        matrix.  Because the per-trace currents are row-independent and the
        noise of trace ``i`` is a pure function of its global index, the
        concatenation of all chunks is *sample-identical* to
        ``trace_batch(plaintexts)`` for every chunk size.
        """
        if chunk_size < 1:
            raise TraceGenerationError(
                f"chunk size must be >= 1, got {chunk_size}")
        plaintexts = [list(p) for p in plaintexts]
        for start in range(0, len(plaintexts), chunk_size):
            yield self.trace_batch(
                plaintexts[start:start + chunk_size],
                noise_start_index=noise_start_index + start,
            )

    def trace_set(self, plaintexts: Iterable[Sequence[int]]) -> TraceSet:
        """Synthesize one trace per plaintext and bundle them for the DPA.

        Delegates to the batched engine; every existing caller of
        ``trace_set`` gets the vectorized path transparently.
        """
        return self.trace_batch(plaintexts)

    def random_trace_set(self, count: int, *, seed: Optional[int] = None) -> TraceSet:
        """Trace set over ``count`` uniformly random plaintexts."""
        generator = PlaintextGenerator(block_size=16, seed=seed)
        return self.trace_set(generator.batch(count))

    # -------------------------------------------------------------- queries
    def target_slot(self, column: int = 0) -> int:
        """Slot index at which the attacked addkey0 word crosses its channel."""
        run = self.datapath.encrypt([0] * 16)
        on_bus = run.transfers_on("addkey0_to_mux")
        if not on_bus:
            raise TraceGenerationError("no addkey0_to_mux transfers recorded")
        return sorted(t.slot for t in on_bus)[column]

    def channel_dissymmetry(self, bus: str, bit: int) -> float:
        """Dissymmetry criterion of one channel bit, from the collected caps."""
        self._ensure_caps_current()
        cap0 = self._rail_caps[(bus, bit, 0)]
        cap1 = self._rail_caps[(bus, bit, 1)]
        smallest = min(cap0, cap1)
        if smallest == 0:
            return float("inf") if max(cap0, cap1) > 0 else 0.0
        return abs(cap0 - cap1) / smallest


def generate_trace_sets_for_flows(flat_netlist: Netlist, hier_netlist: Netlist,
                                  key: Sequence[int], plaintexts: Sequence[Sequence[int]],
                                  *, architecture: Optional[AesArchitecture] = None,
                                  technology: Technology = HCMOS9_LIKE,
                                  noise: Optional[NoiseModel] = None
                                  ) -> Tuple[TraceSet, TraceSet]:
    """Convenience helper: the same plaintexts traced on both placed designs."""
    flat_generator = AesPowerTraceGenerator(flat_netlist, key,
                                            architecture=architecture,
                                            technology=technology, noise=noise)
    hier_generator = AesPowerTraceGenerator(hier_netlist, key,
                                            architecture=architecture,
                                            technology=technology, noise=noise)
    return flat_generator.trace_set(plaintexts), hier_generator.trace_set(plaintexts)
