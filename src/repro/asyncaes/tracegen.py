"""Power-trace generation for the asynchronous AES crypto-processor.

The chip measurements promised at the end of the paper are replaced by a
synthetic trace generator that applies the paper's own current model to the
block-level data flow:

* every word transferred on an inter-block channel raises exactly one rail
  per bit (evaluation phase) and lowers it again (return-to-zero phase) —
  the constant-transition-count property of the secured QDI style;
* each rail transition contributes a current pulse whose charge and width are
  set by the rail net's extracted capacitance, so the *only* data dependence
  of the trace is the capacitance mismatch between the rails of a channel —
  precisely the residual leak equation (12) identifies;
* optional Gaussian noise and uncorrelated background activity model the
  measurement environment of a real acquisition.

Traces generated for a flat-placed netlist therefore leak more than traces
generated for a hierarchically-placed one, which is the end-to-end statement
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..core.dpa import TraceSet
from ..crypto.keys import PlaintextGenerator
from ..electrical.noise import NoiseModel
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..electrical.waveform import Waveform, triangular_pulse
from .architecture import AesArchitecture
from .datapath import CipherDataPath, EncryptionRun
from .keypath import ChannelTransfer, KeySchedulePath


class TraceGenerationError(Exception):
    """Raised when traces cannot be generated for a netlist."""


@dataclass
class TraceGeneratorConfig:
    """Timing and sampling parameters of the synthesized traces."""

    slot_period_s: float = 2e-9
    sample_period_s: float = 100e-12
    rtz_fraction: float = 0.5
    include_return_to_zero: bool = True
    include_key_path: bool = True
    drive_resistance_ohm: float = 5000.0


class AesPowerTraceGenerator:
    """Generates supply-current traces of the asynchronous AES.

    Parameters
    ----------
    netlist:
        The placed-and-extracted structural netlist (its per-rail load
        capacitances define the leak).
    key:
        The 16-byte secret key of the device under attack.
    architecture:
        Channel/bus structure (must match the netlist generator's).
    technology:
        Supply voltage and capacitance parameters.
    noise:
        Optional additive noise model.
    config:
        Timing and sampling parameters.
    """

    def __init__(self, netlist: Netlist, key: Sequence[int], *,
                 architecture: Optional[AesArchitecture] = None,
                 technology: Technology = HCMOS9_LIKE,
                 noise: Optional[NoiseModel] = None,
                 config: Optional[TraceGeneratorConfig] = None):
        self.netlist = netlist
        self.key = list(key)
        self.architecture = architecture if architecture is not None else AesArchitecture()
        self.technology = technology
        self.noise = noise
        self.config = config if config is not None else TraceGeneratorConfig()
        self.datapath = CipherDataPath(self.key)
        self.keypath = KeySchedulePath(self.key)
        self._rail_caps = self._collect_rail_caps()
        self._cap_matrices: Dict[str, np.ndarray] = {}
        # The key-path channel activity depends only on the key, so its
        # transfers are computed once and reused for every trace.
        self._key_transfers_cache: Optional[Tuple[List[List[int]], List[ChannelTransfer]]] = None

    # -------------------------------------------------------------- set-up
    def _collect_rail_caps(self) -> Dict[Tuple[str, int, int], float]:
        """Load capacitance (fF) of every channel rail, keyed by (bus, bit, rail)."""
        caps: Dict[Tuple[str, int, int], float] = {}
        for bus in self.architecture.channels:
            for bit in range(bus.width):
                for rail in range(bus.radix):
                    net_name = bus.rail_net(bit, rail)
                    if not self.netlist.has_net(net_name):
                        raise TraceGenerationError(
                            f"netlist has no net {net_name!r}; was it generated "
                            f"with the same architecture?"
                        )
                    caps[(bus.name, bit, rail)] = self.netlist.load_cap_ff(net_name)
        return caps

    def rail_cap_ff(self, bus: str, bit: int, rail: int) -> float:
        return self._rail_caps[(bus, bit, rail)]

    # ------------------------------------------------------------ one trace
    def _transfers_for(self, plaintext: Sequence[int]) -> Tuple[EncryptionRun, List[ChannelTransfer]]:
        run = self.datapath.encrypt(plaintext)
        transfers = list(run.transfers)
        if self.config.include_key_path:
            if self._key_transfers_cache is None:
                round_words, _ = self.keypath.run(start_slot=0)
                self._key_transfers_cache = (round_words, list(self.keypath.transfers))
            round_words, key_transfers = self._key_transfers_cache
            transfers.extend(key_transfers)
            transfers.extend(self.keypath.subkey_transfers(round_words,
                                                           run.round_key_slots))
        return run, transfers

    def _bus_cap_matrix(self, bus_name: str, width: int) -> np.ndarray:
        """Cached ``(width, 2)`` array of rail load capacitances of one bus."""
        cached = self._cap_matrices.get(bus_name)
        if cached is not None:
            return cached
        matrix = np.zeros((width, 2))
        for bit in range(width):
            for rail in range(2):
                matrix[bit, rail] = self._rail_caps.get((bus_name, bit, rail), 0.0)
        self._cap_matrices[bus_name] = matrix
        return matrix

    def trace(self, plaintext: Sequence[int]) -> Waveform:
        """Synthesize the supply-current trace of one encryption.

        All rails of a word switch within one slot, and the individual pulse
        widths (a few tens of picoseconds) are below the sampling period, so
        each transfer deposits its total charge into the sample bin of its
        slot — the resulting current sample is ``ΣC·Vdd / dt``, which keeps
        exactly the per-bit capacitance dependence the DPA exploits.
        """
        run, transfers = self._transfers_for(plaintext)
        cfg = self.config
        duration = (run.total_slots + 4) * cfg.slot_period_s
        sample_count = max(1, int(np.ceil(duration / cfg.sample_period_s)))
        samples = np.zeros(sample_count)
        rtz_offset = int(round(cfg.rtz_fraction * cfg.slot_period_s / cfg.sample_period_s))
        samples_per_slot = cfg.slot_period_s / cfg.sample_period_s

        bus_widths = {bus.name: bus.width for bus in self.architecture.channels}
        bit_indices = np.arange(64, dtype=np.int64)
        for transfer in transfers:
            width = min(transfer.width, bus_widths.get(transfer.bus, transfer.width))
            caps = self._bus_cap_matrix(transfer.bus, width)
            rails = (transfer.word >> bit_indices[:width]) & 1
            charge = float(caps[np.arange(width), rails].sum()) * 1e-15 * self.technology.vdd
            current = charge / cfg.sample_period_s
            index = int(round(transfer.slot * samples_per_slot))
            if 0 <= index < sample_count:
                samples[index] += current
            if cfg.include_return_to_zero:
                rtz_index = index + rtz_offset
                if 0 <= rtz_index < sample_count:
                    samples[rtz_index] += current

        waveform = Waveform(samples, cfg.sample_period_s, 0.0)
        if self.noise is not None:
            waveform = self.noise.apply(waveform)
        return waveform

    # ------------------------------------------------------------ trace sets
    def trace_set(self, plaintexts: Iterable[Sequence[int]]) -> TraceSet:
        """Synthesize one trace per plaintext and bundle them for the DPA."""
        traces = TraceSet()
        for plaintext in plaintexts:
            traces.add(self.trace(plaintext), list(plaintext))
        return traces

    def random_trace_set(self, count: int, *, seed: Optional[int] = None) -> TraceSet:
        """Trace set over ``count`` uniformly random plaintexts."""
        generator = PlaintextGenerator(block_size=16, seed=seed)
        return self.trace_set(generator.batch(count))

    # -------------------------------------------------------------- queries
    def target_slot(self, column: int = 0) -> int:
        """Slot index at which the attacked addkey0 word crosses its channel."""
        run = self.datapath.encrypt([0] * 16)
        on_bus = run.transfers_on("addkey0_to_mux")
        if not on_bus:
            raise TraceGenerationError("no addkey0_to_mux transfers recorded")
        return sorted(t.slot for t in on_bus)[column]

    def channel_dissymmetry(self, bus: str, bit: int) -> float:
        """Dissymmetry criterion of one channel bit, from the collected caps."""
        cap0 = self._rail_caps[(bus, bit, 0)]
        cap1 = self._rail_caps[(bus, bit, 1)]
        smallest = min(cap0, cap1)
        if smallest == 0:
            return float("inf") if max(cap0, cap1) > 0 else 0.0
        return abs(cap0 - cap1) / smallest


def generate_trace_sets_for_flows(flat_netlist: Netlist, hier_netlist: Netlist,
                                  key: Sequence[int], plaintexts: Sequence[Sequence[int]],
                                  *, architecture: Optional[AesArchitecture] = None,
                                  technology: Technology = HCMOS9_LIKE,
                                  noise: Optional[NoiseModel] = None
                                  ) -> Tuple[TraceSet, TraceSet]:
    """Convenience helper: the same plaintexts traced on both placed designs."""
    flat_generator = AesPowerTraceGenerator(flat_netlist, key,
                                            architecture=architecture,
                                            technology=technology, noise=noise)
    hier_generator = AesPowerTraceGenerator(hier_netlist, key,
                                            architecture=architecture,
                                            technology=technology, noise=noise)
    return flat_generator.trace_set(plaintexts), hier_generator.trace_set(plaintexts)
