"""Architecture description of the QDI asynchronous AES crypto-processor.

Fig. 8 of the paper shows an iterative, 32-bit wide AES built from three
self-timed loops (ciphering data path, sub-key data path, controller) that
communicate through dual-rail channels; Fig. 9 shows its constrained
floorplan.  This module is the single source of truth for that structure in
the reproduction: the list of architectural blocks (with rough gate-count
budgets used to size their placement fences) and the list of inter-block
channels (buses of dual-rail channels).

The names follow the figure's legend (``Addkey0``, ``Mux4_1``, ``ByteSub``,
``MIXCOLUMN``, ``XOR_KEY``, ``FIFO`` ...); the connectivity is a faithful
approximation of the figure at the granularity that matters for the paper's
evaluation — which channels exist, which blocks they join, and how wide they
are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class BlockSpec:
    """One architectural block of Fig. 8.

    ``gate_budget`` is the approximate number of equivalent gates the block
    contains; it is only used to size the block's placement fence and its
    internal filler logic, not for functional modelling.
    ``side`` is ``"core"`` for the ciphering data path, ``"key"`` for the
    sub-key data path and ``"control"`` for the controller/interface.
    """

    name: str
    gate_budget: int
    side: str = "core"
    description: str = ""


@dataclass(frozen=True)
class ChannelBusSpec:
    """A bus of 1-of-N channels joining two blocks.

    ``width`` is the number of digits (32 for the data path words, 8 for byte
    channels, 4 for control); ``radix`` is 2 for dual-rail channels.
    """

    name: str
    source: str
    sink: str
    width: int = 32
    radix: int = 2
    description: str = ""

    def channel_name(self, bit: int) -> str:
        return f"{self.name}_b{bit}"

    def rail_net(self, bit: int, rail: int) -> str:
        return f"{self.name}_b{bit}_r{rail}"

    def ack_net(self, bit: int) -> str:
        return f"{self.name}_b{bit}_ack"


# --------------------------------------------------------------------- blocks
#: Ciphering data path blocks (AES_CORE legend of Fig. 8).
CORE_BLOCKS: Tuple[BlockSpec, ...] = (
    BlockSpec("interface", 420, "control", "I/O interface, registers, control"),
    BlockSpec("mux4_1", 260, "core", "input word multiplexer"),
    BlockSpec("addkey0", 520, "core", "initial AddRoundKey (XOR with key 0)"),
    BlockSpec("mux", 300, "core", "round-loop multiplexer"),
    BlockSpec("dmux1_4", 320, "core", "column demultiplexer"),
    BlockSpec("hb_c0", 180, "core", "half-buffer column 0"),
    BlockSpec("hb_c1", 180, "core", "half-buffer column 1"),
    BlockSpec("hb_c2", 180, "core", "half-buffer column 2"),
    BlockSpec("hb_c3", 180, "core", "half-buffer column 3"),
    BlockSpec("bytesub0", 1400, "core", "SubBytes S-boxes, column 0"),
    BlockSpec("bytesub1", 1400, "core", "SubBytes S-boxes, column 1"),
    BlockSpec("bytesub2", 1400, "core", "SubBytes S-boxes, column 2"),
    BlockSpec("bytesub3", 1400, "core", "SubBytes S-boxes, column 3"),
    BlockSpec("hb_sr0", 150, "core", "post-ShiftRow half buffer 0"),
    BlockSpec("hb_sr1", 150, "core", "post-ShiftRow half buffer 1"),
    BlockSpec("hb_sr2", 150, "core", "post-ShiftRow half buffer 2"),
    BlockSpec("hb_sr3", 150, "core", "post-ShiftRow half buffer 3"),
    BlockSpec("mux_mix", 280, "core", "column gather multiplexer"),
    BlockSpec("mixcolumn", 900, "core", "MixColumns"),
    BlockSpec("addroundkey", 520, "core", "round AddRoundKey"),
    BlockSpec("addlastkey", 480, "core", "final AddRoundKey"),
    BlockSpec("dmux_out", 260, "core", "output demultiplexer"),
    BlockSpec("core_control", 380, "control", "round counter and core FSM"),
)

#: Sub-key data path blocks (AES_KEY legend of Fig. 8).
KEY_BLOCKS: Tuple[BlockSpec, ...] = (
    BlockSpec("mux9_1_key", 340, "key", "key word multiplexer"),
    BlockSpec("mux2_1_sbox", 200, "key", "S-box input multiplexer"),
    BlockSpec("bytesub_key", 1400, "key", "key-schedule SubWord S-boxes"),
    BlockSpec("demux1_2_rc", 180, "key", "round-constant demultiplexer"),
    BlockSpec("xor_rc", 220, "key", "round-constant XOR"),
    BlockSpec("fifo_key", 600, "key", "key word FIFO"),
    BlockSpec("demux1_3_xor", 220, "key", "XOR operand demultiplexer"),
    BlockSpec("mux3_1_xor", 240, "key", "XOR operand multiplexer"),
    BlockSpec("xor_key", 520, "key", "key-schedule word XOR"),
    BlockSpec("duplicate", 260, "key", "sub-key duplicator"),
    BlockSpec("duplic_nk", 160, "key", "Nk duplicator"),
    BlockSpec("key_control", 320, "control", "key-schedule counter and FSM"),
)

ALL_BLOCKS: Tuple[BlockSpec, ...] = CORE_BLOCKS + KEY_BLOCKS


# ------------------------------------------------------------------- channels
#: Data-path word width of the architecture (Fig. 8: 32-bit wide loops).
WORD_WIDTH = 32

CORE_CHANNELS: Tuple[ChannelBusSpec, ...] = (
    ChannelBusSpec("data_in", "interface", "mux4_1", WORD_WIDTH,
                   description="plaintext words from the interface"),
    ChannelBusSpec("mux41_to_addkey0", "mux4_1", "addkey0", WORD_WIDTH),
    ChannelBusSpec("key0_to_addkey0", "duplicate", "addkey0", WORD_WIDTH,
                   description="initial key words from the key data path"),
    ChannelBusSpec("addkey0_to_mux", "addkey0", "mux", WORD_WIDTH),
    ChannelBusSpec("roundloop_to_mux", "addroundkey", "mux", WORD_WIDTH,
                   description="round feedback loop"),
    ChannelBusSpec("mux_to_dmux", "mux", "dmux1_4", WORD_WIDTH),
    ChannelBusSpec("dmux_to_c0", "dmux1_4", "hb_c0", WORD_WIDTH),
    ChannelBusSpec("dmux_to_c1", "dmux1_4", "hb_c1", WORD_WIDTH),
    ChannelBusSpec("dmux_to_c2", "dmux1_4", "hb_c2", WORD_WIDTH),
    ChannelBusSpec("dmux_to_c3", "dmux1_4", "hb_c3", WORD_WIDTH),
    ChannelBusSpec("c0_to_bytesub0", "hb_c0", "bytesub0", WORD_WIDTH),
    ChannelBusSpec("c1_to_bytesub1", "hb_c1", "bytesub1", WORD_WIDTH),
    ChannelBusSpec("c2_to_bytesub2", "hb_c2", "bytesub2", WORD_WIDTH),
    ChannelBusSpec("c3_to_bytesub3", "hb_c3", "bytesub3", WORD_WIDTH),
    ChannelBusSpec("bytesub0_to_sr0", "bytesub0", "hb_sr0", WORD_WIDTH,
                   description="ShiftRows is the wiring permutation feeding these buffers"),
    ChannelBusSpec("bytesub1_to_sr1", "bytesub1", "hb_sr1", WORD_WIDTH),
    ChannelBusSpec("bytesub2_to_sr2", "bytesub2", "hb_sr2", WORD_WIDTH),
    ChannelBusSpec("bytesub3_to_sr3", "bytesub3", "hb_sr3", WORD_WIDTH),
    ChannelBusSpec("sr0_to_muxmix", "hb_sr0", "mux_mix", WORD_WIDTH),
    ChannelBusSpec("sr1_to_muxmix", "hb_sr1", "mux_mix", WORD_WIDTH),
    ChannelBusSpec("sr2_to_muxmix", "hb_sr2", "mux_mix", WORD_WIDTH),
    ChannelBusSpec("sr3_to_muxmix", "hb_sr3", "mux_mix", WORD_WIDTH),
    ChannelBusSpec("muxmix_to_mixcol", "mux_mix", "mixcolumn", WORD_WIDTH),
    ChannelBusSpec("mixcol_to_ark", "mixcolumn", "addroundkey", WORD_WIDTH),
    ChannelBusSpec("subkey_to_ark", "duplicate", "addroundkey", WORD_WIDTH,
                   description="the Sub-key synchronisation channel of Fig. 8"),
    ChannelBusSpec("muxmix_to_alk", "mux_mix", "addlastkey", WORD_WIDTH,
                   description="last-round path (no MixColumns)"),
    ChannelBusSpec("subkey_to_alk", "duplicate", "addlastkey", WORD_WIDTH),
    ChannelBusSpec("alk_to_dmuxout", "addlastkey", "dmux_out", WORD_WIDTH),
    ChannelBusSpec("data_out", "dmux_out", "interface", WORD_WIDTH,
                   description="ciphertext words to the interface"),
    ChannelBusSpec("core_ctrl", "core_control", "mux", 4,
                   description="round-control channel (1-of-2 encoded control bits)"),
)

KEY_CHANNELS: Tuple[ChannelBusSpec, ...] = (
    ChannelBusSpec("key_in", "interface", "mux9_1_key", WORD_WIDTH,
                   description="cipher key words from the interface"),
    ChannelBusSpec("mux91_to_fifo", "mux9_1_key", "fifo_key", WORD_WIDTH),
    ChannelBusSpec("fifo_to_demux13", "fifo_key", "demux1_3_xor", WORD_WIDTH),
    ChannelBusSpec("demux13_to_xorkey", "demux1_3_xor", "xor_key", WORD_WIDTH),
    ChannelBusSpec("mux91_to_mux21", "mux9_1_key", "mux2_1_sbox", WORD_WIDTH),
    ChannelBusSpec("mux21_to_ksbox", "mux2_1_sbox", "bytesub_key", WORD_WIDTH),
    ChannelBusSpec("ksbox_to_demux12", "bytesub_key", "demux1_2_rc", WORD_WIDTH),
    ChannelBusSpec("demux12_to_xorrc", "demux1_2_rc", "xor_rc", WORD_WIDTH),
    ChannelBusSpec("xorrc_to_mux31", "xor_rc", "mux3_1_xor", WORD_WIDTH),
    ChannelBusSpec("mux31_to_xorkey", "mux3_1_xor", "xor_key", WORD_WIDTH),
    ChannelBusSpec("xorkey_to_dup", "xor_key", "duplicate", WORD_WIDTH),
    ChannelBusSpec("dup_to_mux91", "duplicate", "mux9_1_key", WORD_WIDTH,
                   description="key-schedule feedback loop"),
    ChannelBusSpec("nk_ctrl", "duplic_nk", "mux9_1_key", 4),
    ChannelBusSpec("key_ctrl", "key_control", "mux3_1_xor", 4),
)

ALL_CHANNELS: Tuple[ChannelBusSpec, ...] = CORE_CHANNELS + KEY_CHANNELS


@dataclass
class AesArchitecture:
    """The complete block/channel structure of the asynchronous AES.

    Parameters
    ----------
    word_width:
        Width of the data-path buses.  32 reproduces the paper's architecture;
        smaller values (8, 16) give scaled-down versions useful for fast tests
        while preserving every block and channel.
    detail:
        Scale factor applied to the blocks' gate budgets when generating the
        structural netlist (1.0 = full budget).
    """

    word_width: int = WORD_WIDTH
    detail: float = 1.0
    blocks: Tuple[BlockSpec, ...] = ALL_BLOCKS
    channels: Tuple[ChannelBusSpec, ...] = field(default=ALL_CHANNELS)

    def __post_init__(self) -> None:
        if self.word_width < 4:
            raise ValueError("word width must be at least 4")
        if not 0 < self.detail <= 4.0:
            raise ValueError("detail must be in (0, 4]")
        if self.word_width != WORD_WIDTH:
            scaled = []
            for channel in self.channels:
                width = channel.width if channel.width <= 4 else self.word_width
                scaled.append(ChannelBusSpec(
                    name=channel.name, source=channel.source, sink=channel.sink,
                    width=width, radix=channel.radix,
                    description=channel.description,
                ))
            self.channels = tuple(scaled)

    # --------------------------------------------------------------- queries
    def block(self, name: str) -> BlockSpec:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"unknown block {name!r}")

    def block_names(self) -> List[str]:
        return [block.name for block in self.blocks]

    def channel(self, name: str) -> ChannelBusSpec:
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise KeyError(f"unknown channel bus {name!r}")

    def channels_of_block(self, block: str) -> List[ChannelBusSpec]:
        return [c for c in self.channels if c.source == block or c.sink == block]

    def outgoing(self, block: str) -> List[ChannelBusSpec]:
        return [c for c in self.channels if c.source == block]

    def incoming(self, block: str) -> List[ChannelBusSpec]:
        return [c for c in self.channels if c.sink == block]

    def scaled_gate_budget(self, block: str) -> int:
        base = self.block(block).gate_budget
        width_scale = self.word_width / WORD_WIDTH
        return max(8, int(base * self.detail * width_scale))

    def total_gate_budget(self) -> int:
        return sum(self.scaled_gate_budget(b.name) for b in self.blocks)

    def validate(self) -> List[str]:
        """Consistency checks of the architecture description."""
        problems: List[str] = []
        names = set(self.block_names())
        if len(names) != len(self.blocks):
            problems.append("duplicate block names")
        for channel in self.channels:
            if channel.source not in names:
                problems.append(f"channel {channel.name!r}: unknown source {channel.source!r}")
            if channel.sink not in names:
                problems.append(f"channel {channel.name!r}: unknown sink {channel.sink!r}")
            if channel.source == channel.sink:
                problems.append(f"channel {channel.name!r} is a self-loop")
        seen = set()
        for channel in self.channels:
            if channel.name in seen:
                problems.append(f"duplicate channel bus name {channel.name!r}")
            seen.add(channel.name)
        return problems
