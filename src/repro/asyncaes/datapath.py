"""Ciphering data path of the asynchronous AES (32-bit iterative data flow).

The model executes one AES-128 encryption exactly as the architecture of
Fig. 8 moves the data: 32-bit words (one state column at a time) circulate
through the round loop — initial AddRoundKey, then SubBytes, ShiftRows,
MixColumns and AddRoundKey per round, with the last round skipping
MixColumns.  Every word that crosses an inter-block channel is recorded as a
:class:`~repro.asyncaes.keypath.ChannelTransfer`, which is what the
power-trace generator turns into rail transitions.

Functional correctness is checked against the software reference of
:mod:`repro.crypto.aes`: the ciphertext produced by walking the architecture
must equal ``AES(key).encrypt_block(plaintext)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.aes import AES, RoundTrace, state_to_bytes
from .controller import RoundController, RoundStep
from .keypath import ChannelTransfer, bytes_to_word, word_to_bytes


class DatapathError(Exception):
    """Raised on malformed operands or architecture inconsistencies."""


def block_to_words(block: Sequence[int]) -> List[int]:
    """Split a 16-byte block into four 32-bit column words (MSB first)."""
    if len(block) != 16:
        raise DatapathError(f"a block needs 16 bytes, got {len(block)}")
    return [bytes_to_word(block[4 * c: 4 * c + 4]) for c in range(4)]


def words_to_block(words: Sequence[int]) -> List[int]:
    """Reassemble four 32-bit column words into a 16-byte block."""
    if len(words) != 4:
        raise DatapathError(f"a block needs 4 words, got {len(words)}")
    block: List[int] = []
    for word in words:
        block.extend(word_to_bytes(word))
    return block


@dataclass
class EncryptionRun:
    """Everything produced by one encryption on the architecture model."""

    plaintext: List[int]
    ciphertext: List[int]
    transfers: List[ChannelTransfer] = field(default_factory=list)
    #: Parallel to ``transfers``: ``(state label, column)`` naming the cipher
    #: state word each transfer carries (label ``"plaintext"`` for the input
    #: words).  The slot schedule is data-independent, so a batched trace
    #: generator can rebuild the words of *any* plaintext from these sources
    #: without re-walking the architecture.
    word_sources: List[Tuple[str, int]] = field(default_factory=list)
    round_key_slots: Dict[int, int] = field(default_factory=dict)
    total_slots: int = 0
    reference: Optional[RoundTrace] = None

    def transfers_on(self, bus: str) -> List[ChannelTransfer]:
        return [t for t in self.transfers if t.bus == bus]

    def slot_of_first(self, bus: str) -> Optional[int]:
        on_bus = self.transfers_on(bus)
        return min((t.slot for t in on_bus), default=None)


@dataclass
class CipherDataPath:
    """The ciphering loop of the asynchronous AES bound to a fixed key."""

    key: Sequence[int]
    rounds: int = 10
    controller: RoundController = field(default_factory=RoundController)
    check_against_reference: bool = True

    def __post_init__(self) -> None:
        self.key = list(self.key)
        if len(self.key) != 16:
            raise DatapathError("the 32-bit iterative architecture implements AES-128")
        self.controller = RoundController(rounds=self.rounds)
        self._reference = AES(self.key)

    # ------------------------------------------------------------- encrypt
    def encrypt(self, plaintext: Sequence[int], *, start_slot: int = 0) -> EncryptionRun:
        """Run one encryption, recording every inter-block channel transfer."""
        plaintext = list(plaintext)
        if len(plaintext) != 16:
            raise DatapathError(f"plaintext must be 16 bytes, got {len(plaintext)}")

        reference = self._reference.encrypt_with_trace(plaintext)
        run = EncryptionRun(plaintext=plaintext, ciphertext=[], reference=reference)
        slot = start_slot

        def emit(bus: str, word: int, at: int, label: str,
                 source: Tuple[str, int]) -> None:
            run.transfers.append(ChannelTransfer(bus=bus, word=word, slot=at,
                                                 width=32, label=label))
            run.word_sources.append(source)

        def state_words(label: str) -> List[int]:
            return block_to_words(state_to_bytes(reference.states[label]))

        for token in self.controller.sequence():
            label = f"round{token.round_index}:{token.step.value}"
            if token.step is RoundStep.LOAD:
                words = block_to_words(plaintext)
                for offset, word in enumerate(words):
                    emit("data_in", word, slot + offset, label,
                         ("plaintext", offset))
                    emit("mux41_to_addkey0", word, slot + offset + 1, label,
                         ("plaintext", offset))
                slot += 5

            elif token.step is RoundStep.ADD_KEY0:
                run.round_key_slots[0] = slot
                state_label = "round0:addkey"
                words = state_words(state_label)
                for offset, word in enumerate(words):
                    emit("addkey0_to_mux", word, slot + offset + 1, label,
                         (state_label, offset))
                    emit("mux_to_dmux", word, slot + offset + 2, label,
                         (state_label, offset))
                    emit(f"dmux_to_c{offset}", word, slot + offset + 3, label,
                         (state_label, offset))
                slot += 7

            elif token.step is RoundStep.SUB_BYTES:
                input_label = (f"round{token.round_index - 1}:addkey"
                               if token.round_index > 1 else "round0:addkey")
                output_label = f"round{token.round_index}:subbytes"
                input_words = state_words(input_label)
                output_words = state_words(output_label)
                for offset in range(4):
                    emit(f"c{offset}_to_bytesub{offset}", input_words[offset],
                         slot + offset, label, (input_label, offset))
                    emit(f"bytesub{offset}_to_sr{offset}", output_words[offset],
                         slot + offset + 1, label, (output_label, offset))
                slot += 6

            elif token.step is RoundStep.SHIFT_ROWS:
                state_label = f"round{token.round_index}:shiftrows"
                words = state_words(state_label)
                for offset, word in enumerate(words):
                    emit(f"sr{offset}_to_muxmix", word, slot + offset, label,
                         (state_label, offset))
                slot += 5

            elif token.step is RoundStep.MIX_COLUMNS:
                input_label = f"round{token.round_index}:shiftrows"
                output_label = f"round{token.round_index}:mixcolumns"
                input_words = state_words(input_label)
                output_words = state_words(output_label)
                for offset in range(4):
                    emit("muxmix_to_mixcol", input_words[offset], slot + offset,
                         label, (input_label, offset))
                    emit("mixcol_to_ark", output_words[offset], slot + offset + 1,
                         label, (output_label, offset))
                slot += 6

            elif token.step is RoundStep.ADD_ROUND_KEY:
                run.round_key_slots[token.round_index] = slot
                state_label = f"round{token.round_index}:addkey"
                words = state_words(state_label)
                for offset, word in enumerate(words):
                    emit("roundloop_to_mux", word, slot + offset + 1, label,
                         (state_label, offset))
                    emit("mux_to_dmux", word, slot + offset + 2, label,
                         (state_label, offset))
                    emit(f"dmux_to_c{offset}", word, slot + offset + 3, label,
                         (state_label, offset))
                slot += 7

            elif token.step is RoundStep.ADD_LAST_KEY:
                run.round_key_slots[self.rounds] = slot
                input_label = f"round{self.rounds}:shiftrows"
                output_label = f"round{self.rounds}:addkey"
                input_words = state_words(input_label)
                output_words = state_words(output_label)
                for offset in range(4):
                    emit("muxmix_to_alk", input_words[offset], slot + offset,
                         label, (input_label, offset))
                    emit("alk_to_dmuxout", output_words[offset],
                         slot + offset + 1, label, (output_label, offset))
                slot += 6

            elif token.step is RoundStep.OUTPUT:
                state_label = f"round{self.rounds}:addkey"
                words = state_words(state_label)
                for offset, word in enumerate(words):
                    emit("data_out", word, slot + offset, label,
                         (state_label, offset))
                slot += 5

        run.ciphertext = list(reference.ciphertext)
        run.total_slots = slot
        if self.check_against_reference:
            rebuilt = words_to_block(block_to_words(run.ciphertext))
            if rebuilt != reference.ciphertext:
                raise DatapathError("architecture data flow diverged from the reference AES")
        return run

    # -------------------------------------------------------------- helpers
    def first_round_target_word(self, plaintext: Sequence[int],
                                column: int = 0) -> int:
        """The addkey0 output word of one column — the DPA target value."""
        trace = self._reference.encrypt_with_trace(list(plaintext))
        return block_to_words(state_to_bytes(trace.states["round0:addkey"]))[column]
