"""Top-level model of the asynchronous AES crypto-processor.

Ties the pieces of Fig. 8 together: the structural netlist (physical-design
view), the controller, the ciphering data path and the sub-key data path
(functional views) and the power-trace generator (side-channel view).  A
:class:`AsyncAesProcessor` is the object the examples and benchmarks handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..circuits.netlist import Netlist
from ..core.dpa import TraceSet
from ..crypto.aes import AES
from ..electrical.noise import NoiseModel
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..electrical.waveform import Waveform
from .architecture import AesArchitecture
from .controller import RoundController
from .datapath import CipherDataPath, EncryptionRun
from .keypath import KeySchedulePath
from .netlist_gen import AesNetlistGenerator
from .tracegen import AesPowerTraceGenerator, TraceGeneratorConfig


class ProcessorError(Exception):
    """Raised for inconsistent processor configurations."""


@dataclass
class AsyncAesProcessor:
    """The asynchronous AES crypto-processor of Section VI.

    Parameters
    ----------
    key:
        16-byte AES-128 key stored in the device.
    architecture:
        Block/channel structure (defaults to the full 32-bit architecture).
    netlist:
        Optional pre-built (typically placed and extracted) structural
        netlist; built on demand otherwise.
    technology:
        Electrical parameters used by the trace generator.
    noise:
        Optional noise model applied to generated traces.
    """

    key: Sequence[int]
    architecture: AesArchitecture = field(default_factory=AesArchitecture)
    netlist: Optional[Netlist] = None
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)
    noise: Optional[NoiseModel] = None
    trace_config: Optional[TraceGeneratorConfig] = None

    def __post_init__(self) -> None:
        self.key = list(self.key)
        if len(self.key) != 16:
            raise ProcessorError("the asynchronous AES implements AES-128 (16-byte keys)")
        self.controller = RoundController()
        self.datapath = CipherDataPath(self.key)
        self.keypath = KeySchedulePath(self.key)
        self.reference = AES(self.key)
        self._trace_generator: Optional[AesPowerTraceGenerator] = None

    # ------------------------------------------------------------ structure
    def build_netlist(self) -> Netlist:
        """Build (or return the cached) structural netlist of the processor."""
        if self.netlist is None:
            self.netlist = AesNetlistGenerator(self.architecture).build()
        return self.netlist

    def trace_generator(self) -> AesPowerTraceGenerator:
        if self._trace_generator is None:
            self._trace_generator = AesPowerTraceGenerator(
                self.build_netlist(), self.key, architecture=self.architecture,
                technology=self.technology, noise=self.noise,
                config=self.trace_config,
            )
        return self._trace_generator

    # ------------------------------------------------------------ function
    def encrypt(self, plaintext: Sequence[int]) -> List[int]:
        """Encrypt one block through the architecture model.

        The result is checked against the software AES reference; a mismatch
        would mean the architectural data flow is wrong.
        """
        run = self.datapath.encrypt(plaintext)
        expected = self.reference.encrypt_block(plaintext)
        if run.ciphertext != expected:
            raise ProcessorError("asynchronous data path diverged from the AES reference")
        return run.ciphertext

    def encrypt_with_activity(self, plaintext: Sequence[int]) -> EncryptionRun:
        """Encrypt and return the full channel-activity record."""
        return self.datapath.encrypt(plaintext)

    def round_keys(self) -> List[List[int]]:
        """The expanded round keys (bytes), computed by the sub-key path."""
        return self.keypath.round_keys_bytes()

    # --------------------------------------------------------- side channel
    def power_trace(self, plaintext: Sequence[int]) -> Waveform:
        """Synthesize the supply-current trace of one encryption."""
        return self.trace_generator().trace(plaintext)

    def acquire_traces(self, count: int, *, seed: Optional[int] = None) -> TraceSet:
        """Acquire ``count`` traces over random plaintexts (the DPA campaign)."""
        return self.trace_generator().random_trace_set(count, seed=seed)
