"""Sub-key data path of the asynchronous AES (on-the-fly key expansion).

Fig. 8's AES_KEY loop computes the Rijndael round keys on the fly, one 32-bit
word at a time, and synchronises with the ciphering data path through the
``Sub-key`` channel.  This module models that loop at the data-flow level: it
performs the word-by-word key expansion while recording, in order, every
32-bit transfer on the key-path channels — the information the power-trace
generator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..crypto.aes_tables import RCON, SBOX


class KeyPathError(Exception):
    """Raised for malformed keys."""


@dataclass(frozen=True)
class ChannelTransfer:
    """One word-wide communication on a named channel bus.

    ``slot`` is the sequential occupation index used to time the transfer in
    the synthesized power trace; ``width`` is the number of dual-rail bits the
    word occupies on the bus.
    """

    bus: str
    word: int
    slot: int
    width: int = 32
    label: str = ""


def bytes_to_word(byte_values: Sequence[int]) -> int:
    """Pack four bytes (MSB first) into a 32-bit word."""
    if len(byte_values) != 4:
        raise KeyPathError(f"a word needs 4 bytes, got {len(byte_values)}")
    word = 0
    for value in byte_values:
        if not 0 <= value <= 0xFF:
            raise KeyPathError(f"byte {value} out of range")
        word = (word << 8) | value
    return word


def word_to_bytes(word: int) -> List[int]:
    """Unpack a 32-bit word into four bytes (MSB first)."""
    if not 0 <= word < (1 << 32):
        raise KeyPathError(f"word {word:#x} out of range")
    return [(word >> 24) & 0xFF, (word >> 16) & 0xFF, (word >> 8) & 0xFF, word & 0xFF]


def rot_word(word: int) -> int:
    """Rotate a word left by one byte (the RotWord of the key schedule)."""
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def sub_word(word: int) -> int:
    """Apply the S-box to each byte of a word (the SubWord of the key schedule)."""
    return bytes_to_word([SBOX[b] for b in word_to_bytes(word)])


@dataclass
class KeySchedulePath:
    """The sub-key loop: expands the key and records its channel activity.

    Parameters
    ----------
    key:
        The 16-byte AES-128 cipher key.
    rounds:
        Number of AES rounds (10 for AES-128).
    """

    key: Sequence[int]
    rounds: int = 10
    transfers: List[ChannelTransfer] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.key = list(self.key)
        if len(self.key) != 16:
            raise KeyPathError(
                f"the 32-bit iterative architecture implements AES-128; "
                f"got a {len(self.key)}-byte key"
            )

    # ------------------------------------------------------------- schedule
    def round_key_words(self) -> List[List[int]]:
        """The 4 words of every round key (``rounds + 1`` entries)."""
        words: List[int] = [bytes_to_word(self.key[4 * i: 4 * i + 4]) for i in range(4)]
        for i in range(4, 4 * (self.rounds + 1)):
            temp = words[i - 1]
            if i % 4 == 0:
                temp = sub_word(rot_word(temp)) ^ (RCON[i // 4 - 1] << 24)
            words.append(words[i - 4] ^ temp)
        return [words[4 * r: 4 * r + 4] for r in range(self.rounds + 1)]

    def round_keys_bytes(self) -> List[List[int]]:
        """The round keys as 16-byte lists (natural order)."""
        result = []
        for round_words in self.round_key_words():
            round_bytes: List[int] = []
            for word in round_words:
                round_bytes.extend(word_to_bytes(word))
            result.append(round_bytes)
        return result

    # ----------------------------------------------------------- simulation
    def run(self, start_slot: int = 0) -> Tuple[List[List[int]], int]:
        """Execute the key-schedule loop, recording channel transfers.

        Returns ``(round key words, next free slot)``.  The transfer pattern
        follows the architecture: every round-key word circulates through the
        feedback loop (``dup_to_mux91`` → ``mux91_to_fifo`` → ``fifo_to_demux13``
        → ``demux13_to_xorkey`` → ``xor_key`` → ``duplicate``), and the last
        word of each round key additionally traverses the RotWord/SubWord/Rcon
        branch (``mux91_to_mux21`` → ``mux21_to_ksbox`` → ``ksbox_to_demux12``
        → ``demux12_to_xorrc`` → ``xorrc_to_mux31`` → ``mux31_to_xorkey``).
        """
        self.transfers = []
        slot = start_slot
        round_words = self.round_key_words()

        # Key loading: the cipher key enters through the interface.
        for word in round_words[0]:
            self._emit("key_in", word, slot, "load")
            self._emit("mux91_to_fifo", word, slot + 1, "load")
            slot += 1
        slot += 1

        previous = round_words[0]
        for round_index in range(1, self.rounds + 1):
            current = round_words[round_index]
            # RotWord/SubWord/Rcon branch on the last word of the previous key.
            last = previous[3]
            self._emit("dup_to_mux91", last, slot, f"round{round_index}")
            self._emit("mux91_to_mux21", last, slot + 1, f"round{round_index}")
            self._emit("mux21_to_ksbox", rot_word(last), slot + 2, f"round{round_index}")
            subbed = sub_word(rot_word(last))
            self._emit("ksbox_to_demux12", subbed, slot + 3, f"round{round_index}")
            self._emit("demux12_to_xorrc", subbed, slot + 4, f"round{round_index}")
            with_rcon = subbed ^ (RCON[round_index - 1] << 24)
            self._emit("xorrc_to_mux31", with_rcon, slot + 5, f"round{round_index}")
            self._emit("mux31_to_xorkey", with_rcon, slot + 6, f"round{round_index}")
            slot += 7

            for word_index in range(4):
                operand = previous[word_index]
                self._emit("fifo_to_demux13", operand, slot, f"round{round_index}")
                self._emit("demux13_to_xorkey", operand, slot + 1, f"round{round_index}")
                produced = current[word_index]
                self._emit("xorkey_to_dup", produced, slot + 2, f"round{round_index}")
                self._emit("dup_to_mux91", produced, slot + 3, f"round{round_index}")
                self._emit("mux91_to_fifo", produced, slot + 3, f"round{round_index}")
                slot += 4
            previous = current

        return round_words, slot

    def _emit(self, bus: str, word: int, slot: int, label: str) -> None:
        self.transfers.append(ChannelTransfer(bus=bus, word=word, slot=slot,
                                              width=32, label=label))

    # -------------------------------------------------------------- queries
    def transfers_on(self, bus: str) -> List[ChannelTransfer]:
        return [t for t in self.transfers if t.bus == bus]

    def subkey_transfers(self, round_key_words: List[List[int]],
                         slots: Dict[int, int]) -> List[ChannelTransfer]:
        """Transfers of round keys on the Sub-key channels towards the core.

        ``slots`` maps round index → slot at which the ciphering data path
        consumes that round key (provided by the datapath model so the two
        loops stay synchronised, as the paper's channel ``Sub-key`` does).
        """
        result = []
        for round_index, slot in sorted(slots.items()):
            if round_index == 0:
                bus = "key0_to_addkey0"
            elif round_index == self.rounds:
                bus = "subkey_to_alk"
            else:
                bus = "subkey_to_ark"
            for offset, word in enumerate(round_key_words[round_index]):
                result.append(ChannelTransfer(bus=bus, word=word, slot=slot + offset,
                                              width=32, label=f"key{round_index}"))
        return result
