"""QDI asynchronous AES crypto-processor (Fig. 8 / Fig. 9 of the paper).

Three complementary views of the same processor:

* **physical** — :mod:`repro.asyncaes.architecture` and
  :mod:`repro.asyncaes.netlist_gen` describe the blocks, the inter-block
  dual-rail channels and the placeable structural netlist used by the
  place-and-route flows and the Table-2 criterion evaluation;
* **functional** — :mod:`repro.asyncaes.controller`,
  :mod:`repro.asyncaes.datapath` and :mod:`repro.asyncaes.keypath` execute
  AES-128 exactly as the 32-bit iterative architecture moves the data, and
  are checked against the software reference;
* **side-channel** — :mod:`repro.asyncaes.tracegen` synthesizes supply-current
  traces whose only data dependence is the capacitance mismatch of the
  channel rails, enabling end-to-end DPA experiments on both flows.
"""

from .architecture import (
    ALL_BLOCKS,
    ALL_CHANNELS,
    AesArchitecture,
    BlockSpec,
    ChannelBusSpec,
    CORE_BLOCKS,
    CORE_CHANNELS,
    KEY_BLOCKS,
    KEY_CHANNELS,
    WORD_WIDTH,
)
from .controller import ControlToken, ControllerError, RoundController, RoundStep
from .datapath import (
    CipherDataPath,
    DatapathError,
    EncryptionRun,
    block_to_words,
    words_to_block,
)
from .keypath import (
    ChannelTransfer,
    KeyPathError,
    KeySchedulePath,
    bytes_to_word,
    rot_word,
    sub_word,
    word_to_bytes,
)
from .netlist_gen import AesNetlistGenerator, build_aes_netlist
from .processor import AsyncAesProcessor, ProcessorError
from .simtrace import (
    AesSimulatorTraceGenerator,
    SimTraceConfig,
    SimulatorTraceGenerator,
    XorBankStimulus,
    xor_bank_trace_generator,
)
from .tracegen import (
    AesPowerTraceGenerator,
    TraceGenerationError,
    TraceGeneratorConfig,
    fixed_vs_random_plaintexts,
    generate_trace_sets_for_flows,
    word_digits,
)

__all__ = [
    "ALL_BLOCKS",
    "ALL_CHANNELS",
    "AesArchitecture",
    "BlockSpec",
    "ChannelBusSpec",
    "CORE_BLOCKS",
    "CORE_CHANNELS",
    "KEY_BLOCKS",
    "KEY_CHANNELS",
    "WORD_WIDTH",
    "ControlToken",
    "ControllerError",
    "RoundController",
    "RoundStep",
    "CipherDataPath",
    "DatapathError",
    "EncryptionRun",
    "block_to_words",
    "words_to_block",
    "ChannelTransfer",
    "KeyPathError",
    "KeySchedulePath",
    "bytes_to_word",
    "rot_word",
    "sub_word",
    "word_to_bytes",
    "AesNetlistGenerator",
    "build_aes_netlist",
    "AsyncAesProcessor",
    "ProcessorError",
    "AesSimulatorTraceGenerator",
    "SimTraceConfig",
    "SimulatorTraceGenerator",
    "XorBankStimulus",
    "xor_bank_trace_generator",
    "AesPowerTraceGenerator",
    "TraceGenerationError",
    "TraceGeneratorConfig",
    "fixed_vs_random_plaintexts",
    "generate_trace_sets_for_flows",
    "word_digits",
]
