"""Round controller of the asynchronous AES (the finite state machine of Fig. 8).

The paper describes the crypto-processor as "an iterative structure, based on
three self-timed loops synchronized through communicating channels" where
"the controller (finite state machine) generates signals which control both
data-paths so that they execute Nr iterations as specified in the Rijndael
algorithm".  This module models that controller as an explicit FSM producing
the ordered sequence of control tokens the two data paths consume; the
data-flow models (:mod:`repro.asyncaes.datapath`, :mod:`repro.asyncaes.keypath`)
follow this sequence when they emit channel transfers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


class RoundStep(enum.Enum):
    """Steps of the AES round sequencing."""

    LOAD = "load"
    ADD_KEY0 = "addkey0"
    SUB_BYTES = "subbytes"
    SHIFT_ROWS = "shiftrows"
    MIX_COLUMNS = "mixcolumns"
    ADD_ROUND_KEY = "addroundkey"
    ADD_LAST_KEY = "addlastkey"
    OUTPUT = "output"


@dataclass(frozen=True)
class ControlToken:
    """One control decision of the FSM: which step of which round to run."""

    round_index: int
    step: RoundStep


class ControllerError(Exception):
    """Raised when the FSM is driven out of sequence."""


@dataclass
class RoundController:
    """Finite state machine sequencing ``rounds`` AES rounds.

    The token sequence for the standard 10-round AES-128 is::

        LOAD, ADD_KEY0,
        (SUB_BYTES, SHIFT_ROWS, MIX_COLUMNS, ADD_ROUND_KEY)  x 9,
        SUB_BYTES, SHIFT_ROWS, ADD_LAST_KEY, OUTPUT
    """

    rounds: int = 10
    issued: List[ControlToken] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ControllerError(f"round count must be >= 1, got {self.rounds}")

    # ----------------------------------------------------------- sequencing
    def sequence(self) -> Iterator[ControlToken]:
        """Yield the complete control sequence for one encryption."""
        yield ControlToken(0, RoundStep.LOAD)
        yield ControlToken(0, RoundStep.ADD_KEY0)
        for round_index in range(1, self.rounds):
            yield ControlToken(round_index, RoundStep.SUB_BYTES)
            yield ControlToken(round_index, RoundStep.SHIFT_ROWS)
            yield ControlToken(round_index, RoundStep.MIX_COLUMNS)
            yield ControlToken(round_index, RoundStep.ADD_ROUND_KEY)
        yield ControlToken(self.rounds, RoundStep.SUB_BYTES)
        yield ControlToken(self.rounds, RoundStep.SHIFT_ROWS)
        yield ControlToken(self.rounds, RoundStep.ADD_LAST_KEY)
        yield ControlToken(self.rounds, RoundStep.OUTPUT)

    def run(self) -> List[ControlToken]:
        """Materialise (and record) the full control sequence."""
        self.issued = list(self.sequence())
        return self.issued

    # -------------------------------------------------------------- queries
    def token_count(self) -> int:
        """Number of control tokens of one encryption."""
        return 2 + 4 * (self.rounds - 1) + 4

    def steps_of_round(self, round_index: int) -> List[RoundStep]:
        """The steps executed during a given round."""
        if round_index == 0:
            return [RoundStep.LOAD, RoundStep.ADD_KEY0]
        if round_index < self.rounds:
            return [RoundStep.SUB_BYTES, RoundStep.SHIFT_ROWS,
                    RoundStep.MIX_COLUMNS, RoundStep.ADD_ROUND_KEY]
        if round_index == self.rounds:
            return [RoundStep.SUB_BYTES, RoundStep.SHIFT_ROWS,
                    RoundStep.ADD_LAST_KEY, RoundStep.OUTPUT]
        raise ControllerError(
            f"round {round_index} out of range for a {self.rounds}-round controller"
        )

    def validate_sequence(self, tokens: Optional[List[ControlToken]] = None) -> List[str]:
        """Check a token sequence against the Rijndael round structure."""
        tokens = tokens if tokens is not None else self.issued
        problems: List[str] = []
        expected = list(self.sequence())
        if len(tokens) != len(expected):
            problems.append(
                f"expected {len(expected)} control tokens, got {len(tokens)}"
            )
            return problems
        for index, (got, want) in enumerate(zip(tokens, expected)):
            if got != want:
                problems.append(
                    f"token {index}: expected {want.step.value} of round "
                    f"{want.round_index}, got {got.step.value} of round {got.round_index}"
                )
        return problems
