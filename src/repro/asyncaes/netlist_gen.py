"""Structural netlist generation for the asynchronous AES crypto-processor.

The Table-2 experiment of the paper needs a *placeable* design whose
inter-block dual-rail channels can be measured after place and route.  This
generator turns the :class:`~repro.asyncaes.architecture.AesArchitecture`
description into a flat gate-level netlist in which

* every inter-block channel bit is materialised as two rail nets (annotated
  with their channel name, so the criterion evaluation can find them) plus an
  acknowledge net;
* every block contains explicit **interface cells** — one rail-driver Muller
  gate per outgoing rail, one capture gate and one completion/acknowledge
  driver per incoming bit — because their placement is what determines the
  channel capacitances;
* every block also contains **internal logic** sized from its gate budget and
  wired as a connected mesh between its captures and its drivers, so the
  placement engines see realistic per-block connectivity and area.

The functional behaviour of the processor is modelled separately
(:mod:`repro.asyncaes.datapath`); this netlist is the physical-design view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuits.netlist import Netlist
from .architecture import AesArchitecture, BlockSpec


@dataclass
class BlockInterface:
    """Net handles of one block's channel interfaces (used by the filler mesh)."""

    capture_nets: List[str] = field(default_factory=list)
    driver_input_nets: List[str] = field(default_factory=list)


class AesNetlistGenerator:
    """Builds the flat structural netlist of the asynchronous AES."""

    def __init__(self, architecture: Optional[AesArchitecture] = None, *,
                 name: str = "async_aes"):
        self.architecture = architecture if architecture is not None else AesArchitecture()
        problems = self.architecture.validate()
        if problems:
            raise ValueError("invalid architecture: " + "; ".join(problems))
        self.name = name

    # ------------------------------------------------------------------ build
    def build(self) -> Netlist:
        """Generate the netlist (a fresh object on every call)."""
        netlist = Netlist(self.name)
        netlist.add_input("reset")

        interfaces: Dict[str, BlockInterface] = {
            block.name: BlockInterface() for block in self.architecture.blocks
        }

        self._declare_channels(netlist)
        for block in self.architecture.blocks:
            self._build_block_interface(netlist, block, interfaces[block.name])
        for block in self.architecture.blocks:
            self._build_block_internals(netlist, block, interfaces[block.name])
        return netlist

    # ------------------------------------------------------------- channels
    def _declare_channels(self, netlist: Netlist) -> None:
        for bus in self.architecture.channels:
            for bit in range(bus.width):
                channel_name = bus.channel_name(bit)
                for rail in range(bus.radix):
                    netlist.add_net(bus.rail_net(bit, rail), channel=channel_name,
                                    rail=rail)
                netlist.add_net(bus.ack_net(bit))

    # ----------------------------------------------------------- interfaces
    def _build_block_interface(self, netlist: Netlist, block: BlockSpec,
                               interface: BlockInterface) -> None:
        reset_net = f"{block.name}/reset"
        netlist.add_instance(f"{block.name}/reset_buf", "BUF",
                             {"A": "reset", "Z": reset_net}, block=block.name)

        # Output rails: one resettable Muller driver per rail.
        for bus in self.architecture.outgoing(block.name):
            for bit in range(bus.width):
                for rail in range(bus.radix):
                    data_net = f"{block.name}/drv_{bus.name}_b{bit}_r{rail}_in"
                    enable_net = f"{block.name}/drv_{bus.name}_b{bit}_en"
                    netlist.add_net(data_net, block=block.name)
                    netlist.add_net(enable_net, block=block.name)
                    netlist.add_instance(
                        f"{block.name}/drv_{bus.name}_b{bit}_r{rail}",
                        "MULLER2_R",
                        {"A": data_net, "B": enable_net, "RST": reset_net,
                         "Z": bus.rail_net(bit, rail)},
                        block=block.name,
                    )
                    interface.driver_input_nets.append(data_net)
                interface.driver_input_nets.append(
                    f"{block.name}/drv_{bus.name}_b{bit}_en"
                )

        # Input rails: per bit, one completion gate over both rails (driving
        # the acknowledge back to the producer through a buffer) plus one
        # data-capture Muller gate per rail — a rail of a real dual-rail
        # channel always loads at least the completion detector and the
        # receiving bit-slice logic.
        for bus in self.architecture.incoming(block.name):
            for bit in range(bus.width):
                capture_net = f"{block.name}/cap_{bus.name}_b{bit}"
                netlist.add_net(capture_net, block=block.name)
                netlist.add_instance(
                    f"{block.name}/cap_{bus.name}_b{bit}",
                    "OR2",
                    {"A": bus.rail_net(bit, 0), "B": bus.rail_net(bit, 1),
                     "Z": capture_net},
                    block=block.name,
                )
                netlist.add_instance(
                    f"{block.name}/ackgen_{bus.name}_b{bit}",
                    "BUF",
                    {"A": capture_net, "Z": bus.ack_net(bit)},
                    block=block.name,
                )
                interface.capture_nets.append(capture_net)
                for rail in range(bus.radix):
                    sink_net = f"{block.name}/rx_{bus.name}_b{bit}_r{rail}"
                    netlist.add_net(sink_net, block=block.name)
                    netlist.add_instance(
                        f"{block.name}/rx_{bus.name}_b{bit}_r{rail}",
                        "MULLER2",
                        {"A": bus.rail_net(bit, rail), "B": capture_net,
                         "Z": sink_net},
                        block=block.name,
                    )
                    interface.capture_nets.append(sink_net)

    # ------------------------------------------------------------ internals
    def _build_block_internals(self, netlist: Netlist, block: BlockSpec,
                               interface: BlockInterface) -> None:
        """Fill the block with a connected mesh of internal gates.

        The mesh consumes the capture nets, produces the driver-input nets and
        chains Muller gates in between until the block's gate budget is
        reached.  The exact logic is irrelevant for physical design; what
        matters is that the block is internally connected (so the annealer
        keeps it compact) and occupies a realistic area.
        """
        budget = self.architecture.scaled_gate_budget(block.name)
        existing = 1  # reset buffer
        existing += sum(1 for _ in ())  # placeholder for clarity
        interface_cells = (
            len(interface.driver_input_nets)  # roughly one driver per input net
            + 2 * len(interface.capture_nets)
        )
        filler_count = max(4, budget - interface_cells - existing)

        sources = list(interface.capture_nets)
        if not sources:
            seed_net = f"{block.name}/seed"
            netlist.add_net(seed_net, block=block.name)
            netlist.add_instance(f"{block.name}/seed_inv", "INV",
                                 {"A": "reset", "Z": seed_net}, block=block.name)
            sources = [seed_net]

        # The filler logic is wired as a two-dimensional grid (each cell sees
        # its predecessor and the cell one "row" back) so that the block forms
        # a compact cluster under wirelength optimisation — a chain would let
        # the block smear across the die and exaggerate channel dissymmetry
        # beyond what a real flat flow produces.
        stride = max(2, int(filler_count ** 0.5))
        previous = sources[0]
        mesh_nets: List[str] = []
        for index in range(filler_count):
            out_net = f"{block.name}/mesh_{index}"
            netlist.add_net(out_net, block=block.name)
            if index >= stride:
                tap = mesh_nets[index - stride]
            else:
                tap = sources[index % len(sources)]
            netlist.add_instance(
                f"{block.name}/mesh_{index}",
                "MULLER2",
                {"A": previous, "B": tap, "Z": out_net},
                block=block.name,
            )
            mesh_nets.append(out_net)
            previous = out_net

        # Drive every driver-input net from the mesh so output drivers are
        # connected to the block's internals.  The driver-input nets come in
        # groups of three per channel bit (rail 0 data, rail 1 data, shared
        # enable); both rails' feed gates tap the *same* mesh and capture
        # nets, reflecting that the two rails of a dual-rail bit are produced
        # by the same bit-slice logic cone.
        feeders = mesh_nets if mesh_nets else sources
        for index, target_net in enumerate(interface.driver_input_nets):
            group = index // 3
            feeder = feeders[group % len(feeders)]
            second = sources[group % len(sources)]
            if index % 3 == 2:
                # The enable/acknowledge feed taps the next mesh cell so the
                # bit slice is anchored by two neighbouring internal nodes.
                feeder = feeders[(group + 1) % len(feeders)]
            netlist.add_instance(
                f"{block.name}/feed_{index}",
                "AND2",
                {"A": feeder, "B": second, "Z": target_net},
                block=block.name,
            )


def build_aes_netlist(word_width: int = 32, *, detail: float = 0.3,
                      name: str = "async_aes") -> Netlist:
    """Convenience wrapper: build the asynchronous AES structural netlist.

    ``detail`` scales the per-block gate budgets (1.0 ≈ the full-size design,
    which is slow to place in pure Python; 0.3 keeps the interface structure
    intact while shrinking the filler logic).
    """
    architecture = AesArchitecture(word_width=word_width, detail=detail)
    return AesNetlistGenerator(architecture, name=name).build()
