"""Simulator-backed power-trace generation.

:class:`~repro.asyncaes.tracegen.AesPowerTraceGenerator` applies the paper's
charge model *analytically*: it never runs the event simulator, it scatters
``C · Vdd`` charges straight from the architecture's transfer schedule.  This
module closes the loop by generating traces **from committed simulator
transitions**: a netlist is driven through
:class:`~repro.circuits.simulator.Simulator`, and every committed transition
deposits the charge of its net's extracted capacitance into the supply
current — the same ``(n_traces, n_samples)`` matrix contract as
``trace_batch``, but sourced from genuinely simulated switching activity.

Two device front-ends are provided:

* :class:`XorBankStimulus` / :func:`xor_bank_trace_generator` — the XOR
  reference design of Section IV, simulated gate by gate through the
  four-phase handshake.  The traces carry the full RC timing of the placed
  capacitances, and a DPA over them recovers the key byte end to end.
* :class:`AesSimulatorTraceGenerator` — the structural AES netlist, driven by
  replaying the data-path transfer schedule as rail events through the event
  engine.  Noise-free replay traces are sample-identical to the analytic
  generator (the cross-validation anchoring both paths), while
  ``propagate=True`` additionally simulates the interface-gate churn the
  idealized model abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from ..circuits.handshake import FourPhaseConsumer, FourPhaseProducer, ResetPulse
from ..circuits.library import XorBank
from ..circuits.netlist import Netlist
from ..circuits.signals import Logic
from ..circuits.simulator import DelayModel, Simulator
from ..core.dpa import TraceSet
from ..electrical.noise import NoiseModel, apply_noise_matrix
from ..electrical.technology import HCMOS9_LIKE, Technology
from .architecture import AesArchitecture
from .datapath import CipherDataPath
from .keypath import KeySchedulePath
from .tracegen import TraceGenerationError, TraceGeneratorConfig, word_digits


class SimulationStimulus(Protocol):
    """Per-plaintext stimulus protocol of :class:`SimulatorTraceGenerator`.

    ``apply`` receives a fresh simulator and schedules whatever drives and
    environment processes realise one acquisition of the plaintext; the
    generator then settles the simulation and converts the committed
    transitions into a supply-current trace.
    """

    def apply(self, sim: Simulator, plaintext: Sequence[int]) -> None:
        ...


@dataclass
class SimTraceConfig:
    """Sampling parameters of simulator-backed traces.

    ``duration_s`` fixes the trace length; when omitted, the first trace the
    generator ever simulates sizes it (its end time plus ``margin_fraction``
    headroom) and the geometry is pinned for the generator's lifetime, so
    consecutive batches and chunk streams stay concatenable.  QDI blocks
    have data-independent transition counts, so later end times stay within
    that envelope.
    """

    sample_period_s: float = 25e-12
    duration_s: Optional[float] = None
    margin_fraction: float = 0.5


class SimulatorTraceGenerator:
    """Generates supply-current traces by event-simulating a netlist.

    Parameters
    ----------
    netlist:
        The device under attack, with extracted per-net capacitances.
    stimulus:
        Maps each plaintext to simulator drives/processes
        (:class:`SimulationStimulus`).
    include_nets:
        Restrict the current synthesis to these nets (default: every net
        driven by a gate — environment stimuli draw no supply current).
    use_load_cap:
        Deposit the load capacitance ``Cl`` per transition instead of the
        full node capacitance ``C = Cl + Cpar + Csc``.
    technology, noise, config, delay_model:
        Electrical parameters, optional additive noise, sampling parameters
        and the RC delay model of the underlying simulations.

    Every committed transition of an included net deposits its charge
    ``C · Vdd`` into the sample bin of its commit time, so the trace carries
    both leakage mechanisms of the paper: the per-rail charge difference of
    equation (12) *and* the capacitance-dependent time shifts of Fig. 7 —
    the second is exactly what the analytic generator idealizes away.
    """

    def __init__(self, netlist: Netlist, stimulus: SimulationStimulus, *,
                 include_nets: Optional[Iterable[str]] = None,
                 use_load_cap: bool = False,
                 technology: Technology = HCMOS9_LIKE,
                 noise: Optional[NoiseModel] = None,
                 config: Optional[SimTraceConfig] = None,
                 delay_model: Optional[DelayModel] = None):
        self.netlist = netlist
        self.stimulus = stimulus
        self.technology = technology
        self.noise = noise
        self.config = config if config is not None else SimTraceConfig()
        self.delay_model = delay_model
        if include_nets is not None:
            self._allowed: Set[str] = set(include_nets)
        else:
            self._allowed = {net.name for net in netlist.nets()
                             if net.driver is not None}
        self._use_load_cap = use_load_cap
        self._refresh_caps()
        # Sample count pinned by the first generated batch so every later
        # batch and chunk of this generator shares one rectangular geometry.
        self._pinned_samples: Optional[int] = None

    def _refresh_caps(self) -> None:
        """(Re)collect per-net capacitances, keyed on the netlist version.

        A hardening mutation (dummy load, routing-cap rewrite) bumps the
        netlist's cap version; the next trace generation re-reads the caps
        instead of depositing charges of the pre-countermeasure design.
        """
        cap_of = (self.netlist.load_cap_ff if self._use_load_cap
                  else self.netlist.total_cap_ff)
        self._cap_ff: Dict[str, float] = {name: cap_of(name)
                                          for name in self._allowed}
        self._cap_state = self.netlist.state_version

    def _ensure_caps_current(self) -> None:
        if self._cap_state != self.netlist.state_version:
            self._refresh_caps()

    # ------------------------------------------------------------ one trace
    def _simulate(self, plaintext: Sequence[int]):
        sim = Simulator(self.netlist, delay_model=self.delay_model)
        self.stimulus.apply(sim, plaintext)
        return sim.settle()

    def _sample_count(self, first_end_time: float) -> int:
        if self._pinned_samples is not None:
            return self._pinned_samples
        cfg = self.config
        if cfg.duration_s is not None:
            duration = cfg.duration_s
        else:
            duration = (first_end_time * (1.0 + cfg.margin_fraction)
                        + 4 * cfg.sample_period_s)
        return max(1, int(np.ceil(duration / cfg.sample_period_s)))

    def _deposit(self, trace, row: np.ndarray) -> None:
        dt = self.config.sample_period_s
        scale = 1e-15 * self.technology.vdd / dt
        sample_count = row.shape[0]
        for transition in trace.transitions:
            cap = self._cap_ff.get(transition.net)
            if cap is None:
                continue
            index = int(round(transition.time / dt))
            if index >= sample_count or index < 0:
                raise TraceGenerationError(
                    f"transition on {transition.net!r} at "
                    f"t={transition.time:.3e}s falls outside the "
                    f"{sample_count}-sample trace; pass SimTraceConfig"
                    "(duration_s=...) sized for the slowest computation"
                )
            row[index] += cap * scale

    # ------------------------------------------------------------ trace sets
    def trace_batch(self, plaintexts: Iterable[Sequence[int]], *,
                    noise_start_index: int = 0) -> TraceSet:
        """Simulate every plaintext and bundle the traces as one matrix.

        Same contract as the analytic generator's ``trace_batch``: an
        ``(n_traces, n_samples)``-backed :class:`TraceSet`, with
        ``noise_start_index`` pinning the batch's place in the noise stream
        so chunked generation is sample-identical to one big batch.
        """
        self._ensure_caps_current()
        plaintexts = [list(p) for p in plaintexts]
        if not plaintexts:
            return TraceSet()
        traces = [self._simulate(plaintext) for plaintext in plaintexts]
        sample_count = self._sample_count(traces[0].end_time)
        if self.config.duration_s is None:
            # Pin the geometry so every later batch/chunk of this generator
            # shares one sample count (batches must stay concatenable).
            self._pinned_samples = sample_count
        matrix = np.zeros((len(plaintexts), sample_count))
        for row, trace in enumerate(traces):
            self._deposit(trace, matrix[row])
        dt = self.config.sample_period_s
        if self.noise is not None:
            matrix = apply_noise_matrix(self.noise, matrix, dt, 0.0,
                                        noise_start_index)
        return TraceSet.from_matrix(matrix, plaintexts, dt, 0.0)

    def trace_chunks(self, plaintexts: Iterable[Sequence[int]],
                     chunk_size: int, *,
                     noise_start_index: int = 0) -> Iterable[TraceSet]:
        """Yield the batch as bounded-memory blocks (streaming contract)."""
        if chunk_size < 1:
            raise TraceGenerationError(
                f"chunk size must be >= 1, got {chunk_size}")
        plaintexts = [list(p) for p in plaintexts]
        # The first chunk's trace_batch pins the sample geometry, so every
        # later chunk shares one rectangular sample count.
        for start in range(0, len(plaintexts), chunk_size):
            yield self.trace_batch(
                plaintexts[start:start + chunk_size],
                noise_start_index=noise_start_index + start,
            )

    def trace_set(self, plaintexts: Iterable[Sequence[int]]) -> TraceSet:
        return self.trace_batch(plaintexts)


# ------------------------------------------------------- XOR reference design
@dataclass
class XorBankStimulus:
    """Four-phase testbench computing ``plaintext byte ⊕ key`` on a XOR bank.

    Each bit of the bank gets its own producers (operand ``a`` carries the
    plaintext bit, operand ``b`` the key bit) and an output consumer, plus
    one reset pulse per bit block — the AddRoundKey acquisition of
    Section IV, simulated at the gate level.
    """

    bank: XorBank
    key_byte: int
    byte_index: int = 0
    start_time: float = 200e-12
    env_delay: float = 20e-12
    reset_duration: float = 100e-12

    def apply(self, sim: Simulator, plaintext: Sequence[int]) -> None:
        word = int(plaintext[self.byte_index])
        key = int(self.key_byte)
        for bit, block in enumerate(self.bank.bits):
            a_bit = (word >> bit) & 1
            b_bit = (key >> bit) & 1
            sim.add_process(FourPhaseProducer(
                block.inputs[0], block.ack_out, [a_bit],
                start_time=self.start_time, env_delay=self.env_delay,
                name=f"producer[a{bit}]",
            ))
            sim.add_process(FourPhaseProducer(
                block.inputs[1], block.ack_out, [b_bit],
                start_time=self.start_time, env_delay=self.env_delay,
                name=f"producer[b{bit}]",
            ))
            sim.add_process(FourPhaseConsumer(
                block.outputs[0], ack_net=block.ack_in, ack_active_high=False,
                env_delay=self.env_delay, name=f"consumer[c{bit}]",
            ))
            if block.reset is not None:
                sim.add_process(ResetPulse(block.reset,
                                           duration=self.reset_duration,
                                           name=f"reset[{bit}]"))


def xor_bank_trace_generator(bank: XorBank, key_byte: int, *,
                             byte_index: int = 0,
                             technology: Technology = HCMOS9_LIKE,
                             noise: Optional[NoiseModel] = None,
                             config: Optional[SimTraceConfig] = None,
                             delay_model: Optional[DelayModel] = None
                             ) -> SimulatorTraceGenerator:
    """Simulator-backed trace generator for the XOR reference design.

    The returned generator's trace sets flow straight into
    :func:`repro.core.dpa.dpa_attack`: with unbalanced output-rail
    capacitances, a Hamming-weight AddRoundKey selection recovers
    ``key_byte`` from the simulated traces end to end.
    """
    stimulus = XorBankStimulus(bank, key_byte, byte_index=byte_index)
    return SimulatorTraceGenerator(
        bank.netlist, stimulus, technology=technology, noise=noise,
        config=config, delay_model=delay_model,
    )


# ------------------------------------------------------------- AES datapath
class AesSimulatorTraceGenerator:
    """Simulator-backed traces of the asynchronous AES netlist.

    The structural AES netlist's internals are placement filler, not the
    functional datapath, so the device is driven the way the real chip's
    channels are: each data-path (and key-path) transfer of the architecture
    model becomes a pair of rail events — evaluation rise and return-to-zero
    fall — replayed through the event simulator, and the committed rail
    transitions deposit their extracted capacitance charges.

    With ``propagate=False`` (the default) the timeline is a pure replay and
    the noise-free traces are **sample-identical** to
    :meth:`AesPowerTraceGenerator.trace_batch` — the cross-validation that
    anchors the analytic charge model to simulated activity.  With
    ``propagate=True`` the interface gates of the netlist react to the rail
    events too, adding the capture/completion churn the idealized model
    leaves out (the synthesis can then also be widened beyond the rails with
    ``include_internal=True``).
    """

    def __init__(self, netlist: Netlist, key: Sequence[int], *,
                 architecture: Optional[AesArchitecture] = None,
                 technology: Technology = HCMOS9_LIKE,
                 noise: Optional[NoiseModel] = None,
                 config: Optional[TraceGeneratorConfig] = None,
                 propagate: bool = False,
                 include_internal: bool = False):
        self.netlist = netlist
        self.key = list(key)
        self.architecture = (architecture if architecture is not None
                             else AesArchitecture())
        self.technology = technology
        self.noise = noise
        self.config = config if config is not None else TraceGeneratorConfig()
        self.propagate = propagate
        self.include_internal = include_internal
        if include_internal and not propagate:
            raise TraceGenerationError(
                "include_internal=True needs propagate=True: without gate "
                "propagation no internal net ever switches"
            )
        self.datapath = CipherDataPath(self.key)
        self.keypath = KeySchedulePath(self.key)
        self._bus_by_name = {bus.name: bus for bus in self.architecture.channels}
        self._key_transfers_cache = None
        self._refresh_caps()

    def _refresh_caps(self) -> None:
        """(Re)collect rail/internal caps, keyed on the netlist version.

        Mirrors :meth:`AesPowerTraceGenerator._refresh_caps`: a hardening
        mutation bumps the netlist's cap (or topology) version, and the next
        batch deposits the post-countermeasure charges.
        """
        self._rail_caps: Dict[str, float] = {}
        for bus in self.architecture.channels:
            for bit in range(bus.width):
                for rail in range(bus.radix):
                    net_name = bus.rail_net(bit, rail)
                    if not self.netlist.has_net(net_name):
                        raise TraceGenerationError(
                            f"netlist has no net {net_name!r}; was it "
                            "generated with the same architecture?"
                        )
                    self._rail_caps[net_name] = self.netlist.load_cap_ff(net_name)
        self._internal_caps: Dict[str, float] = {}
        if self.include_internal:
            for net in self.netlist.nets():
                if net.driver is not None and net.name not in self._rail_caps:
                    self._internal_caps[net.name] = self.netlist.total_cap_ff(net.name)
        self._cap_state = self.netlist.state_version

    def _ensure_caps_current(self) -> None:
        if self._cap_state != self.netlist.state_version:
            self._refresh_caps()

    # -------------------------------------------------------------- schedule
    def _transfers_for(self, run) -> List:
        transfers = list(run.transfers)
        if self.config.include_key_path:
            if self._key_transfers_cache is None:
                round_words, _ = self.keypath.run(start_slot=0)
                self._key_transfers_cache = (round_words,
                                             list(self.keypath.transfers))
            round_words, key_transfers = self._key_transfers_cache
            transfers.extend(key_transfers)
            transfers.extend(self.keypath.subkey_transfers(
                round_words, run.round_key_slots))
        return transfers

    def _sample_geometry(self, total_slots: int) -> Tuple[int, float, int]:
        cfg = self.config
        duration = (total_slots + 4) * cfg.slot_period_s
        sample_count = max(1, int(np.ceil(duration / cfg.sample_period_s)))
        samples_per_slot = cfg.slot_period_s / cfg.sample_period_s
        rtz_offset = int(round(cfg.rtz_fraction * cfg.slot_period_s
                               / cfg.sample_period_s))
        return sample_count, samples_per_slot, rtz_offset

    def _replay(self, plaintext: Sequence[int],
                samples_per_slot: float, rtz_offset: int, run=None):
        """One simulation: schedule the rail events of every transfer."""
        cfg = self.config
        dt = cfg.sample_period_s
        if run is None:
            run = self.datapath.encrypt(plaintext)
        sim = Simulator(self.netlist)
        sim.propagate_gates = self.propagate
        for transfer in self._transfers_for(run):
            bus = self._bus_by_name.get(transfer.bus)
            if bus is None:
                continue
            width = min(transfer.width, bus.width)
            digits = word_digits(np.array([transfer.word], dtype=np.int64),
                                 width, bus.radix)[0]
            # Event times are bin-aligned so the commit bins match the
            # analytic generator's slot indices exactly.
            eval_index = int(round(transfer.slot * samples_per_slot))
            eval_time = eval_index * dt
            rtz_time = (eval_index + rtz_offset) * dt
            for bit in range(width):
                net = bus.rail_net(bit, int(digits[bit]))
                sim.schedule_drive(net, Logic.HIGH, eval_time)
                if cfg.include_return_to_zero:
                    sim.schedule_drive(net, Logic.LOW, rtz_time)
        sim.settle()
        return run, sim.trace

    # ------------------------------------------------------------ trace sets
    def trace_batch(self, plaintexts: Iterable[Sequence[int]], *,
                    noise_start_index: int = 0) -> TraceSet:
        """Simulate every plaintext's transfer replay into one trace matrix."""
        self._ensure_caps_current()
        plaintexts = [list(p) for p in plaintexts]
        if not plaintexts:
            return TraceSet()
        cfg = self.config
        dt = cfg.sample_period_s
        scale = 1e-15 * self.technology.vdd / dt
        run0 = self.datapath.encrypt(plaintexts[0])
        sample_count, samples_per_slot, rtz_offset = self._sample_geometry(
            run0.total_slots)
        matrix = np.zeros((len(plaintexts), sample_count))
        for row, plaintext in enumerate(plaintexts):
            _, trace = self._replay(plaintext, samples_per_slot, rtz_offset,
                                    run=run0 if row == 0 else None)
            samples = matrix[row]
            for transition in trace.transitions:
                cap = self._rail_caps.get(transition.net)
                if cap is None:
                    cap = self._internal_caps.get(transition.net)
                    if cap is None:
                        continue
                index = int(round(transition.time / dt))
                if 0 <= index < sample_count:
                    samples[index] += cap * scale
        if self.noise is not None:
            matrix = apply_noise_matrix(self.noise, matrix, dt, 0.0,
                                        noise_start_index)
        return TraceSet.from_matrix(matrix, plaintexts, dt, 0.0)

    def trace_chunks(self, plaintexts: Iterable[Sequence[int]],
                     chunk_size: int, *,
                     noise_start_index: int = 0) -> Iterable[TraceSet]:
        """Yield the batch as bounded-memory blocks (streaming contract)."""
        if chunk_size < 1:
            raise TraceGenerationError(
                f"chunk size must be >= 1, got {chunk_size}")
        plaintexts = [list(p) for p in plaintexts]
        for start in range(0, len(plaintexts), chunk_size):
            yield self.trace_batch(
                plaintexts[start:start + chunk_size],
                noise_start_index=noise_start_index + start,
            )

    def trace_set(self, plaintexts: Iterable[Sequence[int]]) -> TraceSet:
        return self.trace_batch(plaintexts)
