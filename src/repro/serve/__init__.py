"""repro.serve — the campaign execution service.

A persistent, fault-tolerant worker pool replacing the one-shot fork
pools of ``AttackCampaign.run(workers=N)`` / ``PlacementSweep.run``:
register the campaigns and sweeps, start the service once, and every
subsequent run is scheduled as chunk- or scenario-level jobs over an
async queue, with large arrays moving through per-worker shared-memory
rings instead of pickle.  Serial, pooled and service-scheduled runs
produce byte-identical merged tables and store frames.

::

    from repro.serve import CampaignService, ServiceConfig

    service = CampaignService(ServiceConfig(workers=2))
    service.register("aes", campaign)
    with service:
        result = service.run("aes", trace_count=2000,
                             streaming=True, chunk_size=250)

See :mod:`repro.serve.scheduler` for the execution model and the
determinism / fault-tolerance invariants, :mod:`repro.serve.shm` for the
transport, and ``python -m repro.serve`` for a self-contained demo.
"""

from .jobs import ChunkJob, FramePayload, RunSpec, ScenarioJob, SweepJob
from .pool import FaultInjection
from .scheduler import CampaignService, ServeError, ServiceConfig
from .shm import ShmRing, SlotPayload

__all__ = [
    "CampaignService",
    "ChunkJob",
    "FaultInjection",
    "FramePayload",
    "RunSpec",
    "ScenarioJob",
    "ServeError",
    "ServiceConfig",
    "ShmRing",
    "SlotPayload",
    "SweepJob",
]
