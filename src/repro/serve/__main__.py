"""``python -m repro.serve`` — demo the campaign execution service.

Builds a deliberately *uneven* reference grid — synthetic trace sources
whose per-trace cost varies by an order of magnitude across designs, the
shape that tail-stalls scenario-level sharding — runs it through a
:class:`~repro.serve.scheduler.CampaignService`, and prints the campaign
table together with the service counters (jobs, heartbeats, shared-memory
vs pickle transport bytes).  ``--compare-serial`` re-runs the same grid
serially and checks the rows match exactly — the service's core
invariant, cheap enough here to assert on every invocation.

The reference grid doubles as the workload of
``benchmarks/bench_serve_scaling.py``, which imports
:func:`reference_campaign` from this module.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SyntheticSource:
    """A deterministic trace source with a tunable per-trace cost.

    Each trace row is a pure function of its plaintext — ``cost`` extra
    harmonic passes only burn time — so the matrix of any ``[start,
    stop)`` slice equals the corresponding rows of the full batch and
    chunk-level scheduling cannot change a single byte.  A first-round
    SubBytes bit leaks into one sample, so the reference attacks disclose.
    """

    cost: int
    samples: int = 96

    def __call__(self, plaintexts, noise):
        from ..core.dpa import TraceSet
        from ..crypto.aes_tables import SBOX

        block = np.asarray([[int(byte) for byte in plaintext]
                            for plaintext in plaintexts], dtype=np.int64)
        block = block.reshape(len(plaintexts), -1)
        ticks = np.arange(self.samples, dtype=float)
        phase = block[:, :1] * 0.37 + block[:, 1:2] * 0.11
        matrix = np.zeros((block.shape[0], self.samples))
        for harmonic in range(1, self.cost + 1):
            matrix += np.sin(phase + ticks * (0.05 * harmonic)) / harmonic
        sbox = np.asarray(SBOX, dtype=np.int64)
        leak_bit = (sbox[block[:, 0]] >> 3) & 1
        matrix[:, self.samples // 2] += leak_bit * 0.5
        if noise is not None:
            matrix = noise.apply_matrix(matrix)
        return TraceSet.from_matrix(matrix, plaintexts, dt=1e-9, t0=0.0)


def reference_campaign(*, noises: int = 8, costs=(2, 4, 8, 30),
                       samples: int = 96):
    """The uneven (``noises`` × ``len(costs)``)-scenario reference grid.

    All noise labels share the noiseless factory (labels only shape the
    grid), so every scenario is deterministic; the cost spread across
    designs is what makes scenario-level sharding tail-stall and gives
    chunk-level scheduling something to balance.
    """
    from ..core.flow import AttackCampaign
    from ..core.selection import AesSboxSelection

    campaign = AttackCampaign(key=[0] * 16, guesses=range(16),
                              mtd_start=64, mtd_step=64)
    for cost in costs:
        campaign.add_design(f"cost-{cost:02d}",
                            trace_source=SyntheticSource(cost=cost,
                                                         samples=samples))
    for index in range(noises):
        campaign.add_noise(f"level-{index}")
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    campaign.add_attack("dpa")
    return campaign


def main(argv=None) -> int:
    from ..obs import RunReport, Telemetry, use
    from .scheduler import CampaignService, ServiceConfig

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the uneven reference grid through the campaign "
                    "execution service.")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size (default 2)")
    parser.add_argument("--traces", type=int, default=256,
                        help="traces per scenario (default 256)")
    parser.add_argument("--chunk-size", type=int, default=64,
                        help="streaming chunk size (default 64)")
    parser.add_argument("--noises", type=int, default=4,
                        help="noise levels of the reference grid (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--store", metavar="PATH",
                        help="spill scenario shards to a columnar store here")
    parser.add_argument("--compare-serial", action="store_true",
                        help="re-run serially and assert the rows match")
    parser.add_argument("--report", action="store_true",
                        help="print the full telemetry run report")
    args = parser.parse_args(argv)

    campaign = reference_campaign(noises=args.noises)
    telemetry = Telemetry(name="serve-demo")
    service = CampaignService(ServiceConfig(workers=args.workers))
    service.register("reference", campaign)
    started = time.perf_counter()
    with service, use(telemetry):
        result = service.run(
            "reference", trace_count=args.traces, seed=args.seed,
            streaming=True, chunk_size=args.chunk_size, store=args.store,
            compute_disclosure=False)
    elapsed = time.perf_counter() - started

    print(f"{len(result.rows)} scenario rows in {elapsed:.2f}s "
          f"({args.workers} workers):")
    for row in result.rows:
        print(f"  {row.noise:>10s} {row.design:>10s}  "
              f"best_guess={row.best_guess:#04x} peak={row.best_peak:.4f}")
    root = telemetry.snapshot()
    print("service counters:")
    for counter in ("serve.jobs", "serve.heartbeats", "serve.shm_bytes",
                    "serve.pickle_payload_bytes", "serve.jobs_requeued",
                    "serve.workers_lost", "serve.degraded"):
        print(f"  {counter:<28s} {root.total(counter):,.0f}")
    if args.report:
        print(RunReport(root).render())

    if args.compare_serial:
        serial = campaign.run(trace_count=args.traces, seed=args.seed,
                              streaming=True, chunk_size=args.chunk_size,
                              compute_disclosure=False)
        if serial.rows != result.rows:
            print("MISMATCH: service rows differ from the serial run",
                  file=sys.stderr)
            return 1
        print(f"serial comparison: {len(serial.rows)} rows identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
