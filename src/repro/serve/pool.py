"""The worker half of the campaign service: the forked child's main loop.

A worker is forked from the scheduler *after* every campaign / sweep was
registered, so it holds its own copy-on-write image of the target objects
and only ever receives tiny messages: a :class:`~repro.serve.jobs.RunSpec`
per run (from which it rebuilds the identical scenario plan via
:meth:`~repro.core.flow.AttackCampaign._plan_run`, cross-checked by grid
fingerprint) and job descriptors from the shared queue.  Large results —
trace chunk matrices, result frame columns — go back through the worker's
:class:`~repro.serve.shm.ShmRing`; everything else is a small envelope on
the result queue.

A daemon heartbeat thread beats on the same result queue the shard
telemetry snapshots ride, carrying the job the worker is currently
executing; the scheduler uses beat age to tell a slow worker from a hung
one.  :class:`FaultInjection` provides the deterministic failure seams the
worker-death tests drive (self-SIGKILL / hang after the nth claim, muted
heartbeats) — they apply to generation-0 workers only, so a respawned
replacement never re-triggers its predecessor's fault.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, Optional, Tuple

from ..obs.telemetry import Telemetry, use
from .jobs import (
    ATTACK_STREAM,
    BEAT,
    CLAIM,
    DONE,
    ERROR,
    ChunkJob,
    FramePayload,
    RunSpec,
    ScenarioJob,
    SweepJob,
)


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic failure seams for the worker-death tests.

    ``kill_after_claims[w] == n`` makes worker ``w`` SIGKILL itself right
    after claiming its ``n``-th job (mid-scenario from the scheduler's
    point of view); ``hang_after_claims[w] == n`` makes it claim and then
    sleep forever instead; ``mute_heartbeats`` suppresses a worker's
    heartbeat thread entirely.  All seams apply to the first incarnation
    (generation 0) of a worker id only.
    """

    kill_after_claims: Dict[int, int] = field(default_factory=dict)
    hang_after_claims: Dict[int, int] = field(default_factory=dict)
    mute_heartbeats: Tuple[int, ...] = ()


#: Arrays below this ride the result queue inline: pickling a few hundred
#: bytes is cheaper than a slot round-trip, and small arrays must never
#: occupy the (few, large) ring slots a payload's big arrays need.
_SHM_MIN_BYTES = 4096


def _pack_array(ring, array) -> tuple:
    """Ship an array over the ring, inline when small or oversized."""
    if array.nbytes < _SHM_MIN_BYTES:
        return ("inline", array)
    payload = ring.place(array)
    if payload is None:
        return ("inline", array)
    return ("shm", payload)


def _pack_tables(ring, tables: dict) -> dict:
    """Decompose frames into per-column payloads, one dict per table.

    All of a scenario's tables travel in **one** result envelope, and the
    scheduler only releases slots after processing the whole envelope — so
    a payload that needs more slots than the ring owns would deadlock the
    worker mid-pack.  When the shm-worthy arrays of the payload exceed the
    ring, everything goes inline instead (counted, so the benchmark sees
    it).
    """

    def frame_arrays(frame):
        nullable = [spec.name for spec in frame.schema.columns
                    if spec.nullable]
        return ({name: frame.column(name) for name in frame.column_names()},
                {name: frame.null_mask(name) for name in nullable})

    decomposed = {name: frame_arrays(frame) for name, frame in tables.items()}
    large = sum(1 for columns, masks in decomposed.values()
                for array in [*columns.values(), *masks.values()]
                if array.nbytes >= _SHM_MIN_BYTES)
    pack = _pack_array if large <= ring.slots else \
        (lambda _ring, array: ("inline", array))
    return {name: FramePayload(
                kind=tables[name].kind,
                columns={column: pack(ring, array)
                         for column, array in columns.items()},
                null_masks={column: pack(ring, array)
                            for column, array in masks.items()})
            for name, (columns, masks) in decomposed.items()}


class _WorkerRuntime:
    """Per-process state of one worker incarnation."""

    def __init__(self, worker_id: int, generation: int, targets: dict,
                 job_queue, result_queue, ctrl_queue, ring, config,
                 fault: FaultInjection):
        self.worker_id = worker_id
        self.generation = generation
        self.targets = targets
        self.job_queue = job_queue
        self.result_queue = result_queue
        self.ctrl_queue = ctrl_queue
        self.ring = ring
        self.config = config
        self.fault = fault if generation == 0 else FaultInjection()
        self.ref = (worker_id, generation)
        self.plans: Dict[int, dict] = {}
        self.claims = 0
        self.current_job = [None]
        self._stop = threading.Event()
        self._parent = os.getppid()

    # ------------------------------------------------------------ heartbeat
    def start_heartbeat(self) -> None:
        if self.worker_id in self.fault.mute_heartbeats:
            return
        thread = threading.Thread(target=self._heartbeat_loop, daemon=True)
        thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval_s):
            self.result_queue.put((BEAT, self.ref, self.current_job[0],
                                   time.monotonic()))

    # ----------------------------------------------------------------- plans
    def _plan_for(self, run_id: int) -> dict:
        """The cached run plan, reading specs off the ctrl queue as needed.

        The scheduler broadcasts every run's spec to every worker before it
        enqueues the run's jobs, so a bounded wait here means the spec was
        lost — surfaced as an error rather than a silent hang.
        """
        while run_id not in self.plans:
            try:
                spec = self.ctrl_queue.get(timeout=30.0)
            except Empty:
                raise RuntimeError(
                    f"worker {self.worker_id} never received the spec of "
                    f"run {run_id}") from None
            self.plans[spec.run_id] = self._build_plan(spec)
        return self.plans[run_id]

    def _build_plan(self, spec: RunSpec) -> dict:
        target = self.targets[spec.name]
        if spec.kind == "campaign":
            plaintexts = [list(block) for block in spec.plaintexts]
            scenarios, options = target._plan_run(
                plaintexts, spec.seed,
                compute_disclosure=spec.compute_disclosure,
                keep_results=False, streaming=spec.streaming,
                chunk_size=spec.chunk_size)
            keys = target._scenario_keys(scenarios)
            fingerprint = target._grid_fingerprint(keys, plaintexts,
                                                   spec.seed, options)
            plan = dict(spec=spec, target=target, scenarios=scenarios,
                        options=options, plaintexts=plaintexts, keys=keys)
        else:
            points = target.points()
            design = target.netlist_factory().name
            fingerprint = target._grid_fingerprint(points, design)
            plan = dict(spec=spec, target=target, points=points)
        if fingerprint != spec.fingerprint:
            raise RuntimeError(
                f"grid fingerprint mismatch on {spec.name!r}: the "
                "registered object changed after the service started — "
                "restart the service after reconfiguring a grid")
        return plan

    # ------------------------------------------------------------------ jobs
    def execute(self, job) -> dict:
        plan = self._plan_for(job.run_id)
        if isinstance(job, ChunkJob):
            return self._execute_chunk(job, plan)
        if isinstance(job, ScenarioJob):
            return self._execute_scenario(job, plan)
        if isinstance(job, SweepJob):
            return self._execute_sweep_point(job, plan)
        raise RuntimeError(f"unknown job type {type(job).__name__}")

    def _execute_chunk(self, job: ChunkJob, plan: dict) -> dict:
        target = plan["target"]
        scenario = plan["scenarios"][job.scenario]
        if job.stream == ATTACK_STREAM:
            stream_plaintexts = plan["plaintexts"]
        else:
            stream_plaintexts = plan["options"]["tvla_schedule"][0]
        matrix, dt, t0 = target._stream_chunk(
            scenario, stream_plaintexts, job.start, job.stop,
            noise_base=job.noise_base)
        return {"matrix": _pack_array(self.ring, matrix),
                "dt": dt, "t0": t0}

    def _execute_scenario(self, job: ScenarioJob, plan: dict) -> dict:
        from ..store import CampaignFrame, open_store

        spec = plan["spec"]
        target = plan["target"]
        scenario = plan["scenarios"][job.scenario]
        local = Telemetry(name="serve-worker") if spec.record_telemetry \
            else None
        if local is not None:
            with use(local):
                rows, assessment_rows = target._run_scenario(
                    scenario, plan["plaintexts"], **plan["options"])
        else:
            rows, assessment_rows = target._run_scenario(
                scenario, plan["plaintexts"], **plan["options"])
        tables = {
            "rows": CampaignFrame.from_rows(rows, kind="campaign"),
            "assessments": CampaignFrame.from_rows(assessment_rows,
                                                   kind="assessment"),
        }
        if job.shard_key is not None:
            # Spill the shard straight from the worker — the npz frames are
            # durable before the scheduler commits them to the manifest.
            record = open_store(spec.store).write_shard_tables(job.shard_key,
                                                               tables)
            payload = {"record": record}
        else:
            payload = {"tables": _pack_tables(self.ring, tables)}
        if local is not None:
            payload["telemetry"] = local.snapshot()
        return payload

    def _execute_sweep_point(self, job: SweepJob, plan: dict) -> dict:
        spec = plan["spec"]
        target = plan["target"]
        point = plan["points"][job.point]
        local = Telemetry(name="serve-worker") if spec.record_telemetry \
            else None
        if local is not None:
            with use(local):
                row = target._run_point(point)
        else:
            row = target._run_point(point)
        payload = {"row": row}
        if local is not None:
            payload["telemetry"] = local.snapshot()
        return payload

    # ------------------------------------------------------------------ loop
    def loop(self) -> None:
        self.start_heartbeat()
        try:
            while True:
                try:
                    job = self.job_queue.get(timeout=1.0)
                except Empty:
                    if os.getppid() != self._parent:
                        break  # orphaned: the scheduler process is gone
                    continue
                if job is None:
                    break
                self.claims += 1
                self.current_job[0] = job.job_id
                self.result_queue.put((CLAIM, self.ref, job.job_id,
                                       time.monotonic()))
                if self.fault.kill_after_claims.get(self.worker_id) \
                        == self.claims:
                    os.kill(os.getpid(), signal.SIGKILL)
                if self.fault.hang_after_claims.get(self.worker_id) \
                        == self.claims:
                    while True:  # pragma: no cover - killed by scheduler
                        time.sleep(3600)
                try:
                    payload = self.execute(job)
                except Exception as error:
                    self.result_queue.put(
                        (ERROR, self.ref, job.job_id,
                         f"{type(error).__name__}: {error}"))
                else:
                    self.result_queue.put((DONE, self.ref, job.job_id,
                                           payload))
                self.current_job[0] = None
        finally:
            self._stop.set()


def worker_main(worker_id: int, generation: int, targets: dict, job_queue,
                result_queue, ctrl_queue, ring, config,
                fault: FaultInjection) -> None:
    """Entry point of a forked pool worker."""
    runtime = _WorkerRuntime(worker_id, generation, targets, job_queue,
                             result_queue, ctrl_queue, ring, config, fault)
    runtime.loop()
