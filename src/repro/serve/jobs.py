"""The serve wire vocabulary: run specs, jobs and result envelopes.

Everything that crosses a process boundary is defined here, and all of it
is deliberately tiny: workers are *forked from the scheduler after
registration*, so the campaign / sweep objects themselves (netlists,
trace sources, noise factories — none of them picklable in general) ride
the copy-on-write memory image, and the queues only ever carry

* one :class:`RunSpec` per run per worker (the arguments of the run —
  every worker rebuilds the identical scenario plan from them via
  :meth:`~repro.core.flow.AttackCampaign._plan_run`, checked by grid
  fingerprint);
* :class:`ChunkJob` / :class:`ScenarioJob` / :class:`SweepJob` work
  units, each a handful of ints;
* result envelopes whose large arrays are :class:`~repro.serve.shm.\
SlotPayload` receipts into the worker's shared-memory ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Stream identifiers of a streaming campaign scenario (the attack stream
#: consumes the run plaintexts; the TVLA stream consumes the independent
#: fixed-vs-random schedule with its noise indices offset past the attack
#: stream, exactly as the serial chunk pipeline does).
ATTACK_STREAM = "attack"
TVLA_STREAM = "tvla"


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to rebuild one run's plan locally."""

    run_id: int
    name: str
    kind: str  # "campaign" | "sweep"
    seed: int = 0
    plaintexts: Tuple[Tuple[int, ...], ...] = ()
    compute_disclosure: bool = True
    streaming: bool = False
    chunk_size: Optional[int] = None
    store: Optional[str] = None
    fingerprint: str = ""
    record_telemetry: bool = False


@dataclass(frozen=True)
class ChunkJob:
    """Generate rows ``[start, stop)`` of one scenario's trace stream."""

    job_id: int
    run_id: int
    scenario: int
    stream: str  # ATTACK_STREAM | TVLA_STREAM
    start: int
    stop: int
    noise_base: int = 0


@dataclass(frozen=True)
class ScenarioJob:
    """Run one full (noise × design) scenario (non-streaming campaigns)."""

    job_id: int
    run_id: int
    scenario: int
    shard_key: Optional[str] = None  # spill directly when the run has a store


@dataclass(frozen=True)
class SweepJob:
    """Place-and-evaluate one knob point of a registered placement sweep."""

    job_id: int
    run_id: int
    point: int


@dataclass(frozen=True)
class FramePayload:
    """A columnar frame shipped column-by-column over the shm ring.

    ``columns`` / ``null_masks`` values are either ``("shm", SlotPayload)``
    or ``("inline", ndarray)`` — the inline fallback is what the
    ``pickle_payload_bytes`` counter measures.
    """

    kind: str
    columns: Dict[str, tuple] = field(default_factory=dict)
    null_masks: Dict[str, tuple] = field(default_factory=dict)


#: Result-queue envelopes, all plain tuples:
#:   ("claim", worker, job_id, monotonic_time)
#:   ("beat",  worker, job_id_or_None, monotonic_time)
#:   ("done",  worker, job_id, payload)
#:   ("error", worker, job_id, message)
#: ``payload`` of a done envelope is job-shaped: chunk jobs carry
#: ``{"matrix": transport, "dt": float, "t0": float}``, scenario jobs
#: carry ``{"tables": {name: FramePayload}}`` or ``{"record": ShardRecord}``
#: plus an optional ``"telemetry"`` span tree, sweep jobs carry
#: ``{"row": SweepRow}``.
CLAIM, BEAT, DONE, ERROR = "claim", "beat", "done", "error"
