"""Zero-copy array transport: per-worker shared-memory slot rings.

Trace matrices (and result frame columns) are far too large to pickle
through a :class:`multiprocessing.Queue` on every job — that is the
transport the one-shot fork pools used, and it serializes the whole
array twice per hop.  Here each worker owns a small ring of
:class:`multiprocessing.shared_memory.SharedMemory` slots created by the
scheduler *before* the worker forks, so the child inherits the mappings
(no name-based attach, no resource-tracker churn) and the parent reads
results with one memcpy.

Flow control is a single-producer / single-consumer ack protocol:

* the **worker** keeps a local free list and blocks on its ack queue when
  every slot is in flight — bounded memory by construction;
* the **scheduler**, after copying a payload out in :meth:`ShmRing.take`,
  returns the slot with :meth:`ShmRing.release`.

Arrays larger than a slot (or empty ones) fall back to inline pickling —
the scheduler counts those bytes separately so the serve benchmark can
assert the trace path stays effectively pickle-free.

A ring belongs to exactly one worker *incarnation*: when the scheduler
kills and respawns a worker it builds a fresh ring (new segments, new ack
queue) and retires the old one once its in-flight payloads are drained,
so a half-dead worker can never scribble over a slot the parent still
reads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from queue import Empty
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class SlotPayload:
    """A picklable receipt for an array parked in a shared-memory slot."""

    slot: int
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int


class ShmRing:
    """One worker's ring of shared-memory slots (see the module docstring).

    Construct in the scheduler process *before* forking the owning worker;
    both sides then call the half of the API that belongs to them
    (:meth:`place` in the worker, :meth:`take`/:meth:`release` in the
    scheduler).
    """

    def __init__(self, context, *, slots: int, slot_bytes: int):
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._segments = [shared_memory.SharedMemory(create=True,
                                                     size=slot_bytes)
                          for _ in range(slots)]
        # Written by the scheduler (release), read by the owning worker.
        self._acks = context.Queue()
        self._free = deque(range(slots))
        self._closed = False

    # ------------------------------------------------------------ worker side
    def place(self, array: np.ndarray) -> Optional[SlotPayload]:
        """Park an array in a free slot; ``None`` when it does not fit.

        Blocks on the ack queue when every slot is in flight — that is the
        ring's back-pressure: a worker can never have more than ``slots``
        results outstanding.
        """
        array = np.ascontiguousarray(array)
        if array.nbytes == 0 or array.nbytes > self.slot_bytes:
            return None
        while True:
            # Drain every ack that already arrived before blocking.
            try:
                while True:
                    self._free.append(self._acks.get_nowait())
            except Empty:
                pass
            if self._free:
                break
            self._free.append(self._acks.get())
        slot = self._free.popleft()
        view = np.ndarray(array.shape, dtype=array.dtype,
                          buffer=self._segments[slot].buf)
        view[:] = array
        return SlotPayload(slot=slot, shape=tuple(array.shape),
                           dtype=array.dtype.str, nbytes=array.nbytes)

    # --------------------------------------------------------- scheduler side
    def take(self, payload: SlotPayload) -> np.ndarray:
        """Copy a parked array out of its slot (does not release it)."""
        view = np.ndarray(payload.shape, dtype=np.dtype(payload.dtype),
                          buffer=self._segments[payload.slot].buf)
        return view.copy()

    def release(self, payload: SlotPayload) -> None:
        """Hand the slot back to the owning worker."""
        if not self._closed:
            self._acks.put(payload.slot)

    def close(self) -> None:
        """Unlink every segment (scheduler side, after the worker is gone)."""
        if self._closed:
            return
        self._closed = True
        self._acks.close()
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
