"""The campaign execution service: persistent pool, async queue, retries.

:class:`CampaignService` replaces the one-shot fork pools of
``AttackCampaign.run(workers=N)`` with a pool that outlives runs: targets
are :meth:`~CampaignService.register`\\ ed, :meth:`~CampaignService.start`
forks the workers (which inherit every registered object copy-on-write),
and each subsequent run only ships job descriptors.  Streaming campaign
scenarios decompose into **chunk-level** work units riding the existing
streaming chunk pipeline, so the load balances across uneven scenarios
instead of tail-stalling on the slowest one; trace matrices and result
frame columns come back over per-worker shared-memory rings
(:mod:`repro.serve.shm`) instead of pickle.

Determinism is the hard invariant: chunk generation is a pure function of
(scenario, range) — noise draws are pinned to global trace indices — and
every accumulator update happens *here*, in the scheduler, in stream
order (out-of-order arrivals are buffered).  Serial, pooled and
service-scheduled runs therefore produce byte-identical merged store
frames, which ``benchmarks/bench_serve_scaling.py`` gates.

Fault tolerance: workers claim jobs before executing them and heartbeat
on the result channel; a worker with a claim and a stale heartbeat is
killed and its jobs requeued (bounded retries), dead workers are
respawned from a fresh fork (bounded respawns), and when the whole pool
is gone the scheduler degrades to executing the remaining jobs inline —
slower, never wrong.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, List, Optional, Set

from ..obs.telemetry import current
from .jobs import (
    ATTACK_STREAM,
    BEAT,
    CLAIM,
    DONE,
    ERROR,
    TVLA_STREAM,
    ChunkJob,
    FramePayload,
    RunSpec,
    ScenarioJob,
    SweepJob,
)
from .pool import FaultInjection, worker_main
from .shm import ShmRing

logger = logging.getLogger(__name__)


class ServeError(RuntimeError):
    """A service-level failure (scheduling, transport, retry exhaustion)."""


@dataclass
class ServiceConfig:
    """Knobs of the campaign execution service."""

    workers: int = 2
    slot_bytes: int = 8 << 20
    slots_per_worker: int = 4
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 5.0
    poll_timeout_s: float = 0.05
    max_retries: int = 2
    max_respawns: int = 2
    join_timeout_s: float = 5.0


@dataclass
class _WorkerHandle:
    """Scheduler-side record of one worker incarnation."""

    worker_id: int
    generation: int
    process: object
    ring: ShmRing
    ctrl: object

    @property
    def ref(self) -> tuple:
        return (self.worker_id, self.generation)


class CampaignService:
    """A persistent worker pool executing campaign and sweep runs.

    Usage::

        service = CampaignService(ServiceConfig(workers=2))
        service.register("aes", campaign)   # before start(): workers fork
        with service:                       # start() .. shutdown()
            result = service.run("aes", trace_count=512, streaming=True,
                                 chunk_size=64)

    Equivalently, pass ``service=service`` to ``campaign.run(...)`` /
    ``sweep.run(...)`` directly.  Results are byte-identical to serial
    runs of the same arguments.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 fault_injection: Optional[FaultInjection] = None):
        self.config = config if config is not None else ServiceConfig()
        if self.config.workers < 1:
            raise ServeError(f"need at least one worker, "
                             f"got {self.config.workers}")
        self._fault = fault_injection if fault_injection is not None \
            else FaultInjection()
        self._targets: Dict[str, object] = {}
        self._workers: Dict[int, Optional[_WorkerHandle]] = {}
        self._rings: Dict[tuple, ShmRing] = {}
        self._last_beat: Dict[int, float] = {}
        self._active_specs: Dict[int, RunSpec] = {}
        self._context = None
        self._job_queue = None
        self._result_queue = None
        self._started = False
        self._run_counter = 0
        self._job_counter = 0
        self._respawns = 0

    # -------------------------------------------------------------- lifecycle
    def register(self, name: str, target: object) -> "CampaignService":
        """Register a campaign or sweep under ``name`` (before ``start``).

        Workers fork from the scheduler at :meth:`start`, inheriting the
        registered objects copy-on-write — that is what lets unpicklable
        netlists, trace sources and noise factories cross the process
        boundary for free, and why registration after start is an error.
        """
        if self._started:
            raise ServeError("register() must happen before start(): "
                             "workers fork the registered objects")
        if name in self._targets:
            raise ServeError(f"duplicate registration {name!r}")
        if not (hasattr(target, "_plan_run") or hasattr(target, "points")):
            raise ServeError(
                f"{type(target).__name__} is not a campaign or sweep")
        self._targets[name] = target
        return self

    def start(self) -> "CampaignService":
        if self._started:
            raise ServeError("service already started")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ServeError("the campaign service needs the fork start "
                             "method; run the campaign serially instead")
        self._context = multiprocessing.get_context("fork")
        self._job_queue = self._context.Queue()
        self._result_queue = self._context.Queue()
        self._started = True
        for worker_id in range(self.config.workers):
            self._spawn_worker(worker_id, 0)
        logger.info("campaign service started: %d workers, %d targets",
                    self.config.workers, len(self._targets))
        return self

    def shutdown(self) -> None:
        if not self._started:
            return
        for handle in self._workers.values():
            if handle is not None and handle.process.is_alive():
                self._job_queue.put(None)
        for handle in self._workers.values():
            if handle is None:
                continue
            handle.process.join(self.config.join_timeout_s)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(self.config.join_timeout_s)
            handle.ctrl.close()
            handle.ctrl.cancel_join_thread()
        for ring in self._rings.values():
            ring.close()
        for queue in (self._job_queue, self._result_queue):
            queue.close()
            queue.cancel_join_thread()
        self._workers.clear()
        self._rings.clear()
        self._started = False
        logger.info("campaign service stopped")

    def __enter__(self) -> "CampaignService":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def worker_pids(self) -> List[int]:
        return [handle.process.pid for handle in self._workers.values()
                if handle is not None]

    # ------------------------------------------------------------------- runs
    def run(self, name: str, **kwargs):
        """Run a registered target through the service (its ``run(...)``
        arguments pass through)."""
        try:
            target = self._targets[name]
        except KeyError:
            raise ServeError(f"no target registered under {name!r}; "
                             f"known: {sorted(self._targets)}") from None
        return target.run(service=self, **kwargs)

    def _require_started(self) -> None:
        if not self._started:
            raise ServeError("service is not running; call start() first "
                             "(or use it as a context manager)")

    def _name_of(self, target: object) -> str:
        for name, registered in self._targets.items():
            if registered is target:
                return name
        raise ServeError(
            "this campaign/sweep is not registered with the service; "
            "register() it before start() so workers fork it")

    def _next_run_id(self) -> int:
        self._run_counter += 1
        return self._run_counter

    def _next_job_id(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def _broadcast_spec(self, spec: RunSpec) -> None:
        self._active_specs[spec.run_id] = spec
        for handle in self._workers.values():
            if handle is not None:
                handle.ctrl.put(spec)

    # ---------------------------------------------------------------- workers
    def _spawn_worker(self, worker_id: int, generation: int) -> _WorkerHandle:
        ring = ShmRing(self._context, slots=self.config.slots_per_worker,
                       slot_bytes=self.config.slot_bytes)
        ctrl = self._context.Queue()
        process = self._context.Process(
            target=worker_main,
            args=(worker_id, generation, self._targets, self._job_queue,
                  self._result_queue, ctrl, ring, self.config, self._fault),
            daemon=True)
        process.start()
        handle = _WorkerHandle(worker_id, generation, process, ring, ctrl)
        self._workers[worker_id] = handle
        self._rings[handle.ref] = ring
        self._last_beat[worker_id] = time.monotonic()
        # A mid-run replacement needs the active specs to build its plans.
        for spec in self._active_specs.values():
            ctrl.put(spec)
        return handle

    def _alive_workers(self) -> List[_WorkerHandle]:
        return [handle for handle in self._workers.values()
                if handle is not None and handle.process.is_alive()]

    def _on_worker_death(self, handle: _WorkerHandle, claimed: dict,
                         jobs: dict, attempts: dict) -> None:
        telemetry = current()
        telemetry.count("serve.workers_lost")
        logger.warning("worker %d (generation %d) died; requeuing its jobs",
                       handle.worker_id, handle.generation)
        self._workers[handle.worker_id] = None
        for job_id, (ref, _t) in list(claimed.items()):
            if ref == handle.ref:
                del claimed[job_id]
                self._requeue(job_id, jobs, attempts)
        if self._respawns < self.config.max_respawns:
            self._respawns += 1
            replacement = self._spawn_worker(handle.worker_id,
                                             handle.generation + 1)
            telemetry.count("serve.workers_respawned")
            logger.info("respawned worker %d as generation %d (pid %d)",
                        replacement.worker_id, replacement.generation,
                        replacement.process.pid)

    def _requeue(self, job_id: int, jobs: dict, attempts: dict) -> None:
        attempts[job_id] += 1
        if attempts[job_id] > self.config.max_retries:
            self._drain_job_queue()
            raise ServeError(
                f"job {job_id} exceeded {self.config.max_retries} retries")
        current().count("serve.jobs_requeued")
        self._job_queue.put(jobs[job_id])

    def _drain_job_queue(self) -> None:
        try:
            while True:
                self._job_queue.get_nowait()
        except Empty:
            pass

    def _check_worker_health(self, now: float, claimed: dict, jobs: dict,
                             attempts: dict) -> bool:
        """Kill stale workers, requeue their jobs, respawn replacements.

        Returns whether any worker was reaped — that *is* progress, so the
        caller resets its starvation clock instead of double-requeuing.
        """
        telemetry = current()
        reaped = False
        for handle in list(self._workers.values()):
            if handle is None:
                continue
            alive = handle.process.is_alive()
            if alive:
                claim_times = [t for ref, t in claimed.values()
                               if ref == handle.ref]
                if claim_times:
                    freshest = max(self._last_beat.get(handle.worker_id, 0.0),
                                   max(claim_times))
                    age = now - freshest
                    telemetry.gauge("serve.heartbeat_age_s", age, mode="max")
                    if age > self.config.heartbeat_timeout_s:
                        telemetry.count("serve.workers_timed_out")
                        logger.warning(
                            "worker %d heartbeat is %.1fs stale with a "
                            "claimed job; killing it", handle.worker_id, age)
                        handle.process.kill()
                        handle.process.join(self.config.join_timeout_s)
                        alive = False
            if not alive:
                self._on_worker_death(handle, claimed, jobs, attempts)
                reaped = True
        return reaped

    # -------------------------------------------------------------- transport
    def _take_array(self, worker_ref: tuple, transport: tuple):
        kind, value = transport
        if kind == "shm":
            ring = self._rings[worker_ref]
            array = ring.take(value)
            ring.release(value)
            current().count("serve.shm_bytes", value.nbytes)
            return array
        current().count("serve.pickle_payload_bytes", int(value.nbytes))
        return value

    def _unpack_frame(self, worker_ref: tuple, payload: FramePayload):
        from ..store import CampaignFrame
        from ..store.schema import schema_for

        columns = {name: self._take_array(worker_ref, transport)
                   for name, transport in payload.columns.items()}
        null_masks = {name: self._take_array(worker_ref, transport)
                      for name, transport in payload.null_masks.items()}
        return CampaignFrame(schema_for(payload.kind), columns, null_masks)

    def _release_payload(self, worker_ref: tuple, payload: dict) -> None:
        """Free the ring slots of a payload that will not be consumed
        (duplicate result after a requeue)."""
        ring = self._rings.get(worker_ref)
        if ring is None:
            return

        def transports():
            matrix = payload.get("matrix")
            if matrix is not None:
                yield matrix
            for frame_payload in (payload.get("tables") or {}).values():
                yield from frame_payload.columns.values()
                yield from frame_payload.null_masks.values()

        for kind, value in transports():
            if kind == "shm":
                ring.release(value)

    # ------------------------------------------------------------ drive loop
    def _drive(self, jobs: Dict[int, object], on_payload,
               inline_execute) -> None:
        """Execute ``jobs`` to completion: dispatch, collect, retry, degrade.

        ``on_payload(job, payload, worker_ref)`` applies one worker result;
        ``inline_execute(job)`` computes-and-applies a job in this process
        (the degraded path when the whole pool is gone).  Raises
        :class:`ServeError` on job errors or retry exhaustion.
        """
        if not jobs:
            return
        config = self.config
        telemetry = current()
        pending: Set[int] = set(jobs)
        done: Set[int] = set()
        attempts = {job_id: 0 for job_id in jobs}
        claimed: Dict[int, tuple] = {}
        for job_id in sorted(jobs):
            self._job_queue.put(jobs[job_id])
        telemetry.count("serve.jobs", len(jobs))
        last_progress = time.monotonic()
        while pending:
            # Reap the dead (accounting, requeues, respawns) before deciding
            # whether any pool is left to wait on.
            now = time.monotonic()
            if self._check_worker_health(now, claimed, jobs, attempts):
                last_progress = now
            if not self._alive_workers():
                telemetry.count("serve.degraded")
                logger.warning("no workers left; executing %d remaining "
                               "job(s) inline", len(pending))
                self._drain_job_queue()
                for job_id in sorted(pending):
                    inline_execute(jobs[job_id])
                    done.add(job_id)
                pending.clear()
                return
            try:
                message = self._result_queue.get(timeout=config.poll_timeout_s)
            except Empty:
                message = None
            if message is not None:
                kind, worker_ref, *rest = message
                if kind == BEAT:
                    _job_id, beat_time = rest
                    self._last_beat[worker_ref[0]] = beat_time
                    telemetry.count("serve.heartbeats")
                elif kind == CLAIM:
                    job_id, claim_time = rest
                    if job_id in pending:
                        claimed[job_id] = (worker_ref, claim_time)
                    last_progress = time.monotonic()
                elif kind == DONE:
                    job_id, payload = rest
                    if job_id in pending:
                        pending.discard(job_id)
                        done.add(job_id)
                        claimed.pop(job_id, None)
                        on_payload(jobs[job_id], payload, worker_ref)
                    else:
                        telemetry.count("serve.duplicate_results")
                        self._release_payload(worker_ref, payload)
                    last_progress = time.monotonic()
                elif kind == ERROR:
                    job_id, text = rest
                    self._drain_job_queue()
                    raise ServeError(f"job {job_id} failed in worker "
                                     f"{worker_ref[0]}: {text}")
            now = time.monotonic()
            if (message is None and not claimed
                    and now - last_progress > config.heartbeat_timeout_s):
                # The claim-lost window: a worker dequeued a job and died
                # before claiming it.  Nothing is claimed, nothing arrives —
                # requeue everything outstanding (duplicates are deduped on
                # arrival by the done-set).
                logger.warning("no progress for %.1fs with no claims; "
                               "requeuing %d outstanding job(s)",
                               now - last_progress, len(pending))
                for job_id in sorted(pending):
                    self._requeue(job_id, jobs, attempts)
                last_progress = now

    # ------------------------------------------------------ campaign execution
    def _execute_campaign(self, campaign, scenarios, plaintexts, seed,
                          options, store=None):
        """Scheduled counterpart of ``AttackCampaign.run``'s dispatch block
        (called by it, inside the run's telemetry span)."""
        from ..core.flow import CampaignResult
        from ..store import CampaignStore

        self._require_started()
        name = self._name_of(campaign)
        telemetry = current()
        keys = campaign._scenario_keys(scenarios)
        fingerprint = campaign._grid_fingerprint(keys, plaintexts, seed,
                                                 options)
        spec = RunSpec(
            run_id=self._next_run_id(), name=name, kind="campaign",
            seed=seed,
            plaintexts=tuple(tuple(int(byte) for byte in block)
                             for block in plaintexts),
            compute_disclosure=options["compute_disclosure"],
            streaming=options["streaming"],
            chunk_size=options["chunk_size"],
            store=None if store is None else str(store),
            fingerprint=fingerprint,
            record_telemetry=telemetry.enabled)
        campaign_store = None
        pending_indices = list(range(len(scenarios)))
        if store is not None:
            campaign_store = CampaignStore.open(
                store, kind="campaign", scenario_keys=keys,
                fingerprint=fingerprint)
            done_keys = set(campaign_store.completed_keys())
            pending_indices = [index for index, key in enumerate(keys)
                               if key not in done_keys]
            if done_keys:
                logger.info("service store resume: %d/%d scenarios already "
                            "complete, %d to run", len(done_keys), len(keys),
                            len(pending_indices))
        self._broadcast_spec(spec)
        try:
            if options["streaming"]:
                completed, written = self._run_campaign_chunks(
                    campaign, scenarios, plaintexts, options, spec,
                    pending_indices, campaign_store, keys)
            else:
                completed, written = self._run_campaign_scenarios(
                    campaign, scenarios, plaintexts, options, spec,
                    pending_indices, campaign_store, keys)
        finally:
            self._active_specs.pop(spec.run_id, None)
        telemetry.record_rss()
        if campaign_store is not None:
            merged = campaign_store.merge_tables(
                {"rows": "campaign", "assessments": "assessment"}, keys=keys,
                cache=written)
            tables = dict(merged)
            if telemetry.enabled:
                from ..obs.export import telemetry_frame

                tables["telemetry"] = telemetry_frame(telemetry.snapshot())
            campaign_store.finalize(tables)
            return CampaignResult(rows=merged["rows"].to_rows(),
                                  assessments=merged["assessments"].to_rows())
        result = CampaignResult()
        for index in sorted(completed):
            rows, assessment_rows = completed[index]
            result.rows.extend(rows)
            result.assessments.extend(assessment_rows)
        return result

    def _spill_scenario(self, campaign_store, keys, index, rows,
                        assessment_rows, written) -> None:
        from ..store import CampaignFrame

        tables = {
            "rows": CampaignFrame.from_rows(rows, kind="campaign"),
            "assessments": CampaignFrame.from_rows(assessment_rows,
                                                   kind="assessment"),
        }
        campaign_store.write_shard(keys[index], tables)
        written[keys[index]] = tables

    def _run_campaign_chunks(self, campaign, scenarios, plaintexts, options,
                             spec, pending_indices, campaign_store, keys):
        """Streaming scenarios as chunk-level jobs, accumulated in order."""
        from ..core.flow import _StreamingScenarioState

        telemetry = current()
        chunk_size = options["chunk_size"]
        tvla_plaintexts = (options["tvla_schedule"][0]
                           if options["tvla_schedule"] is not None else [])
        completed: Dict[int, tuple] = {}
        written: Dict[str, dict] = {}
        progress: Dict[int, dict] = {}
        jobs: Dict[int, object] = {}

        def finalize_scenario(index):
            context = progress.pop(index)
            state = context["state"]
            with telemetry.span("serve.scenario", noise=state.noise_label,
                                design=state.design.label,
                                chunks=context["applied"]):
                rows = state.attack_rows()
                for _row in rows:
                    telemetry.count("attacks")
                assessment_rows = (state.value_assessment_rows()
                                   + state.fr_assessment_rows())
            completed[index] = (rows, assessment_rows)
            if campaign_store is not None:
                self._spill_scenario(campaign_store, keys, index, rows,
                                     assessment_rows, written)

        def apply_ready(index):
            context = progress[index]
            state = context["state"]
            for stream, total in context["totals"].items():
                buffer = context["buffer"][stream]
                while context["next"][stream] in buffer:
                    start = context["next"][stream]
                    matrix, dt, t0 = buffer.pop(start)
                    telemetry.count("chunks")
                    telemetry.count("traces", matrix.shape[0])
                    stop = start + matrix.shape[0]
                    if stream == ATTACK_STREAM:
                        state.apply_attack_chunk(
                            matrix, plaintexts[start:stop], dt, t0)
                    else:
                        state.apply_tvla_chunk(matrix)
                    context["next"][stream] = stop
                    context["applied"] += 1
            if all(context["next"][stream] >= total
                   for stream, total in context["totals"].items()):
                finalize_scenario(index)

        for index in pending_indices:
            state = _StreamingScenarioState(
                campaign, scenarios[index], plaintexts,
                attacks=options["attacks"],
                assessments=options["assessments"],
                tvla_schedule=options["tvla_schedule"],
                compute_disclosure=options["compute_disclosure"],
                keep_results=False)
            totals = {}
            if state.needs_attack_stream and plaintexts:
                totals[ATTACK_STREAM] = len(plaintexts)
            if state.needs_tvla_stream and len(tvla_plaintexts):
                totals[TVLA_STREAM] = len(tvla_plaintexts)
            progress[index] = {"state": state, "totals": totals,
                               "next": {stream: 0 for stream in totals},
                               "buffer": {stream: {} for stream in totals},
                               "applied": 0}
            for stream, total in totals.items():
                noise_base = 0 if stream == ATTACK_STREAM else len(plaintexts)
                for start in range(0, total, chunk_size):
                    job_id = self._next_job_id()
                    jobs[job_id] = ChunkJob(
                        job_id=job_id, run_id=spec.run_id, scenario=index,
                        stream=stream, start=start,
                        stop=min(start + chunk_size, total),
                        noise_base=noise_base)
            if not totals:
                finalize_scenario(index)

        def on_payload(job, payload, worker_ref):
            matrix = self._take_array(worker_ref, payload["matrix"])
            context = progress[job.scenario]
            context["buffer"][job.stream][job.start] = (
                matrix, payload["dt"], payload["t0"])
            apply_ready(job.scenario)

        def inline_execute(job):
            stream_plaintexts = (plaintexts if job.stream == ATTACK_STREAM
                                 else tvla_plaintexts)
            matrix, dt, t0 = campaign._stream_chunk(
                scenarios[job.scenario], stream_plaintexts, job.start,
                job.stop, noise_base=job.noise_base)
            context = progress[job.scenario]
            context["buffer"][job.stream][job.start] = (matrix, dt, t0)
            apply_ready(job.scenario)

        self._drive(jobs, on_payload, inline_execute)
        return completed, written

    def _run_campaign_scenarios(self, campaign, scenarios, plaintexts,
                                options, spec, pending_indices,
                                campaign_store, keys):
        """Non-streaming scenarios as whole-scenario jobs; workers spill
        store shards directly and ship back the manifest receipt."""
        telemetry = current()
        completed: Dict[int, tuple] = {}
        written: Dict[str, dict] = {}
        trees: List[tuple] = []
        jobs: Dict[int, object] = {}
        for index in pending_indices:
            job_id = self._next_job_id()
            jobs[job_id] = ScenarioJob(
                job_id=job_id, run_id=spec.run_id, scenario=index,
                shard_key=keys[index] if campaign_store is not None else None)

        def on_payload(job, payload, worker_ref):
            if "record" in payload:
                # The worker already wrote the shard frames; committing the
                # receipt is the scheduler's (single manifest owner's) job.
                campaign_store.commit_shard(payload["record"])
                completed[job.scenario] = ([], [])
            else:
                tables = {name: self._unpack_frame(worker_ref, frame_payload)
                          for name, frame_payload
                          in payload["tables"].items()}
                completed[job.scenario] = (tables["rows"].to_rows(),
                                           tables["assessments"].to_rows())
            tree = payload.get("telemetry")
            if tree is not None:
                trees.append((job.scenario, worker_ref[0], tree))

        def inline_execute(job):
            rows, assessment_rows = campaign._run_scenario(
                scenarios[job.scenario], plaintexts, **options)
            if campaign_store is not None:
                self._spill_scenario(campaign_store, keys, job.scenario,
                                     rows, assessment_rows, written)
                completed[job.scenario] = ([], [])
            else:
                completed[job.scenario] = (rows, assessment_rows)

        self._drive(jobs, on_payload, inline_execute)
        # Adopted in scenario order regardless of completion order, so the
        # merged span tree is deterministic (worker id is attribution only).
        for index, worker_id, tree in sorted(trees, key=lambda t: t[0]):
            telemetry.adopt(tree, shard=index, worker=worker_id)
        return completed, written

    # --------------------------------------------------------- sweep execution
    def _execute_sweep(self, sweep, points, design, store=None):
        """Scheduled counterpart of ``PlacementSweep.run``'s dispatch."""
        from ..pnr.sweep import SweepResult
        from ..store import CampaignFrame, CampaignStore

        self._require_started()
        name = self._name_of(sweep)
        telemetry = current()
        fingerprint = sweep._grid_fingerprint(points, design)
        spec = RunSpec(run_id=self._next_run_id(), name=name, kind="sweep",
                       store=None if store is None else str(store),
                       fingerprint=fingerprint,
                       record_telemetry=telemetry.enabled)
        keys = [f"point-{index:04d}" for index in range(len(points))]
        sweep_store = None
        pending_indices = list(range(len(points)))
        if store is not None:
            sweep_store = CampaignStore.open(
                store, kind="sweep", scenario_keys=keys,
                fingerprint=fingerprint,
                metadata={"flow": sweep.flow, "design": design})
            done_keys = set(sweep_store.completed_keys())
            pending_indices = [index for index, key in enumerate(keys)
                               if key not in done_keys]
        rows: Dict[int, object] = {}
        written: Dict[str, dict] = {}
        trees: List[tuple] = []
        jobs: Dict[int, object] = {}
        self._broadcast_spec(spec)
        try:
            for index in pending_indices:
                job_id = self._next_job_id()
                jobs[job_id] = SweepJob(job_id=job_id, run_id=spec.run_id,
                                        point=index)

            def spill_point(index, row):
                tables = {"rows": CampaignFrame.from_rows([row],
                                                          kind="sweep")}
                sweep_store.write_shard(keys[index], tables)
                written[keys[index]] = tables

            def on_payload(job, payload, worker_ref):
                rows[job.point] = payload["row"]
                if sweep_store is not None:
                    spill_point(job.point, payload["row"])
                tree = payload.get("telemetry")
                if tree is not None:
                    trees.append((job.point, worker_ref[0], tree))

            def inline_execute(job):
                row = sweep._run_point(points[job.point])
                rows[job.point] = row
                if sweep_store is not None:
                    spill_point(job.point, row)

            self._drive(jobs, on_payload, inline_execute)
        finally:
            self._active_specs.pop(spec.run_id, None)
        for index, worker_id, tree in sorted(trees, key=lambda t: t[0]):
            telemetry.adopt(tree, shard=index, worker=worker_id)
        telemetry.record_rss()
        if sweep_store is not None:
            merged = sweep_store.merge_tables({"rows": "sweep"}, keys=keys,
                                              cache=written)
            tables = dict(merged)
            if telemetry.enabled:
                from ..obs.export import telemetry_frame

                tables["telemetry"] = telemetry_frame(telemetry.snapshot())
            sweep_store.finalize(tables)
            return SweepResult(flow=sweep.flow, design=design,
                               rows=merged["rows"].to_rows())
        return SweepResult(flow=sweep.flow, design=design,
                           rows=[rows[index]
                                 for index in range(len(points))])
