"""Diagnostics: severities, locations, and the deterministic DRC report.

A :class:`Diagnostic` names the rule that fired, its effective severity,
the design object it points at (:class:`DrcLocation` — a net, cell,
channel, scenario...), a human-readable message and a fix-it hint.  A
:class:`DrcReport` collects diagnostics in a deterministic order
(severity, rule id, location, message — never dict insertion order) and
renders them as text or JSONL following the :mod:`repro.obs` exporter
conventions (one JSON object per line, sorted keys, ``str`` fallback).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


class Severity(enum.Enum):
    """How bad a diagnostic is; the report orders errors first."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    @classmethod
    def parse(cls, value: Union[str, "Severity"]) -> "Severity":
        if isinstance(value, Severity):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {value!r}; expected one of "
                f"{[s.value for s in cls]}") from None


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class DrcLocation:
    """What a diagnostic points at: one named object of one kind.

    ``kind`` is a small vocabulary — ``"net"``, ``"cell"``, ``"channel"``,
    ``"instance"``, ``"scenario"``, ``"design"``, ``"store"``,
    ``"attack"``, ``"selection"`` — and ``name`` the object's name within
    it.  ``detail`` optionally narrows further (a rail index, a pin, a
    manifest field).
    """

    kind: str
    name: str
    detail: str = ""

    def render(self) -> str:
        base = f"{self.kind}:{self.name}" if self.name else self.kind
        return f"{base}[{self.detail}]" if self.detail else base

    def sort_key(self) -> tuple:
        return (self.kind, self.name, self.detail)


@dataclass(frozen=True)
class Diagnostic:
    """One rule finding: what fired, how bad, where, and how to fix it."""

    rule: str
    severity: Severity
    message: str
    location: DrcLocation
    hint: str = ""

    def render(self) -> str:
        text = (f"{self.severity.value:<7s} {self.rule} "
                f"@ {self.location.render()}: {self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_event(self) -> Dict[str, object]:
        """The JSONL line payload (flat, sorted keys at dump time)."""
        return {
            "type": "diagnostic",
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location_kind": self.location.kind,
            "location_name": self.location.name,
            "location_detail": self.location.detail,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        return (self.severity.rank, self.rule,
                self.location.sort_key(), self.message)


class DrcError(Exception):
    """Raised when a DRC gate is configured to fail on error diagnostics.

    Carries the full :class:`DrcReport`; the message lists every
    error-severity diagnostic so the failure is actionable without
    re-running the check.
    """

    def __init__(self, report: "DrcReport", *, subject: str = "design"):
        self.report = report
        errors = report.errors
        lines = [f"DRC failed on {subject}: {len(errors)} error(s)"]
        lines.extend(f"  {diag.render()}" for diag in errors)
        super().__init__("\n".join(lines))


@dataclass
class DrcReport:
    """Every diagnostic of one DRC run, in deterministic order.

    Diagnostics are sorted on read (severity first, then rule id,
    location and message), so two runs over the same design render
    byte-identical text and JSONL regardless of rule execution order.
    """

    subject: str = "design"
    _diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_checked: List[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self._diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All diagnostics, deterministically ordered."""
        return sorted(self._diagnostics, key=Diagnostic.sort_key)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def counts(self) -> Dict[str, int]:
        """``severity value → diagnostic count`` (zero entries included)."""
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self._diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def summary(self) -> str:
        counts = self.counts()
        return (f"{self.subject}: {counts['error']} error(s), "
                f"{counts['warning']} warning(s), {counts['info']} info(s) "
                f"over {len(self.rules_checked)} rule(s)")

    def render(self) -> str:
        """The full text report: summary line plus one line per finding."""
        lines = [self.summary()]
        lines.extend(diag.render() for diag in self.diagnostics)
        return "\n".join(lines)

    # ------------------------------------------------------------- export
    def events(self) -> List[Dict[str, object]]:
        """JSONL payloads: one header event, then one per diagnostic."""
        header: Dict[str, object] = {
            "type": "report",
            "subject": self.subject,
            "rules_checked": sorted(self.rules_checked),
        }
        header.update(self.counts())
        return [header] + [d.to_event() for d in self.diagnostics]

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per line, :mod:`repro.obs.export` conventions."""
        path = Path(path)
        with path.open("w") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True, default=str))
                handle.write("\n")
        return path

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "DrcReport":
        """Rebuild a report from a :meth:`write_jsonl` log (round trip)."""
        report: Optional[DrcReport] = None
        with Path(path).open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("type") == "report":
                    if report is not None:
                        raise ValueError(
                            f"{path}:{line_number}: second report header — "
                            "a DRC JSONL log holds exactly one report")
                    report = cls(subject=str(event.get("subject", "design")),
                                 rules_checked=list(event.get("rules_checked",
                                                              [])))
                    continue
                if report is None:
                    raise ValueError(f"{path}:{line_number}: diagnostic "
                                     "before the report header")
                report.add(Diagnostic(
                    rule=str(event["rule"]),
                    severity=Severity.parse(event["severity"]),
                    message=str(event["message"]),
                    location=DrcLocation(
                        kind=str(event.get("location_kind", "")),
                        name=str(event.get("location_name", "")),
                        detail=str(event.get("location_detail", ""))),
                    hint=str(event.get("hint", "")),
                ))
        if report is None:
            raise ValueError(f"{path}: empty DRC event log")
        return report
