"""Netlist-structure rules (``NET``): connectivity and cell sanity.

These rules are purely structural — they read the
:class:`~repro.circuits.netlist.Netlist` and its cell library, never the
electrical annotations.  ``NET003`` reuses the compiled engine's
predecessor construction (driver→sink data edges, sequential cells as
cycle breakers): a cycle the levelizer would have to break *inside purely
combinational logic* is a real defect, whereas QDI acknowledge feedback
always closes through a state-holding Muller gate.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .diagnostics import Severity
from .registry import Finding, Rule, finding

#: Truth tables grow as ``2**(inputs+1)``; anything wider than this is a
#: modelling bug in itself and would stall the check.
_MAX_TABLE_INPUTS = 12


def check_floating_nets(context) -> List[Finding]:
    """NET001 — a net with sinks but no driver, or an undriven output."""
    netlist = context.netlist
    hits: List[Finding] = []
    input_nets = set(netlist.input_nets())
    for net in netlist.nets():
        if net.driver is None and net.sinks and net.name not in input_nets:
            sinks = ", ".join(f"{p.instance}.{p.pin}" for p in net.sinks[:3])
            hits.append(finding(
                f"net has {len(net.sinks)} sink(s) ({sinks}"
                f"{', ...' if len(net.sinks) > 3 else ''}) but no driver "
                "and is not an input port",
                "net", net.name,
                hint="drive the net, declare it an input port, or remove "
                     "the dangling sinks"))
    for port in netlist.ports():
        if port.direction.value == "output":
            if netlist.net(port.net).driver is None:
                hits.append(finding(
                    f"output port {port.name!r} is bound to undriven net",
                    "net", port.net, detail=f"port {port.name}",
                    hint="connect a driver to the output net"))
    return hits


def check_dangling_nets(context) -> List[Finding]:
    """NET002 — a net with neither driver nor sinks (dead wire)."""
    netlist = context.netlist
    port_nets = {port.net for port in netlist.ports()}
    hits: List[Finding] = []
    for net in netlist.nets():
        if net.driver is None and not net.sinks and net.name not in port_nets:
            hits.append(finding(
                "net has no driver and no sinks",
                "net", net.name,
                hint="remove the dead net, or connect it"))
    return hits


def _combinational_preds(netlist) -> Dict[str, Set[str]]:
    """Instance → combinational driver instances (data edges only).

    Mirrors the predecessor construction of the compiled engine's
    levelizer (:func:`repro.circuits.engine._levelize` consumers), with
    sequential (state-holding) cells dropped on *both* sides: an edge into
    or out of a Muller gate cannot be part of a purely combinational loop.
    """
    preds: Dict[str, Set[str]] = {}
    for inst in netlist.instances():
        if inst.cell not in netlist.library:
            continue  # NET004's finding; no edges to build
        cell = netlist.library.get(inst.cell)
        if cell.is_sequential:
            continue
        sources: Set[str] = set()
        for pin in cell.inputs:
            net = netlist.net(inst.net_of(pin))
            if net.driver is None:
                continue
            driver_inst = netlist.instance(net.driver.instance)
            if (driver_inst.cell in netlist.library
                    and not netlist.library.get(driver_inst.cell).is_sequential):
                sources.add(driver_inst.name)
        preds[inst.name] = sources
    return preds


def check_combinational_cycles(context) -> List[Finding]:
    """NET003 — a cycle through combinational gates only.

    Kahn's peeling over the combinational subgraph (the same topological
    machinery as the engine's levelizer, which *breaks* such cycles to
    keep simulating); any instance never peeled sits on a cycle.  One
    concrete cycle is reported per connected remainder.
    """
    preds = _combinational_preds(context.netlist)
    indegree = {name: len(sources & set(preds))
                for name, sources in preds.items()}
    ready = sorted(name for name, count in indegree.items() if count == 0)
    succs: Dict[str, List[str]] = {name: [] for name in preds}
    for name, sources in preds.items():
        for source in sources:
            if source in succs:
                succs[source].append(name)
    done: Set[str] = set()
    while ready:
        name = ready.pop()
        done.add(name)
        for succ in succs[name]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    remaining = sorted(set(preds) - done)
    hits: List[Finding] = []
    visited: Set[str] = set()
    for start in remaining:
        if start in visited:
            continue
        # Walk predecessors until a node repeats: that closes one cycle.
        trail: List[str] = []
        seen_at: Dict[str, int] = {}
        node = start
        while node not in seen_at:
            seen_at[node] = len(trail)
            trail.append(node)
            node = min(source for source in preds[node]
                       if source not in done)
        cycle = trail[seen_at[node]:] + [node]
        visited.update(trail)
        hits.append(finding(
            "combinational cycle: " + " -> ".join(cycle),
            "instance", cycle[0],
            hint="break the loop with a state-holding (Muller) cell or "
                 "remove the feedback"))
    return hits


def check_truth_tables(context) -> List[Finding]:
    """NET004 — a used cell whose behavioural table cannot be built."""
    netlist = context.netlist
    cells_used: Dict[str, str] = {}
    for inst in netlist.instances():
        cells_used.setdefault(inst.cell, inst.name)
    hits: List[Finding] = []
    for cell_name in sorted(cells_used):
        try:
            cell = netlist.library.get(cell_name)
        except KeyError:
            hits.append(finding(
                f"instance {cells_used[cell_name]!r} uses a cell missing "
                "from the library",
                "cell", cell_name,
                hint="register the cell in the netlist's CellLibrary"))
            continue
        if len(cell.inputs) > _MAX_TABLE_INPUTS:
            hits.append(finding(
                f"cell has {len(cell.inputs)} inputs; the compiled engine "
                f"tabulates at most {_MAX_TABLE_INPUTS}",
                "cell", cell_name,
                hint="decompose the cell into narrower primitives"))
            continue
        try:
            table = cell.truth_table()
        except Exception as error:  # noqa: BLE001 - any evaluate() bug lands here
            hits.append(finding(
                f"truth table evaluation failed: {error}",
                "cell", cell_name,
                hint="fix the cell's evaluate function"))
            continue
        bad = set(int(v) for v in table) - {0, 1}
        if bad:
            hits.append(finding(
                f"truth table contains non-binary values {sorted(bad)}",
                "cell", cell_name,
                hint="evaluate must return Logic.LOW or Logic.HIGH"))
    return hits


def check_channel_rails(context) -> List[Finding]:
    """NET005 — malformed 1-of-N channels: missing, duplicate, dead rails."""
    netlist = context.netlist
    hits: List[Finding] = []
    for channel_name, rails in sorted(netlist.channels().items()):
        if len(rails) < 2:
            hits.append(finding(
                f"channel has only {len(rails)} rail(s); 1-of-N encoding "
                "needs at least two",
                "channel", channel_name,
                hint="annotate the missing rails with channel= / rail="))
            continue
        indices = [net.rail for net in rails]
        if any(index is None for index in indices):
            unnumbered = [net.name for net in rails if net.rail is None]
            hits.append(finding(
                f"rail net(s) {unnumbered} carry no rail index",
                "channel", channel_name,
                hint="set rail= when declaring the channel nets"))
            continue
        counted: Dict[int, int] = {}
        for index in indices:
            counted[index] = counted.get(index, 0) + 1
        duplicates = sorted(i for i, n in counted.items() if n > 1)
        if duplicates:
            hits.append(finding(
                f"duplicate rail index(es) {duplicates}",
                "channel", channel_name,
                hint="every rail of a channel needs a distinct index"))
        expected = set(range(len(rails)))
        if set(counted) != expected and not duplicates:
            hits.append(finding(
                f"rail indices {sorted(counted)} are not contiguous "
                f"0..{len(rails) - 1} — a rail is dangling from the channel",
                "channel", channel_name,
                hint="renumber the rails or add the missing one"))
        for net in rails:
            if net.driver is None and not net.sinks:
                hits.append(finding(
                    f"rail {net.name!r} (index {net.rail}) is connected to "
                    "nothing",
                    "channel", channel_name, detail=net.name,
                    hint="a dead rail breaks the 1-of-N discipline; wire "
                         "it or drop the channel annotation"))
    return hits


def check_multiple_drivers(context) -> List[Finding]:
    """NET006 — an input-port net that also has an internal driver.

    :meth:`Netlist.add_instance` rejects two *gate* drivers outright, but
    an input port bound to a net a gate later drives slips through — two
    sources fight on the same wire.
    """
    netlist = context.netlist
    hits: List[Finding] = []
    input_ports = {port.net: port.name for port in netlist.ports()
                   if port.direction.value == "input"}
    for net_name, port_name in sorted(input_ports.items()):
        net = netlist.net(net_name)
        if net.driver is not None:
            hits.append(finding(
                f"input port {port_name!r} net is also driven by "
                f"{net.driver.instance!r}.{net.driver.pin}",
                "net", net_name, detail=f"port {port_name}",
                hint="an externally driven net must not have an internal "
                     "driver; insert a mux or drop the port"))
    return hits


RULES = (
    Rule("NET001", "floating net (sinks without driver)", "netlist",
         Severity.ERROR, check_floating_nets,
         "A net loaded by sinks or an output port but driven by nothing."),
    Rule("NET002", "dangling net", "netlist",
         Severity.WARNING, check_dangling_nets,
         "A net with neither driver nor sinks (dead wire)."),
    Rule("NET003", "combinational cycle", "netlist",
         Severity.ERROR, check_combinational_cycles,
         "A feedback loop that never passes through a state-holding cell."),
    Rule("NET004", "unknown or invalid truth table", "netlist",
         Severity.ERROR, check_truth_tables,
         "A used cell whose behavioural table cannot be built or is "
         "non-binary."),
    Rule("NET005", "dangling channel rail", "netlist",
         Severity.ERROR, check_channel_rails,
         "A 1-of-N channel with missing, duplicate or dead rails."),
    Rule("NET006", "externally and internally driven net", "netlist",
         Severity.ERROR, check_multiple_drivers,
         "An input-port net that a gate inside the design also drives."),
)
