"""The DRC driver: context, rule dispatch, pipeline pass, campaign gate.

:class:`DrcContext` carries everything a rule may look at — netlist,
placement, campaign, run options — plus lazily built shared state (the
circuit graph and logical levels, built once and reused by every security
rule).  :func:`run_drc` applies the registry's rules layer by layer,
skipping layers whose subject is absent, so one entry point serves a bare
netlist, a placed design, and a configured campaign alike.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuits.netlist import Netlist
from ..obs.telemetry import current
from .diagnostics import Diagnostic, DrcError, DrcLocation, DrcReport, Severity
from .registry import LAYERS, RuleRegistry, default_registry

logger = logging.getLogger(__name__)


@dataclass
class DrcContext:
    """Read-only view of the design state the rules check.

    ``cap_bound`` is the configurable rail-dissymmetry bound of ``SEC002``
    (the paper's criterion bound); ``tolerance`` the geometric tolerance of
    the placement rules.  ``run_options`` carries the campaign run knobs
    (``workers``, ``streaming``, ``chunk_size``, ``store``, ``seed``,
    ``plaintexts``) the campaign rules pre-flight.
    """

    netlist: Optional[Netlist] = None
    placement: Optional[object] = None
    campaign: Optional[object] = None
    run_options: Dict[str, object] = field(default_factory=dict)
    cap_bound: float = 0.15
    tolerance: float = 1e-6
    require_same_cells: bool = True

    def __post_init__(self) -> None:
        self._graph = None
        self._graph_version: Optional[int] = None
        self._levels = None

    # ------------------------------------------------------- shared state
    def graph(self):
        """The circuit graph of the netlist, built once per topology."""
        if self.netlist is None:
            raise ValueError("this rule needs a netlist in the DRC context")
        version = self.netlist.topology_version
        if self._graph is None or self._graph_version != version:
            from ..graph.build import build_circuit_graph

            self._graph = build_circuit_graph(self.netlist)
            self._graph_version = version
            self._levels = None
        return self._graph

    def levels(self):
        """Logical levels of the graph (cached with it)."""
        if self._levels is None:
            from ..graph.levels import compute_levels

            self._levels = compute_levels(self.graph())
        return self._levels

    def option(self, name: str, default=None):
        return self.run_options.get(name, default)

    # ----------------------------------------------------- layer presence
    def has_layer_subject(self, layer: str) -> bool:
        """True when the context carries what a layer's rules check."""
        if layer in ("netlist", "security"):
            return self.netlist is not None
        if layer == "placement":
            return self.placement is not None
        if layer == "campaign":
            return self.campaign is not None
        return False


def run_drc(netlist: Optional[Netlist] = None, *,
            placement: Optional[object] = None,
            campaign: Optional[object] = None,
            registry: Optional[RuleRegistry] = None,
            layers: Optional[Sequence[str]] = None,
            run_options: Optional[Dict[str, object]] = None,
            cap_bound: float = 0.15,
            tolerance: float = 1e-6,
            require_same_cells: bool = True,
            subject: Optional[str] = None) -> DrcReport:
    """Run every applicable rule of the registry and return the report.

    Layers whose subject is absent are skipped (a bare netlist is not a
    placement failure); pass ``layers=`` to restrict further.  The default
    registry is used unless a configured one is supplied.
    """
    registry = registry if registry is not None else default_registry()
    context = DrcContext(netlist=netlist, placement=placement,
                         campaign=campaign,
                         run_options=dict(run_options or {}),
                         cap_bound=cap_bound, tolerance=tolerance,
                         require_same_cells=require_same_cells)
    if subject is None:
        subject = (netlist.name if netlist is not None
                   else "campaign" if campaign is not None else "design")
    report = DrcReport(subject=subject)
    selected_layers = tuple(layers) if layers is not None else LAYERS
    for layer in selected_layers:
        if layer not in LAYERS:
            raise ValueError(f"unknown DRC layer {layer!r}; "
                             f"expected a subset of {LAYERS}")
    telemetry = current()
    with telemetry.span("drc.run", subject=subject):
        for layer in selected_layers:
            if not context.has_layer_subject(layer):
                continue
            for rule in registry.rules(layer=layer):
                try:
                    diagnostics = registry.run_rule(rule.id, context)
                except Exception as error:  # noqa: BLE001 - a DRC must
                    # survive designs broken enough to crash one analysis;
                    # the crash surfaces as an error diagnostic and every
                    # other rule still runs.
                    diagnostics = [Diagnostic(
                        rule=rule.id, severity=Severity.ERROR,
                        message=f"rule implementation crashed: "
                                f"{type(error).__name__}: {error}",
                        location=DrcLocation("rule", rule.id),
                        hint="checker bug or design too malformed to "
                             "analyse; the remaining rules still ran")]
                report.rules_checked.append(rule.id)
                report.extend(diagnostics)
                telemetry.count("drc_rules")
                if diagnostics:
                    telemetry.count("drc_findings", len(diagnostics))
    return report


def run_campaign_preflight(campaign, *, workers: int = 1,
                           streaming: bool = False,
                           chunk_size: Optional[int] = None,
                           store: Optional[object] = None,
                           seed: int = 0,
                           plaintexts: Optional[Sequence[Sequence[int]]] = None,
                           options: Optional[Dict[str, object]] = None,
                           registry: Optional[RuleRegistry] = None
                           ) -> DrcReport:
    """The campaign-layer DRC, before any trace is generated.

    This is the static re-expression of the classes of failure a campaign
    used to hit at runtime: a mis-labelled grid, an unpicklable source
    under sharding, a second-order kernel under streaming, a store whose
    manifest cannot match the grid.  ``options`` is the resolved run-option
    dict of :meth:`repro.core.flow.AttackCampaign.run` when called from the
    gate; standalone callers can omit it.
    """
    run_options = {
        "workers": workers,
        "streaming": streaming,
        "chunk_size": chunk_size,
        "store": store,
        "seed": seed,
        "plaintexts": plaintexts,
        "options": options,
    }
    return run_drc(campaign=campaign, registry=registry,
                   layers=("campaign",), run_options=run_options,
                   subject="campaign")


class DrcPass:
    """A DRC stage usable inside :class:`repro.harden.PassPipeline`.

    The pass checks the pipeline's current netlist and placement, stores
    the report in ``context.scratch["drc_reports"]`` (one entry per
    execution, so a pre-repair and a post-repair instance coexist) and —
    with ``fail_on="error"`` — aborts the pipeline by raising
    :class:`~repro.drc.diagnostics.DrcError` when error-severity
    diagnostics are present.  It never mutates the design, so its
    :class:`~repro.harden.passes.PassOutcome` always reports
    ``changed=False`` and cannot perturb repair-loop convergence.
    """

    def __init__(self, *, name: str = "drc",
                 registry: Optional[RuleRegistry] = None,
                 fail_on: Optional[str] = "error",
                 cap_bound: Optional[float] = None,
                 layers: Optional[Sequence[str]] = None):
        if fail_on not in (None, "error", "warning"):
            raise ValueError(f"fail_on must be None, 'error' or 'warning', "
                             f"got {fail_on!r}")
        self.name = name
        self.registry = registry
        self.fail_on = fail_on
        self.cap_bound = cap_bound
        self.layers = tuple(layers) if layers is not None else None

    def run(self, context) -> "object":
        from ..harden.passes import PassOutcome

        bound = self.cap_bound
        if bound is None:
            # Follow the pipeline's repair bound when one is recorded on the
            # context; fall back to the paper's default.
            bound = 0.15
        report = run_drc(context.netlist, placement=context.placement,
                         registry=self.registry, layers=self.layers,
                         cap_bound=bound,
                         subject=context.design_name or context.netlist.name)
        context.scratch.setdefault("drc_reports", []).append(report)
        counts = report.counts()
        if self.fail_on == "error" and report.has_errors:
            raise DrcError(report, subject=report.subject)
        if self.fail_on == "warning" and (report.has_errors
                                          or counts["warning"]):
            raise DrcError(report, subject=report.subject)
        return PassOutcome(self.name, changed=False,
                           details=report.summary())

    def __repr__(self) -> str:
        return f"DrcPass(name={self.name!r}, fail_on={self.fail_on!r})"
