"""Static security DRC: rule-based design and campaign checking.

The paper's countermeasure argument is *structural* — 1-of-N rail
discipline, symmetric logic cones, balanced rail capacitance — yet most of
those properties were only checked dynamically (trace replay) or discovered
deep inside a campaign run.  This package closes the gap with a static
rule catalog over four layers:

* **netlist structure** (``NET``) — floating / multiply-driven nets,
  combinational cycles, dangling channel rails, broken truth tables;
* **security structure** (``SEC``) — per-channel cone symmetry, rail
  capacitance dissymmetry above a bound, misplaced dummy loads;
* **placement** (``PLC``) — fence violations (shared with
  :meth:`repro.pnr.placement.Placement.check_legality`), overlaps,
  fixed-cell violations;
* **campaign / store** (``CAM``) — grid label integrity, unpicklable
  sources under sharding, streaming-incompatible kernels, store manifest
  mismatches — all re-expressed as pre-flight diagnostics instead of
  runtime errors 40 minutes into a run.

Entry points: :func:`run_drc` (library), ``python -m repro.drc`` (CLI over
the reference AES flows), :class:`DrcPass` (a
:class:`repro.harden.PassPipeline` stage) and the
``AttackCampaign.run(drc=...)`` pre-flight gate.
"""

from .diagnostics import (
    Diagnostic,
    DrcError,
    DrcLocation,
    DrcReport,
    Severity,
)
from .registry import Rule, RuleRegistry, default_registry
from .checker import DrcContext, DrcPass, run_campaign_preflight, run_drc

__all__ = [
    "Diagnostic",
    "DrcContext",
    "DrcError",
    "DrcLocation",
    "DrcPass",
    "DrcReport",
    "Rule",
    "RuleRegistry",
    "Severity",
    "default_registry",
    "run_campaign_preflight",
    "run_drc",
]
