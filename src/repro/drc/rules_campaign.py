"""Campaign / store configuration rules (``CAM``): pre-flight, not post-mortem.

Each of these rules re-expresses a class of failure the campaign runner
used to hit *at runtime* — possibly long after trace generation started —
as a static diagnostic over the configured grid and run options: duplicate
grid labels and out-of-subset true guesses (``CAM001``), unpicklable
callables under sharding (``CAM002``), second-order kernels under
streaming (``CAM003``), and a store whose manifest cannot match this run's
grid (``CAM004``).  They only read the campaign's configuration; no trace
is ever generated.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import List

from .diagnostics import Severity
from .registry import Finding, Rule, finding


def _noises(campaign) -> List[tuple]:
    return list(campaign._noises) or [("noiseless", None)]


def check_grid_labels(context) -> List[Finding]:
    """CAM001 — grid label integrity and guess-subset consistency.

    Duplicate design or noise labels collapse distinct scenarios into one
    indistinguishable table row (and abort a ``store=`` run in
    ``_scenario_keys``); a selection whose true guess is outside the
    campaign's restricted guess subset aborts mid-attack with a
    ``DPAError`` after the traces were already generated.
    """
    campaign = context.campaign
    hits: List[Finding] = []
    design_labels = [design.label for design in campaign._designs]
    for label in sorted({label for label in design_labels
                         if design_labels.count(label) > 1}):
        hits.append(finding(
            f"design label {label!r} registered "
            f"{design_labels.count(label)} times",
            "design", label,
            hint="every add_design label must be unique; suffix the "
                 "source or variant into the label"))
    noise_labels = [label for label, _factory in _noises(campaign)]
    for label in sorted({label for label in noise_labels
                         if noise_labels.count(label) > 1}):
        hits.append(finding(
            f"noise label {label!r} registered "
            f"{noise_labels.count(label)} times",
            "scenario", label,
            hint="every add_noise label must be unique"))
    if campaign.guesses is not None:
        subset = set(campaign.guesses)
        for entry in campaign._selections:
            guess = entry.correct_guess
            if guess is not None and guess not in subset:
                hits.append(finding(
                    f"true guess {guess:#04x} of selection "
                    f"{entry.selection.name!r} is outside the campaign's "
                    f"guess subset ({len(subset)} guesses)",
                    "selection", entry.selection.name,
                    hint="add the true guess to guesses= or drop the "
                         "subset; disclosure cannot be computed without it"))
    return hits


def _pickle_probe(value) -> str:
    """Empty string when ``value`` pickles, else the failure message."""
    try:
        pickle.dumps(value)
    except Exception as error:  # noqa: BLE001 - pickle raises many types
        return f"{type(error).__name__}: {error}"
    return ""


def check_shard_picklability(context) -> List[Finding]:
    """CAM002 — ``workers > 1`` with unpicklable grid callables.

    Sharding forks the campaign into worker processes; a custom trace
    source or noise factory that cannot pickle (a lambda, a closure over
    an open handle) ties the run to the copy-on-write ``fork`` start
    method.  Where ``fork`` is unavailable the campaign silently falls
    back to serial — the workers knob quietly does nothing.  Probed with
    :func:`pickle.dumps` on the callables only, never on netlists.
    """
    campaign = context.campaign
    if int(context.option("workers", 1) or 1) <= 1:
        return []
    hits: List[Finding] = []
    for design in campaign._designs:
        if design.trace_source is None:
            continue
        failure = _pickle_probe(design.trace_source)
        if failure:
            hits.append(finding(
                f"trace source of design {design.label!r} does not pickle "
                f"({failure}) with workers > 1",
                "design", design.label, detail="trace_source",
                hint="move the callable to module level (fork-only runs "
                     "work but cannot shard elsewhere), or run workers=1"))
    for label, factory in _noises(campaign):
        if factory is None:
            continue
        failure = _pickle_probe(factory)
        if failure:
            hits.append(finding(
                f"noise factory {label!r} does not pickle ({failure}) "
                "with workers > 1",
                "scenario", label, detail="noise factory",
                hint="define the factory at module level instead of a "
                     "lambda, or run workers=1"))
    return hits


def check_streaming_kernels(context) -> List[Finding]:
    """CAM003 — ``streaming=True`` with a second-order attack.

    Second-order (centered-product) kernels need the full trace matrix;
    :func:`repro.assess.streaming.streaming_state` raises ``DPAError``
    when the first scenario reaches the attack — after its traces were
    generated.  The attack family is known statically from the builder.
    """
    from ..core.flow import _SecondOrderBuilder

    if not context.option("streaming", False):
        return []
    campaign = context.campaign
    hits: List[Finding] = []
    for attack in campaign._attacks:
        if isinstance(attack.build, _SecondOrderBuilder):
            hits.append(finding(
                f"attack {attack.label!r} is second-order "
                "(centered-product) and cannot run in streaming mode",
                "attack", attack.label,
                hint="drop streaming=True for this grid, or split the "
                     "second-order attack into its own in-memory campaign"))
    return hits


def check_store_manifest(context) -> List[Finding]:
    """CAM004 — a resume store whose manifest cannot match this run.

    Re-opening a store with a different kind, scenario-key list or grid
    fingerprint raises ``StoreError`` inside ``CampaignStore.open``; this
    rule performs the same comparison against the on-disk manifest before
    anything runs.  ``keep_results=True`` never composes with a store.
    """
    from ..core.flow import standard_attack
    from ..store.manifest import StoreManifest
    from ..store.schema import StoreError

    campaign = context.campaign
    store = context.option("store")
    if store is None:
        return []
    hits: List[Finding] = []
    options = context.option("options") or {}
    if options.get("keep_results"):
        hits.append(finding(
            "keep_results=True does not compose with store=: attack "
            "result objects are not columnar",
            "store", str(store),
            hint="drop keep_results, or run the scenario of interest "
                 "in memory"))
    try:
        manifest = StoreManifest.load_if_present(Path(store))
    except StoreError as error:
        hits.append(finding(
            f"store manifest is unreadable: {error}",
            "store", str(store),
            hint="the directory holds a corrupt or foreign manifest; "
                 "use a fresh directory"))
        return hits
    if manifest is None:
        return hits
    scenarios = [(noise_label, factory, design)
                 for noise_label, factory in _noises(campaign)
                 for design in campaign._designs]
    keys = [f"{noise_label}/{design.label}"
            for noise_label, _factory, design in scenarios]
    if len(set(keys)) != len(keys):
        return hits  # duplicate keys are CAM001's finding; no stable grid
    fingerprint = None
    plaintexts = context.option("plaintexts")
    if plaintexts is not None:
        attacks = list(campaign._attacks) or [standard_attack("dpa")]
        fp_options = {
            "attacks": attacks,
            "assessments": list(campaign._assessments),
            "compute_disclosure": options.get("compute_disclosure", True),
            "streaming": bool(context.option("streaming", False)),
            "chunk_size": context.option("chunk_size"),
        }
        fingerprint = campaign._grid_fingerprint(
            keys, plaintexts, int(context.option("seed", 0) or 0),
            fp_options)
    try:
        manifest.check_compatible(
            kind="campaign",
            fingerprint=fingerprint if fingerprint is not None
            else manifest.fingerprint,
            scenario_keys=keys)
    except StoreError as error:
        hits.append(finding(
            str(error), "store", str(store), detail="manifest",
            hint="resume with the original grid, or point store= at a "
                 "fresh directory"))
    return hits


RULES = (
    Rule("CAM001", "grid label or guess-subset mismatch", "campaign",
         Severity.ERROR, check_grid_labels,
         "Duplicate design/noise labels, or a true guess outside the "
         "campaign's guess subset."),
    Rule("CAM002", "unpicklable callable under sharding", "campaign",
         Severity.ERROR, check_shard_picklability,
         "workers > 1 with a trace source or noise factory that does not "
         "pickle."),
    Rule("CAM003", "second-order attack under streaming", "campaign",
         Severity.ERROR, check_streaming_kernels,
         "streaming=True with a centered-product kernel that needs the "
         "full trace matrix."),
    Rule("CAM004", "store manifest mismatch", "campaign",
         Severity.ERROR, check_store_manifest,
         "A resume store whose manifest kind, keys or fingerprint cannot "
         "match this run."),
)
