"""Placement rules (``PLC``): fences, overlaps, fixed cells.

``PLC001`` shares its implementation with
:meth:`repro.pnr.placement.Placement.check_legality` through
:func:`repro.pnr.placement.legality_violations`, so the placer and the DRC
can never disagree on what "legal" means.  ``PLC002`` reports true-width
cell overlaps; the row legalizer intentionally compresses crowded rows
(scaling cursor advance, not cell widths), so residual overlaps are a
density warning, not an error.
"""

from __future__ import annotations

from typing import List, Tuple

from .diagnostics import Severity
from .registry import Finding, Rule, finding

#: Overlap reporting cap: beyond this many pairs, one summary finding.
_MAX_OVERLAP_FINDINGS = 10


def check_fences(context) -> List[Finding]:
    """PLC001 — a cell outside its fence (or the die)."""
    from ..pnr.placement import legality_violations

    placement = context.placement
    violations = legality_violations(placement.cells, placement.floorplan,
                                     tolerance=context.tolerance)
    return [
        finding(violation.describe(), "cell", violation.cell,
                detail=f"fence {violation.fence}",
                hint="re-run legalization, or widen the fence in the "
                     "floorplan")
        for violation in violations
    ]


def _overlap_pairs(placement, tolerance: float) -> List[Tuple[str, str, float]]:
    """True-width overlapping cell pairs via a sweep over sorted extents."""
    cells = sorted(placement.cells.values(), key=lambda c: c.name)
    spans = []
    for cell in cells:
        half_w = cell.width_um / 2.0
        half_h = cell.height_um / 2.0
        spans.append((cell.x_um - half_w, cell.x_um + half_w,
                      cell.y_um - half_h, cell.y_um + half_h, cell.name))
    spans.sort(key=lambda s: (s[0], s[4]))
    pairs: List[Tuple[str, str, float]] = []
    for index, (x0, x1, y0, y1, name) in enumerate(spans):
        for other in spans[index + 1:]:
            if other[0] >= x1 - tolerance:
                break
            dx = min(x1, other[1]) - max(x0, other[0])
            dy = min(y1, other[3]) - max(y0, other[2])
            if dx > tolerance and dy > tolerance:
                first, second = sorted((name, other[4]))
                pairs.append((first, second, dx * dy))
    pairs.sort()
    return pairs


def check_overlaps(context) -> List[Finding]:
    """PLC002 — two cells whose true-width footprints intersect."""
    pairs = _overlap_pairs(context.placement, context.tolerance)
    hits: List[Finding] = []
    for first, second, area in pairs[:_MAX_OVERLAP_FINDINGS]:
        hits.append(finding(
            f"overlaps cell {second!r} by {area:.2f} um^2",
            "cell", first, detail=f"with {second}",
            hint="rows are over-filled; enlarge the region or reduce "
                 "utilization"))
    if len(pairs) > _MAX_OVERLAP_FINDINGS:
        hits.append(finding(
            f"{len(pairs) - _MAX_OVERLAP_FINDINGS} further overlapping "
            f"pair(s) suppressed ({len(pairs)} total)",
            "design", "placement",
            hint="fix the densest region first; the pair list is "
                 "deterministic, re-run after each fix"))
    return hits


def check_fixed_cells(context) -> List[Finding]:
    """PLC003 — fixed-cell violations.

    A fixed cell outside its fence can never be repaired by the annealer
    (it refuses to move fixed cells), and two fixed cells overlapping can
    never be legalized at all — both are hard errors, unlike the movable
    overlaps of ``PLC002``.
    """
    from ..pnr.placement import legality_violations

    placement = context.placement
    fixed = {name: cell for name, cell in placement.cells.items()
             if cell.fixed}
    if not fixed:
        return []
    hits: List[Finding] = []
    for violation in legality_violations(fixed, placement.floorplan,
                                         tolerance=context.tolerance):
        hits.append(finding(
            f"fixed {violation.describe()}",
            "cell", violation.cell, detail=f"fence {violation.fence}",
            hint="a fixed cell can never be legalized by the annealer; "
                 "move it inside the fence or unfix it"))

    class _FixedView:
        cells = fixed

    for first, second, area in _overlap_pairs(_FixedView, context.tolerance):
        hits.append(finding(
            f"fixed cells {first!r} and {second!r} overlap by "
            f"{area:.2f} um^2",
            "cell", first, detail=f"with {second}",
            hint="two fixed cells can never be pulled apart; revisit "
                 "the fixed positions"))
    return hits


RULES = (
    Rule("PLC001", "cell outside fence", "placement",
         Severity.ERROR, check_fences,
         "A placed cell lies outside its block fence or the die."),
    Rule("PLC002", "overlapping placements", "placement",
         Severity.WARNING, check_overlaps,
         "Two cells' true-width footprints intersect (over-filled rows)."),
    Rule("PLC003", "fixed-cell violation", "placement",
         Severity.ERROR, check_fixed_cells,
         "A fixed cell outside its fence, or two fixed cells overlapping."),
)
