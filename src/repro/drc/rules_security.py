"""Security-structure rules (``SEC``): the paper's countermeasures, statically.

These rules check the *structural* side-channel countermeasures without
simulating a single trace: cone symmetry per 1-of-N channel (the balanced
datapath of Section III), rail-capacitance dissymmetry straight from the
extracted netlist (the d_A criterion), and dummy loads that cannot
possibly balance anything because they sit on disconnected nets.
"""

from __future__ import annotations

from typing import List

from ..circuits.channels import ChannelNets, ChannelSpec
from .diagnostics import Severity
from .registry import Finding, Rule, finding


def check_cone_symmetry(context) -> List[Finding]:
    """SEC001 — asymmetric logic cones behind the rails of a channel.

    Runs :func:`repro.graph.symmetry.compare_channel_symmetry` over every
    fully driven channel (undriven channels are primary inputs — their
    cones are empty and trivially symmetric; malformed channels are
    ``NET005``'s business).  An attacker who can tell the rails apart by
    gate count or cell mix defeats the constant-activity argument before
    capacitances even matter.
    """
    from ..graph.symmetry import compare_channel_symmetry

    netlist = context.netlist
    hits: List[Finding] = []
    graph = levels = None
    for channel_name, rails in sorted(netlist.channels().items()):
        if len(rails) < 2:
            continue
        if any(net.driver is None for net in rails):
            continue
        if any(net.rail is None for net in rails):
            continue
        if graph is None:
            # Built on first use; a netlist too malformed to levelize
            # (combinational cycles, missing cells) is NET003 / NET004's
            # finding — cone symmetry is meaningless on it anyway.
            try:
                graph = context.graph()
                levels = context.levels()
            except Exception:  # noqa: BLE001
                return hits
        nets = ChannelNets(
            spec=ChannelSpec(name=channel_name, radix=len(rails)),
            rails=tuple(net.name for net in rails),
            ack=f"{channel_name}_ack")
        report = compare_channel_symmetry(
            netlist, graph, nets, levels=levels,
            require_same_cells=context.require_same_cells)
        for mismatch in report.mismatches:
            hits.append(finding(
                f"rail cones are not symmetric: {mismatch}",
                "channel", channel_name,
                hint="restructure the cone so every rail sees the same "
                     "gate count and cell mix per level"))
    return hits


def check_rail_dissymmetry(context) -> List[Finding]:
    """SEC002 — extracted rail-capacitance dissymmetry above the bound.

    Evaluates the paper's criterion d_A = (max - min) / min over the rail
    load capacitances of every channel, straight from the extraction
    annotations — no simulation.  The bound is ``context.cap_bound``
    (default 0.15, the paper's 15 %).
    """
    from ..core.criterion import evaluate_netlist_channels

    report = evaluate_netlist_channels(context.netlist, use_load_cap=True)
    hits: List[Finding] = []
    for entry in report.channels_above(context.cap_bound):
        caps = ", ".join(f"{cap:.2f}" for cap in entry.rail_caps_ff)
        hits.append(finding(
            f"rail capacitance dissymmetry d_A = {entry.dissymmetry:.3f} "
            f"exceeds bound {context.cap_bound:g} (rail caps [{caps}] fF)",
            "channel", entry.channel,
            detail=f"block {entry.block}" if entry.block else "",
            hint="balance the rails with add_dummy_load or re-route; "
                 "harden.hardening_pipeline automates this"))
    return hits


def check_dummy_loads(context) -> List[Finding]:
    """SEC003 — a dummy load that cannot balance anything.

    A dummy capacitance on a net with neither driver nor sinks loads a
    wire no transition ever reaches: the balancing pass that placed it
    targeted a net that no longer exists in the live circuit (renamed,
    disconnected by a later edit).  A negative dummy load is nonsense
    outright.
    """
    netlist = context.netlist
    hits: List[Finding] = []
    for net in netlist.nets():
        if net.dummy_cap_ff < 0.0:
            hits.append(finding(
                f"negative dummy load {net.dummy_cap_ff:.2f} fF",
                "net", net.name,
                hint="dummy loads only ever add capacitance"))
        elif net.dummy_cap_ff > 0.0 and net.driver is None and not net.sinks:
            hits.append(finding(
                f"dummy load {net.dummy_cap_ff:.2f} fF sits on a "
                "disconnected net — no transition ever charges it",
                "net", net.name,
                hint="the balancing target no longer exists; re-run the "
                     "repair pass against the current netlist"))
    return hits


RULES = (
    Rule("SEC001", "asymmetric rail cones", "security",
         Severity.ERROR, check_cone_symmetry,
         "The logic cones behind a channel's rails differ in gate count "
         "or cell mix."),
    Rule("SEC002", "rail capacitance dissymmetry above bound", "security",
         Severity.WARNING, check_rail_dissymmetry,
         "The extracted d_A criterion exceeds the configured bound on a "
         "channel."),
    Rule("SEC003", "dummy load on disconnected net", "security",
         Severity.ERROR, check_dummy_loads,
         "A balancing dummy load sits on a net nothing drives or reads."),
)
