"""``python -m repro.drc`` — run the DRC over the reference AES flows.

Checks one (or all) of the reference designs — the unplaced AES netlist,
the flat and hierarchical placed flows, the hardened flow — plus a
reference campaign configuration, prints each report and exits nonzero
when any error-severity diagnostic fired.  This is the CI gate: the
reference flows must stay clean under the full rule catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .checker import run_campaign_preflight, run_drc
from .diagnostics import DrcReport
from .registry import default_registry

#: What the CLI knows how to check, in execution order.
TARGETS = ("netlist", "flat", "hier", "hardened", "campaign")


def _reference_netlist(args):
    from ..asyncaes.netlist_gen import build_aes_netlist

    return build_aes_netlist(word_width=args.word_width, detail=args.detail)


def _reference_campaign():
    """A representative campaign grid exercising every CAM rule's subject."""
    from ..core.flow import AttackCampaign
    from ..core.selection import AesSboxSelection

    key = list(range(16))
    campaign = AttackCampaign(key, mtd_start=50, mtd_step=50)
    campaign.add_design("reference", trace_source=_null_trace_source)
    campaign.add_selection(AesSboxSelection(byte_index=0, bit_index=3))
    campaign.add_attack("dpa")
    return campaign


def _null_trace_source(plaintexts, noise):  # pragma: no cover - never traced
    raise RuntimeError("the reference DRC campaign is never executed")


def check_target(target: str, args) -> DrcReport:
    registry = default_registry()
    if target == "netlist":
        return run_drc(_reference_netlist(args), cap_bound=args.bound,
                       subject="netlist")
    if target == "flat":
        from ..pnr.flows import run_flat_flow

        design = run_flat_flow(_reference_netlist(args), seed=args.seed,
                               effort=args.effort)
        return run_drc(design.netlist, placement=design.placement,
                       cap_bound=args.bound, subject="flat")
    if target == "hier":
        from ..pnr.flows import run_hierarchical_flow

        design = run_hierarchical_flow(_reference_netlist(args),
                                       seed=args.seed, effort=args.effort)
        return run_drc(design.netlist, placement=design.placement,
                       cap_bound=args.bound, subject="hier")
    if target == "hardened":
        from ..harden.pipeline import harden_design

        result = harden_design(_reference_netlist(args), bound=args.bound,
                               seed=args.seed, effort=args.effort)
        return run_drc(result.design.netlist,
                       placement=result.design.placement,
                       cap_bound=args.bound, subject="hardened")
    if target == "campaign":
        return run_campaign_preflight(_reference_campaign(),
                                      registry=registry)
    raise ValueError(f"unknown target {target!r}; expected one of {TARGETS}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.drc",
        description="Static security DRC over the reference AES flows.")
    parser.add_argument("targets", nargs="*", choices=[*TARGETS, []],
                        help=f"what to check: {', '.join(TARGETS)} "
                             "(default with --all: everything)")
    parser.add_argument("--all", action="store_true",
                        help="check every reference target")
    parser.add_argument("--json", metavar="PATH",
                        help="write the merged JSONL report here")
    parser.add_argument("--bound", type=float, default=0.15,
                        help="SEC002 dissymmetry bound (default 0.15)")
    parser.add_argument("--word-width", type=int, default=8,
                        help="AES datapath width of the reference netlist")
    parser.add_argument("--detail", type=float, default=0.3,
                        help="netlist generator detail knob")
    parser.add_argument("--effort", type=float, default=0.3,
                        help="placement annealing effort")
    parser.add_argument("--seed", type=int, default=1,
                        help="placement seed")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print summaries only, not every diagnostic")
    args = parser.parse_args(argv)

    if args.rules:
        print(default_registry().catalog_table())
        return 0
    targets: List[str] = list(args.targets)
    if args.all:
        targets = list(TARGETS)
    if not targets:
        parser.error("pick at least one target, or --all (or --rules)")

    failed = False
    merged = DrcReport(subject="+".join(targets))
    for target in targets:
        report = check_target(target, args)
        merged.extend(report.diagnostics)
        merged.rules_checked.extend(report.rules_checked)
        print(report.summary() if args.quiet else report.render())
        if report.has_errors:
            failed = True
    if args.json:
        merged.write_jsonl(args.json)
        print(f"wrote {args.json}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
