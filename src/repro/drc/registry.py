"""The rule catalog: rule objects, per-rule configuration, registry.

A :class:`Rule` is a pure check: given a :class:`~repro.drc.checker.DrcContext`
it yields :class:`Finding` records (message + location + hint) and never
decides severity — the :class:`RuleRegistry` turns findings into
:class:`~repro.drc.diagnostics.Diagnostic` objects with the rule's
*effective* severity, so per-rule severity overrides and enable/disable
switches live in one place (and a rule disabled in one registry stays
enabled in another: registries are independent copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from .diagnostics import Diagnostic, DrcLocation, Severity

#: The four rule layers, keyed by the context attribute they need.
LAYERS = ("netlist", "security", "placement", "campaign")


@dataclass(frozen=True)
class Finding:
    """One raw rule hit, before severity is applied."""

    message: str
    location: DrcLocation
    hint: str = ""


def finding(message: str, kind: str, name: str, *, detail: str = "",
            hint: str = "") -> Finding:
    """Shorthand used by the rule modules."""
    return Finding(message, DrcLocation(kind, name, detail), hint)


@dataclass(frozen=True)
class Rule:
    """One static check of the catalog."""

    id: str
    title: str
    layer: str
    severity: Severity
    check: Callable[["object"], Iterable[Finding]]
    description: str = ""

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(f"rule {self.id!r} has unknown layer "
                             f"{self.layer!r}; expected one of {LAYERS}")


class RuleRegistry:
    """The configured rule set: registration, enable/disable, severities.

    ``registry.run_rule(rule_id, context)`` applies one rule and wraps its
    findings as diagnostics at the effective severity; disabled rules
    return no diagnostics.  The registry iterates rules sorted by id so
    every consumer sees a deterministic order.
    """

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: Dict[str, Rule] = {}
        self._disabled: set = set()
        self._severity_overrides: Dict[str, Severity] = {}
        for rule in rules:
            self.register(rule)

    # -------------------------------------------------------- registration
    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def rule(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule {rule_id!r}; known: "
                           f"{self.rule_ids()}") from None

    def rule_ids(self) -> List[str]:
        return sorted(self._rules)

    def rules(self, *, layer: Optional[str] = None,
              include_disabled: bool = False) -> List[Rule]:
        """Registered rules sorted by id, optionally one layer only."""
        selected = [self._rules[rule_id] for rule_id in sorted(self._rules)]
        if layer is not None:
            selected = [rule for rule in selected if rule.layer == layer]
        if not include_disabled:
            selected = [rule for rule in selected
                        if rule.id not in self._disabled]
        return selected

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    # ------------------------------------------------------- configuration
    def disable(self, rule_id: str) -> "RuleRegistry":
        self.rule(rule_id)  # raise on unknown ids, typos must not no-op
        self._disabled.add(rule_id)
        return self

    def enable(self, rule_id: str) -> "RuleRegistry":
        self.rule(rule_id)
        self._disabled.discard(rule_id)
        return self

    def is_enabled(self, rule_id: str) -> bool:
        self.rule(rule_id)
        return rule_id not in self._disabled

    def set_severity(self, rule_id: str,
                     severity: Union[str, Severity]) -> "RuleRegistry":
        self.rule(rule_id)
        self._severity_overrides[rule_id] = Severity.parse(severity)
        return self

    def effective_severity(self, rule_id: str) -> Severity:
        override = self._severity_overrides.get(rule_id)
        return override if override is not None else self.rule(rule_id).severity

    def copy(self) -> "RuleRegistry":
        """An independent registry with the same rules and configuration."""
        clone = RuleRegistry(self._rules.values())
        clone._disabled = set(self._disabled)
        clone._severity_overrides = dict(self._severity_overrides)
        return clone

    # --------------------------------------------------------------- apply
    def run_rule(self, rule_id: str, context) -> List[Diagnostic]:
        """Apply one rule; findings become diagnostics at its severity."""
        rule = self.rule(rule_id)
        if rule_id in self._disabled:
            return []
        severity = self.effective_severity(rule_id)
        return [Diagnostic(rule=rule.id, severity=severity,
                           message=hit.message, location=hit.location,
                           hint=hit.hint)
                for hit in rule.check(context)]

    def catalog_table(self) -> str:
        """One line per rule: id, layer, default severity, title."""
        lines = [f"{'rule':<8s} {'layer':<10s} {'severity':<8s} title",
                 "-" * 72]
        for rule in self.rules(include_disabled=True):
            state = "" if rule.id not in self._disabled else "  [disabled]"
            lines.append(f"{rule.id:<8s} {rule.layer:<10s} "
                         f"{self.effective_severity(rule.id).value:<8s} "
                         f"{rule.title}{state}")
        return "\n".join(lines)


def default_registry() -> RuleRegistry:
    """A fresh registry holding the full built-in catalog.

    Imported lazily so the rule modules can import registry helpers
    without a cycle.
    """
    from . import rules_campaign, rules_netlist, rules_placement, rules_security

    registry = RuleRegistry()
    for module in (rules_netlist, rules_security, rules_placement,
                   rules_campaign):
        for rule in module.RULES:
            registry.register(rule)
    return registry
