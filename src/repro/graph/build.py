"""Construction of the annotated directed graph G(V, E) of Section III.

The paper represents a QDI block as a directed graph built "from the gate
netlist by defining all the gates as the elements of the set V (vertices) and
all the interconnections as the elements of the set E (directed edges)"
(Fig. 5 shows the graph of the dual-rail XOR).  Vertices are annotated with
gate parameters and edges with net parameters, so that both the logical
analysis (levels, transition counts, symmetry) and the electrical analysis
(capacitances after back-end) operate on the same object.

We materialise the graph with :mod:`networkx` so that standard graph
algorithms (topological sorting, reachability) are available to the analysis
layers.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from ..circuits.netlist import Netlist

#: Node attribute keys
NODE_KIND = "kind"          #: "gate", "input" or "output"
NODE_CELL = "cell"          #: library cell name for gate nodes
NODE_BLOCK = "block"        #: architectural block of the instance
NODE_AREA = "area_um2"
NODE_LEVEL = "level"        #: logical level (filled by levels.compute_levels)

#: Edge attribute keys
EDGE_NET = "net"
EDGE_ROUTING_CAP = "routing_cap_ff"
EDGE_LOAD_CAP = "load_cap_ff"
EDGE_TOTAL_CAP = "total_cap_ff"
EDGE_CHANNEL = "channel"
EDGE_RAIL = "rail"

#: Prefix used for pseudo-nodes representing primary inputs / outputs.
INPUT_PREFIX = "IN:"
OUTPUT_PREFIX = "OUT:"


def input_node(net_name: str) -> str:
    """Name of the pseudo-vertex representing the primary input ``net_name``."""
    return f"{INPUT_PREFIX}{net_name}"


def output_node(net_name: str) -> str:
    """Name of the pseudo-vertex representing the primary output ``net_name``."""
    return f"{OUTPUT_PREFIX}{net_name}"


def is_gate_node(graph: nx.DiGraph, node: str) -> bool:
    return graph.nodes[node].get(NODE_KIND) == "gate"


def gate_nodes(graph: nx.DiGraph) -> Iterable[str]:
    """Iterate over the gate vertices of the graph (skipping I/O pseudo-nodes)."""
    return (n for n, data in graph.nodes(data=True) if data.get(NODE_KIND) == "gate")


def build_circuit_graph(netlist: Netlist, *, block: Optional[str] = None,
                        include_io_nodes: bool = True) -> nx.DiGraph:
    """Build the directed graph G(V, E) of a netlist.

    Parameters
    ----------
    netlist:
        The gate-level netlist to convert.
    block:
        When given, restrict the graph to instances of that architectural
        block (edges crossing the block boundary end on I/O pseudo-nodes).
    include_io_nodes:
        Add pseudo-vertices for primary inputs and outputs, as in Fig. 5 where
        the dotted edges represent the block boundary.

    Returns
    -------
    networkx.DiGraph
        Gate vertices carry ``cell``, ``block`` and ``area_um2`` attributes;
        edges carry the net name and its capacitance decomposition.
    """
    graph = nx.DiGraph(name=netlist.name)

    def want(instance_name: str) -> bool:
        if block is None:
            return True
        return netlist.instance(instance_name).block == block

    for instance in netlist.instances():
        if not want(instance.name):
            continue
        cell = netlist.library.get(instance.cell)
        graph.add_node(
            instance.name,
            **{
                NODE_KIND: "gate",
                NODE_CELL: cell.name,
                NODE_BLOCK: instance.block,
                NODE_AREA: cell.area_um2,
            },
        )

    for net in netlist.nets():
        edge_attrs = {
            EDGE_NET: net.name,
            EDGE_ROUTING_CAP: net.routing_cap_ff,
            EDGE_LOAD_CAP: netlist.load_cap_ff(net.name),
            EDGE_TOTAL_CAP: netlist.total_cap_ff(net.name),
            EDGE_CHANNEL: net.channel,
            EDGE_RAIL: net.rail,
        }
        driver_in_graph = net.driver is not None and net.driver.instance in graph
        if driver_in_graph:
            source = net.driver.instance
        elif include_io_nodes and net.sinks:
            source = input_node(net.name)
        else:
            source = None

        for sink in net.sinks:
            if sink.instance not in graph:
                continue
            if source is None:
                continue
            if source == input_node(net.name) and source not in graph:
                graph.add_node(source, **{NODE_KIND: "input"})
            graph.add_edge(source, sink.instance, **edge_attrs)

        # Edge towards a primary output (or the block boundary).
        if driver_in_graph:
            external_sinks = [s for s in net.sinks if s.instance not in graph]
            is_primary_output = net.name in set(netlist.output_nets())
            if include_io_nodes and (is_primary_output or (block is not None and external_sinks)
                                     or not net.sinks):
                out = output_node(net.name)
                graph.add_node(out, **{NODE_KIND: "output"})
                graph.add_edge(source, out, **edge_attrs)

    return graph


def refresh_edge_capacitances(graph: nx.DiGraph, netlist: Netlist) -> None:
    """Re-read net capacitances from the netlist into the graph edges.

    Call after place-and-route extraction has updated the netlist so that the
    graph reflects the back-end values, as the paper does when annotating the
    graph "with information collected at each different phase of the design".
    """
    for _, _, data in graph.edges(data=True):
        net_name = data[EDGE_NET]
        if not netlist.has_net(net_name):
            continue
        net = netlist.net(net_name)
        data[EDGE_ROUTING_CAP] = net.routing_cap_ff
        data[EDGE_LOAD_CAP] = netlist.load_cap_ff(net_name)
        data[EDGE_TOTAL_CAP] = netlist.total_cap_ff(net_name)
