"""Logical levels and the Nt / Nc / Nij quantities of Section III.

The paper divides a block into ``Nc`` logical levels (``Nc`` = number of gates
along the critical data path), counts ``Nij`` gates switching at each level
``i`` for a given computation, and uses the fixed total number of transitions
``Nt`` of a balanced block to write the block current profile

    ``P_dc(t) = Σ_i Σ_j I_ij(t) + P_dn(t)``                (equation (5)).

For the dual-rail XOR of Fig. 5 the graph exploration yields
``Nt = Nc = 4`` and ``N_1j = N_2j = N_3j = N_4j = 1``, i.e. exactly one gate
fires per level per computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

import networkx as nx

from ..circuits.signals import TraceRecord, TransitionKind
from .build import NODE_KIND, gate_nodes


class LevelAnalysisError(Exception):
    """Raised when logical levels cannot be computed."""


def _data_subgraph(graph: nx.DiGraph, ignore_nets: Optional[Iterable[str]] = None) -> nx.DiGraph:
    """Return a copy of the graph without edges flagged as acknowledge nets.

    QDI circuits contain feedback through acknowledgement wires; the logical
    levels of Section III are defined on the forward data path, so edges whose
    net name marks them as acknowledge/reset signals are dropped before the
    longest-path computation.  Remaining cycles are broken conservatively.
    """
    ignore = set(ignore_nets) if ignore_nets is not None else set()
    sub = graph.copy()
    to_remove = []
    for source, target, data in sub.edges(data=True):
        net = (data.get("net") or "").lower()
        if data.get("net") in ignore:
            to_remove.append((source, target))
        elif "ack" in net or "reset" in net or "rst" in net:
            to_remove.append((source, target))
    sub.remove_edges_from(to_remove)
    if not nx.is_directed_acyclic_graph(sub):
        # Break remaining cycles (e.g. self-timed loops) by removing one edge
        # per cycle; levels are then defined per pipeline stage.
        while True:
            try:
                cycle = nx.find_cycle(sub)
            except nx.NetworkXNoCycle:
                break
            sub.remove_edge(*cycle[0][:2])
    return sub


def compute_levels(graph: nx.DiGraph, *,
                   ignore_nets: Optional[Iterable[str]] = None) -> Dict[str, int]:
    """Assign a logical level to every gate vertex.

    The level of a gate is one plus the maximum level of the gates feeding it
    (gates fed only by primary inputs are level 1), i.e. the longest data path
    from the block inputs — the quantity the paper uses to slice the block
    into ``Nc`` levels.
    """
    sub = _data_subgraph(graph, ignore_nets)
    levels: Dict[str, int] = {}
    for node in nx.topological_sort(sub):
        if sub.nodes[node].get(NODE_KIND) != "gate":
            continue
        feeding = [
            levels[p] for p in sub.predecessors(node)
            if sub.nodes[p].get(NODE_KIND) == "gate"
        ]
        levels[node] = (max(feeding) + 1) if feeding else 1
    return levels


def critical_path_length(graph: nx.DiGraph, **kwargs) -> int:
    """``Nc``: the number of gates along the longest data path."""
    levels = compute_levels(graph, **kwargs)
    return max(levels.values()) if levels else 0


@dataclass
class LevelProfile:
    """The (Nt, Nc, Nij) description of a block.

    ``nij`` maps level → number of gates that switch at that level during one
    computation; ``structural_nij`` maps level → number of gates present at
    that level (the upper bound used when no simulation is available).
    """

    nc: int
    nt: int
    nij: Dict[int, int] = field(default_factory=dict)
    structural_nij: Dict[int, int] = field(default_factory=dict)

    def gates_at(self, level: int) -> int:
        return self.nij.get(level, 0)

    def is_one_per_level(self) -> bool:
        """True when exactly one gate switches at every level (the XOR case)."""
        return all(count == 1 for count in self.nij.values()) and len(self.nij) == self.nc


def structural_profile(graph: nx.DiGraph, *,
                       levels: Optional[Mapping[str, int]] = None) -> LevelProfile:
    """Profile derived from the netlist structure only (no simulation).

    ``Nt`` is taken as the total number of gates (every gate of a balanced
    block switches exactly once per phase), ``Nij`` as the gate count per
    level.
    """
    if levels is None:
        levels = compute_levels(graph)
    per_level: Dict[int, int] = {}
    for node in gate_nodes(graph):
        level = levels.get(node, 0)
        if level <= 0:
            continue
        per_level[level] = per_level.get(level, 0) + 1
    nc = max(per_level) if per_level else 0
    nt = sum(per_level.values())
    return LevelProfile(nc=nc, nt=nt, nij=dict(per_level), structural_nij=dict(per_level))


def switching_profile(trace: TraceRecord, levels: Mapping[str, int], *,
                      kind: TransitionKind = TransitionKind.RISING,
                      gate_filter: Optional[Set[str]] = None) -> LevelProfile:
    """Profile derived from a simulation trace.

    Counts, per logical level, the gates that produced a transition of the
    requested direction (rising = evaluation phase, falling = return-to-zero
    phase).  ``Nt`` is the number of switching gates and ``Nc`` the deepest
    level reached.
    """
    switching: Dict[int, Set[str]] = {}
    for transition in trace.transitions:
        if transition.cause is None:
            continue
        if gate_filter is not None and transition.cause not in gate_filter:
            continue
        if transition.kind is not kind:
            continue
        level = levels.get(transition.cause)
        if level is None or level <= 0:
            continue
        switching.setdefault(level, set()).add(transition.cause)
    nij = {level: len(gates) for level, gates in switching.items()}
    nc = max(nij) if nij else 0
    nt = sum(nij.values())
    structural: Dict[int, int] = {}
    for level in levels.values():
        if level > 0:
            structural[level] = structural.get(level, 0) + 1
    return LevelProfile(nc=nc, nt=nt, nij=nij, structural_nij=structural)


def gates_by_level(levels: Mapping[str, int]) -> Dict[int, List[str]]:
    """Group gate names by logical level (sorted within each level)."""
    grouped: Dict[int, List[str]] = {}
    for gate, level in levels.items():
        grouped.setdefault(level, []).append(gate)
    for names in grouped.values():
        names.sort()
    return grouped


def verify_constant_profile(profiles: Sequence[LevelProfile]) -> bool:
    """Check that several per-computation profiles are identical.

    Balanced secured blocks must show the same (Nt, Nc, Nij) for every input
    combination; this is the logical-balance property of Section II.
    """
    if not profiles:
        return True
    reference = profiles[0]
    return all(
        p.nc == reference.nc and p.nt == reference.nt and p.nij == reference.nij
        for p in profiles[1:]
    )
