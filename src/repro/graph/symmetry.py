"""Formal verification of data-path symmetry on the circuit graph.

One of the two benefits the paper claims for the graph representation is that
"it offers the opportunity to formally verify the logical symmetry of the
data-path".  For a dual-rail (or 1-of-N) output channel, the cones of logic
driving each rail must be structurally equivalent: same number of gates per
logical level and same multiset of cell types per level.  Any structural
asymmetry translates into a different number (or weight) of transitions per
rail and therefore into first-order DPA leakage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import networkx as nx

from ..circuits.channels import ChannelNets
from ..circuits.netlist import Netlist
from .build import NODE_CELL, NODE_KIND
from .levels import compute_levels


@dataclass
class ConeProfile:
    """Structural summary of the logic cone driving one rail."""

    rail: str
    gates: List[str]
    gates_per_level: Dict[int, int]
    cells_per_level: Dict[int, Counter]

    @property
    def size(self) -> int:
        return len(self.gates)

    @property
    def depth(self) -> int:
        return max(self.gates_per_level) if self.gates_per_level else 0


@dataclass
class SymmetryReport:
    """Result of comparing the rail cones of one channel."""

    channel: str
    profiles: List[ConeProfile]
    mismatches: List[str] = field(default_factory=list)

    @property
    def is_symmetric(self) -> bool:
        return not self.mismatches


def rail_cone(netlist: Netlist, graph: nx.DiGraph, rail_net: str, *,
              stop_at: Optional[Set[str]] = None) -> List[str]:
    """Gate instances in the transitive fan-in cone of ``rail_net``.

    The traversal walks backwards from the driver of the rail through data
    edges, stopping at primary inputs and at any instance listed in
    ``stop_at`` (used to bound the cone at channel boundaries).
    """
    net = netlist.net(rail_net)
    if net.driver is None:
        return []
    stop = stop_at if stop_at is not None else set()
    cone: List[str] = []
    seen: Set[str] = set()
    frontier = [net.driver.instance]
    while frontier:
        instance = frontier.pop()
        if instance in seen or instance not in graph:
            continue
        seen.add(instance)
        cone.append(instance)
        if instance in stop:
            continue
        for predecessor in graph.predecessors(instance):
            if graph.nodes[predecessor].get(NODE_KIND) == "gate":
                edge = graph.edges[predecessor, instance]
                net_name = (edge.get("net") or "").lower()
                if "ack" in net_name or "reset" in net_name or "rst" in net_name:
                    continue
                frontier.append(predecessor)
    return cone


def cone_profile(graph: nx.DiGraph, rail: str, cone: Sequence[str], *,
                 levels: Optional[Mapping[str, int]] = None) -> ConeProfile:
    """Summarise a cone per logical level (gate count and cell types)."""
    if levels is None:
        levels = compute_levels(graph)
    gates_per_level: Dict[int, int] = {}
    cells_per_level: Dict[int, Counter] = {}
    for instance in cone:
        level = levels.get(instance, 0)
        gates_per_level[level] = gates_per_level.get(level, 0) + 1
        cells_per_level.setdefault(level, Counter())[
            graph.nodes[instance].get(NODE_CELL, "?")
        ] += 1
    return ConeProfile(
        rail=rail,
        gates=list(cone),
        gates_per_level=gates_per_level,
        cells_per_level=cells_per_level,
    )


def compare_channel_symmetry(netlist: Netlist, graph: nx.DiGraph,
                             channel: ChannelNets, *,
                             levels: Optional[Mapping[str, int]] = None,
                             require_same_cells: bool = True) -> SymmetryReport:
    """Compare the cones of every rail of a channel and report mismatches."""
    if levels is None:
        levels = compute_levels(graph)
    profiles = []
    for rail in channel.rails:
        cone = rail_cone(netlist, graph, rail)
        profiles.append(cone_profile(graph, rail, cone, levels=levels))

    mismatches: List[str] = []
    reference = profiles[0]
    for other in profiles[1:]:
        if set(other.gates_per_level) != set(reference.gates_per_level):
            mismatches.append(
                f"rails {reference.rail!r} and {other.rail!r} span different levels: "
                f"{sorted(reference.gates_per_level)} vs {sorted(other.gates_per_level)}"
            )
            continue
        for level in sorted(reference.gates_per_level):
            if other.gates_per_level[level] != reference.gates_per_level[level]:
                mismatches.append(
                    f"level {level}: {reference.gates_per_level[level]} gate(s) on "
                    f"{reference.rail!r} vs {other.gates_per_level[level]} on {other.rail!r}"
                )
            elif require_same_cells and other.cells_per_level[level] != reference.cells_per_level[level]:
                mismatches.append(
                    f"level {level}: cell types differ between {reference.rail!r} "
                    f"({dict(reference.cells_per_level[level])}) and {other.rail!r} "
                    f"({dict(other.cells_per_level[level])})"
                )
    return SymmetryReport(channel=channel.name, profiles=profiles, mismatches=mismatches)


def verify_block_symmetry(netlist: Netlist, graph: nx.DiGraph,
                          channels: Sequence[ChannelNets], **kwargs) -> List[SymmetryReport]:
    """Run :func:`compare_channel_symmetry` over several output channels."""
    return [compare_channel_symmetry(netlist, graph, c, **kwargs) for c in channels]
