"""Annotation records for vertices and edges of the circuit graph.

The paper's methodology annotates the graph with "all gates' parameters" on
the vertices and "all nets' parameters" on the edges, at every phase of the
design (after synthesis with estimated capacitances, after back-end with
extracted ones).  This module provides typed views over those annotations and
helpers to produce human-readable reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from ..circuits.netlist import Netlist
from .build import (
    EDGE_CHANNEL,
    EDGE_LOAD_CAP,
    EDGE_NET,
    EDGE_RAIL,
    EDGE_ROUTING_CAP,
    EDGE_TOTAL_CAP,
    NODE_AREA,
    NODE_BLOCK,
    NODE_CELL,
    NODE_KIND,
    NODE_LEVEL,
    gate_nodes,
)


@dataclass(frozen=True)
class GateAnnotation:
    """Parameters attached to a gate vertex."""

    name: str
    cell: str
    block: str
    area_um2: float
    level: int


@dataclass(frozen=True)
class NetAnnotation:
    """Parameters attached to an interconnection edge."""

    net: str
    routing_cap_ff: float
    load_cap_ff: float
    total_cap_ff: float
    channel: Optional[str]
    rail: Optional[int]


def gate_annotation(graph: nx.DiGraph, node: str) -> GateAnnotation:
    """Typed view of the annotations of a gate vertex."""
    data = graph.nodes[node]
    if data.get(NODE_KIND) != "gate":
        raise ValueError(f"node {node!r} is not a gate vertex")
    return GateAnnotation(
        name=node,
        cell=data.get(NODE_CELL, ""),
        block=data.get(NODE_BLOCK, ""),
        area_um2=float(data.get(NODE_AREA, 0.0)),
        level=int(data.get(NODE_LEVEL, 0)),
    )


def net_annotation(graph: nx.DiGraph, source: str, target: str) -> NetAnnotation:
    """Typed view of the annotations of an edge."""
    data = graph.edges[source, target]
    return NetAnnotation(
        net=data[EDGE_NET],
        routing_cap_ff=float(data.get(EDGE_ROUTING_CAP, 0.0)),
        load_cap_ff=float(data.get(EDGE_LOAD_CAP, 0.0)),
        total_cap_ff=float(data.get(EDGE_TOTAL_CAP, 0.0)),
        channel=data.get(EDGE_CHANNEL),
        rail=data.get(EDGE_RAIL),
    )


def all_gate_annotations(graph: nx.DiGraph) -> List[GateAnnotation]:
    return [gate_annotation(graph, node) for node in gate_nodes(graph)]


def all_net_annotations(graph: nx.DiGraph) -> List[NetAnnotation]:
    seen: Dict[str, NetAnnotation] = {}
    for source, target in graph.edges():
        annotation = net_annotation(graph, source, target)
        seen.setdefault(annotation.net, annotation)
    return list(seen.values())


def annotate_levels(graph: nx.DiGraph, levels: Dict[str, int]) -> None:
    """Store logical levels on the gate vertices."""
    for node, level in levels.items():
        if node in graph:
            graph.nodes[node][NODE_LEVEL] = level


def total_gate_area(graph: nx.DiGraph) -> float:
    """Sum of the cell areas of all gate vertices (µm²)."""
    return sum(gate_annotation(graph, node).area_um2 for node in gate_nodes(graph))


def capacitance_by_net(graph: nx.DiGraph) -> Dict[str, float]:
    """Map net name → total node capacitance (fF) as annotated on the graph."""
    return {ann.net: ann.total_cap_ff for ann in all_net_annotations(graph)}


def describe_graph(graph: nx.DiGraph, netlist: Optional[Netlist] = None) -> str:
    """Produce a short multi-line description of an annotated graph."""
    gates = list(gate_nodes(graph))
    lines = [
        f"graph {graph.name or '<unnamed>'}: {len(gates)} gates, "
        f"{graph.number_of_edges()} edges",
    ]
    cells: Dict[str, int] = {}
    for node in gates:
        cell = graph.nodes[node].get(NODE_CELL, "?")
        cells[cell] = cells.get(cell, 0) + 1
    for cell in sorted(cells):
        lines.append(f"  {cell:<12s} x{cells[cell]}")
    if netlist is not None:
        lines.append(f"  total cell area: {netlist.total_area_um2():.1f} um2")
    return "\n".join(lines)
