"""Annotated directed-graph formalism of Section III of the paper.

A QDI block's netlist is converted into a directed graph G(V, E) whose
vertices are gates and whose edges are interconnections, annotated with gate
and net parameters.  The graph supports the logical analysis (levels, Nt / Nc
/ Nij, data-path symmetry) and, once back-end capacitances are annotated, the
electrical analysis of the block's current profile.
"""

from .annotate import (
    GateAnnotation,
    NetAnnotation,
    all_gate_annotations,
    all_net_annotations,
    annotate_levels,
    capacitance_by_net,
    describe_graph,
    gate_annotation,
    net_annotation,
    total_gate_area,
)
from .build import (
    EDGE_CHANNEL,
    EDGE_LOAD_CAP,
    EDGE_NET,
    EDGE_RAIL,
    EDGE_ROUTING_CAP,
    EDGE_TOTAL_CAP,
    NODE_AREA,
    NODE_BLOCK,
    NODE_CELL,
    NODE_KIND,
    NODE_LEVEL,
    build_circuit_graph,
    gate_nodes,
    input_node,
    is_gate_node,
    output_node,
    refresh_edge_capacitances,
)
from .levels import (
    LevelAnalysisError,
    LevelProfile,
    compute_levels,
    critical_path_length,
    gates_by_level,
    structural_profile,
    switching_profile,
    verify_constant_profile,
)
from .symmetry import (
    ConeProfile,
    SymmetryReport,
    compare_channel_symmetry,
    cone_profile,
    rail_cone,
    verify_block_symmetry,
)

__all__ = [
    "GateAnnotation",
    "NetAnnotation",
    "all_gate_annotations",
    "all_net_annotations",
    "annotate_levels",
    "capacitance_by_net",
    "describe_graph",
    "gate_annotation",
    "net_annotation",
    "total_gate_area",
    "EDGE_CHANNEL",
    "EDGE_LOAD_CAP",
    "EDGE_NET",
    "EDGE_RAIL",
    "EDGE_ROUTING_CAP",
    "EDGE_TOTAL_CAP",
    "NODE_AREA",
    "NODE_BLOCK",
    "NODE_CELL",
    "NODE_KIND",
    "NODE_LEVEL",
    "build_circuit_graph",
    "gate_nodes",
    "input_node",
    "is_gate_node",
    "output_node",
    "refresh_edge_capacitances",
    "LevelAnalysisError",
    "LevelProfile",
    "compute_levels",
    "critical_path_length",
    "gates_by_level",
    "structural_profile",
    "switching_profile",
    "verify_constant_profile",
    "ConeProfile",
    "SymmetryReport",
    "compare_channel_symmetry",
    "cone_profile",
    "rail_cone",
    "verify_block_symmetry",
]
