"""TVLA leakage detection: Welch t-tests over streaming trace pipelines.

Attack-independent leakage assessment, the certification-style counterpart of
the key-recovery attacks of :mod:`repro.core`: instead of asking "can this
attack find the key", the evaluator asks "do these two trace populations have
the same mean" — and flags the device when any sample rejects that at
``|t| > 4.5`` (the Goodwill et al. TVLA criterion; with millions of traces a
4.5σ excursion by chance is astronomically unlikely).

Two partitions are provided:

* **non-specific** (fixed vs random): half the acquisitions encrypt one fixed
  plaintext, interleaved with random ones
  (:func:`repro.asyncaes.tracegen.fixed_vs_random_plaintexts` builds the
  schedule); any mean difference at all is leakage;
* **specific**: all-random acquisitions partitioned by one predicted
  intermediate bit under the *known* key — the D functions of
  :mod:`repro.core.selection` evaluated at the true sub-key.

Everything is built on the mergeable accumulators of
:mod:`repro.assess.accumulators`, so the same code serves one in-memory
matrix, a bounded-memory chunk stream, and sharded campaigns whose partial
results merge exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.selection import SelectionFunction, selection_matrix
from .accumulators import AccumulatorError, MomentAccumulator

#: The TVLA detection threshold on |t| (Goodwill et al.).
TVLA_THRESHOLD = 4.5


def welch_t(moments0: MomentAccumulator, moments1: MomentAccumulator) -> np.ndarray:
    """Per-sample Welch t-statistic between two accumulated populations.

    ``t[j] = (x̄0[j] − x̄1[j]) / sqrt(s0²[j]/n0 + s1²[j]/n1)``; samples where
    the pooled standard error vanishes (both populations constant) yield 0 —
    the "no evidence" reading.  Each population needs at least two traces.
    """
    if moments0.count < 2 or moments1.count < 2:
        raise AccumulatorError(
            f"Welch's t-test needs >= 2 traces per population, got "
            f"{moments0.count} and {moments1.count}"
        )
    difference = moments0.mean - moments1.mean
    error = np.sqrt(moments0.variance() / moments0.count
                    + moments1.variance() / moments1.count)
    return np.divide(difference, error,
                     out=np.zeros_like(difference), where=error > 0)


@dataclass
class TTestResult:
    """Outcome of one Welch t-test assessment."""

    t: np.ndarray
    n0: int
    n1: int
    threshold: float = TVLA_THRESHOLD
    partition: str = "fixed-vs-random"
    #: Optional ``(trace_count, max |t|)`` detection curve.
    curve: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def trace_count(self) -> int:
        return self.n0 + self.n1

    @property
    def max_abs_t(self) -> float:
        return float(np.max(np.abs(self.t))) if len(self.t) else 0.0

    @property
    def leaks(self) -> bool:
        """The TVLA verdict: any sample beyond the ``|t|`` threshold."""
        return self.max_abs_t > self.threshold

    def summary(self) -> str:
        verdict = "LEAKS" if self.leaks else "clear"
        return (f"[{verdict}] {self.partition}: max |t| = {self.max_abs_t:.2f} "
                f"(threshold {self.threshold:.1f}) over {self.trace_count} "
                f"traces ({self.n0} / {self.n1})")


class StreamingTTest:
    """Mergeable two-population Welch t-test fed chunk by chunk.

    ``update(matrix, labels)`` routes each trace row to population 0 or 1 by
    its label; :meth:`result` reads the statistic out at any point.  Two
    instances fed disjoint shards :meth:`merge` into exactly the combined
    assessment.
    """

    def __init__(self, *, threshold: float = TVLA_THRESHOLD,
                 partition: str = "fixed-vs-random"):
        self.threshold = threshold
        self.partition = partition
        self._moments = (MomentAccumulator(), MomentAccumulator())
        self._curve: List[Tuple[int, float]] = []

    @property
    def count(self) -> int:
        return self._moments[0].count + self._moments[1].count

    @property
    def counts(self) -> Tuple[int, int]:
        return (self._moments[0].count, self._moments[1].count)

    def update(self, matrix: np.ndarray, labels) -> "StreamingTTest":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        labels = np.asarray(labels).reshape(-1)
        if len(labels) != matrix.shape[0]:
            raise AccumulatorError(
                f"got {len(labels)} labels for {matrix.shape[0]} trace rows"
            )
        ones = labels == 1
        self._moments[0].update(matrix[~ones])
        self._moments[1].update(matrix[ones])
        return self

    def merge(self, other: "StreamingTTest") -> "StreamingTTest":
        """Fold another shard's populations in (exact for the statistic).

        Detection curves are prefix statistics of one acquisition *order*, so
        they do not survive a shard merge — the merged instance drops both
        curves rather than pairing shard-local trace counts with t-values
        that belong to neither stream.
        """
        self._moments[0].merge(other._moments[0])
        self._moments[1].merge(other._moments[1])
        self._curve = []
        return self

    def t_statistic(self) -> np.ndarray:
        return welch_t(self._moments[0], self._moments[1])

    def record_curve_point(self) -> Optional[Tuple[int, float]]:
        """Append the current ``(trace_count, max |t|)`` to the curve.

        Skipped (returning ``None``) while either population still holds
        fewer than two traces — the t-statistic is undefined there, and a
        caller's early curve boundary must not abort the assessment.
        """
        if self._moments[0].count < 2 or self._moments[1].count < 2:
            return None
        point = (self.count, float(np.max(np.abs(self.t_statistic()))))
        self._curve.append(point)
        return point

    def result(self) -> TTestResult:
        return TTestResult(
            t=self.t_statistic(),
            n0=self._moments[0].count,
            n1=self._moments[1].count,
            threshold=self.threshold,
            partition=self.partition,
            curve=list(self._curve),
        )


def _chunk_stream(traces_or_chunks):
    """Normalize a TraceSet / chunk iterable into a chunk iterator."""
    if hasattr(traces_or_chunks, "matrix"):
        return iter((traces_or_chunks,))
    return iter(traces_or_chunks)


def ttest_fixed_vs_random(traces_or_chunks, labels, *,
                          threshold: float = TVLA_THRESHOLD,
                          curve_boundaries: Optional[Sequence[int]] = None
                          ) -> TTestResult:
    """Non-specific TVLA over a trace set or a bounded-memory chunk stream.

    ``labels`` holds one 0 (fixed) / 1 (random) entry per trace of the whole
    acquisition, in order; chunks consume it positionally, so the caller can
    stream millions of traces while this function holds only the accumulator.
    ``curve_boundaries`` (ascending trace counts) records the max-|t| detection
    curve as the stream crosses each boundary.
    """
    sweep = BoundarySweep(curve_boundaries)
    ttest = StreamingTTest(threshold=threshold)
    position = 0
    for chunk in _chunk_stream(traces_or_chunks):
        matrix = chunk.matrix()
        chunk_labels = np.asarray(labels).reshape(-1)[
            position:position + matrix.shape[0]]
        if len(chunk_labels) != matrix.shape[0]:
            raise AccumulatorError(
                f"labels cover {position + len(chunk_labels)} traces but the "
                f"stream reached {position + matrix.shape[0]}"
            )
        for start, stop in sweep.segments(position, matrix.shape[0]):
            ttest.update(matrix[start - position:stop - position],
                         chunk_labels[start - position:stop - position])
            if sweep.at_boundary(stop):
                ttest.record_curve_point()
        position += matrix.shape[0]
    return ttest.result()


def specific_labels(selection: SelectionFunction,
                    plaintexts: Sequence[Sequence[int]],
                    key_value: int) -> np.ndarray:
    """Partition labels of a specific t-test: the D bit under the true key."""
    return selection_matrix(selection, [list(p) for p in plaintexts],
                            [key_value])[0]


def ttest_specific(traces_or_chunks, selection: SelectionFunction,
                   key_value: int, *, threshold: float = TVLA_THRESHOLD,
                   curve_boundaries: Optional[Sequence[int]] = None
                   ) -> TTestResult:
    """Specific TVLA: partition all-random traces by a known-key intermediate.

    Reuses the vectorized D functions of :mod:`repro.core.selection` — the
    labels of a chunk are one ``selection_matrix`` evaluation at the true
    sub-key, so every selection the attacks understand doubles as a specific
    leakage-assessment partition.
    """
    sweep = BoundarySweep(curve_boundaries)
    ttest = StreamingTTest(threshold=threshold,
                           partition=f"specific[{selection.name}]")
    position = 0
    for chunk in _chunk_stream(traces_or_chunks):
        matrix = chunk.matrix()
        labels = specific_labels(selection, chunk.plaintexts(), key_value)
        for start, stop in sweep.segments(position, matrix.shape[0]):
            ttest.update(matrix[start - position:stop - position],
                         labels[start - position:stop - position])
            if sweep.at_boundary(stop):
                ttest.record_curve_point()
        position += matrix.shape[0]
    return ttest.result()


class BoundarySweep:
    """Split chunk row-ranges at ascending global boundaries.

    ``segments(position, length)`` yields global ``(start, stop)`` ranges
    covering ``[position, position + length)`` and cut at every registered
    boundary, so callers can snapshot a statistic exactly at each boundary
    crossing; :meth:`at_boundary` tells whether a stop edge is one.  Shared
    by the curve-recording t-tests here and the streaming campaign's
    disclosure sweeps (:meth:`repro.core.flow.AttackCampaign.run`).
    """

    def __init__(self, boundaries: Optional[Sequence[int]]):
        self._boundaries = sorted(set(int(b) for b in boundaries)) if boundaries else []

    def segments(self, position: int, length: int):
        cuts = [b for b in self._boundaries if position < b < position + length]
        edges = [position] + cuts + [position + length]
        for start, stop in zip(edges, edges[1:]):
            yield start, stop

    def at_boundary(self, stop: int) -> bool:
        return stop in self._boundaries
