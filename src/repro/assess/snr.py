"""Per-sample signal-to-noise ratio partitioned by intermediate value.

The second standard leakage-assessment statistic: partition the traces by the
value of a predicted intermediate (under the known key) and compare the
variance *between* the class means — the exploitable signal — to the pooled
variance *within* the classes — the noise an attack must average out:

    SNR[j] = Var_v( E[S_j | v] ) / E_v( Var[S_j | v] )

A sample with SNR ≈ 0 carries no first-order information about the
intermediate; the samples with the largest SNR are where DPA/CPA peaks live,
and the Pearson correlation of a matched model is ``ρ² ≈ SNR/(1+SNR)``.

Built on :class:`repro.assess.accumulators.ClassAccumulator`, so the whole
statistic streams chunk-by-chunk in bounded memory and shards merge exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.selection import SelectionFunction, popcount_matrix
from .accumulators import AccumulatorError, ClassAccumulator


def intermediate_labels(selection: SelectionFunction,
                        plaintexts: Sequence[Sequence[int]],
                        key_value: int, *, classes: str = "value") -> np.ndarray:
    """Class label of every trace: the known-key intermediate (or its HW).

    ``classes="value"`` partitions by the raw intermediate byte (up to 256
    classes); ``classes="hw"`` coarsens to its Hamming weight (9 classes for
    a byte), which needs far fewer traces per class.  Requires the selection
    to expose a vectorized ``intermediate_matrix`` (all the standard AES/DES
    selections do); selections without one but with a scalar ``intermediate``
    are evaluated per trace.
    """
    plaintexts = [list(p) for p in plaintexts]
    guesses = np.asarray([key_value], dtype=np.int64)
    intermediate_matrix = getattr(selection, "intermediate_matrix", None)
    if intermediate_matrix is not None:
        values = np.asarray(intermediate_matrix(plaintexts, guesses))[0]
    else:
        intermediate = getattr(selection, "intermediate", None)
        if intermediate is None:
            raise AccumulatorError(
                f"selection {selection.name!r} exposes no intermediate value "
                "to partition by"
            )
        values = np.asarray(
            [intermediate(plaintext, key_value) for plaintext in plaintexts],
            dtype=np.int64,
        )
    if classes == "value":
        return values
    if classes == "hw":
        return popcount_matrix(values)
    raise ValueError(f"unknown SNR class partition {classes!r}; "
                     "expected 'value' or 'hw'")


def class_count_for(selection: SelectionFunction, classes: str = "value") -> int:
    """Number of label classes a selection's intermediate can take."""
    if classes == "hw":
        return 9
    guesses = getattr(selection, "guesses", None)
    space = len(list(guesses())) if guesses is not None else 256
    return max(space, 2)


@dataclass
class SnrResult:
    """Outcome of one SNR assessment."""

    snr: np.ndarray
    class_counts: np.ndarray
    partition: str = "intermediate"

    @property
    def trace_count(self) -> int:
        return int(self.class_counts.sum())

    @property
    def populated_classes(self) -> int:
        return int((self.class_counts > 0).sum())

    @property
    def max_snr(self) -> float:
        return float(np.max(self.snr)) if len(self.snr) else 0.0

    @property
    def peak_sample(self) -> int:
        return int(np.argmax(self.snr)) if len(self.snr) else 0

    def summary(self) -> str:
        return (f"{self.partition}: max SNR = {self.max_snr:.3g} at sample "
                f"{self.peak_sample} over {self.trace_count} traces "
                f"({self.populated_classes} classes)")


class StreamingSnr:
    """Mergeable per-sample SNR fed chunk by chunk.

    The signal is the class-count-weighted variance of the class means around
    the grand mean; the noise is the count-weighted mean of the within-class
    variances (classes with a single trace contribute no variance estimate).
    Both are exact functions of the per-class moment accumulators, so chunked
    updates and shard merges reproduce the one-pass statistic.
    """

    def __init__(self, n_classes: int, *, partition: str = "intermediate"):
        self.partition = partition
        self._classes = ClassAccumulator(n_classes)

    @property
    def count(self) -> int:
        return self._classes.count

    def update(self, matrix: np.ndarray, labels) -> "StreamingSnr":
        self._classes.update(matrix, labels)
        return self

    def merge(self, other: "StreamingSnr") -> "StreamingSnr":
        self._classes.merge(other._classes)
        return self

    def snr(self) -> np.ndarray:
        classes = self._classes
        if classes.means is None or classes.count == 0:
            raise AccumulatorError("SNR accumulator has seen no traces")
        counts = classes.counts.astype(float)
        total = counts.sum()
        grand = classes.grand_mean()
        deviations = classes.means - grand[None, :]
        signal = (counts[:, None] * deviations ** 2).sum(axis=0) / total
        # Pooled within-class variance: Σ M2_c / Σ (n_c − 1).
        freedom = np.maximum(counts - 1, 0).sum()
        if freedom == 0:
            return np.zeros_like(signal)
        noise = classes.m2s.sum(axis=0) / freedom
        return np.divide(signal, noise,
                         out=np.zeros_like(signal), where=noise > 0)

    def result(self) -> SnrResult:
        return SnrResult(snr=self.snr(),
                         class_counts=self._classes.counts.copy(),
                         partition=self.partition)


def snr_by_intermediate(traces_or_chunks, selection: SelectionFunction,
                        key_value: int, *, classes: str = "value",
                        n_classes: Optional[int] = None) -> SnrResult:
    """SNR of a trace set (or chunk stream) partitioned by an intermediate.

    ``selection`` and ``key_value`` name the partition exactly as in the
    specific t-test; ``classes`` selects raw-value or Hamming-weight classes.
    Accepts a single ``TraceSet`` or any iterable of trace-set chunks.
    """
    from .tvla import _chunk_stream  # shared chunk normalization

    if n_classes is None:
        n_classes = class_count_for(selection, classes)
    streaming = StreamingSnr(
        n_classes, partition=f"snr[{selection.name},{classes}]")
    for chunk in _chunk_stream(traces_or_chunks):
        labels = intermediate_labels(selection, chunk.plaintexts(), key_value,
                                     classes=classes)
        streaming.update(chunk.matrix(), labels)
    return streaming.result()
