"""Streaming attack states: DPA and CPA over bounded-memory chunk streams.

The in-memory attack engine (:mod:`repro.core.dpa`, :mod:`repro.core.cpa`)
computes its distinguisher from the full ``(n_traces, n_samples)`` matrix.
Both first-order statistics are functions of streaming moments only, so the
same attacks run chunk-by-chunk without ever materializing the matrix:

* difference of means — per-guess selected-set sums (the running state of
  :func:`repro.core.dpa.dom_prefix_peaks`);
* Pearson CPA — the cross-moment accumulator of
  :mod:`repro.assess.accumulators` between the hypothesis rows and the
  trace samples.

Each state exposes ``update(matrix, plaintexts)``, boundary ``peaks()`` for
messages-to-disclosure sweeps, final ``statistics()`` matching the in-memory
kernel output to floating-point reordering, and exact ``merge`` for shards.
Second-order kernels genuinely need the whole matrix (their centered-product
preprocessing centres on full-set means), so they are rejected with a clear
error instead of silently approximated.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.cpa import CpaKernel, DpaKernel
from ..core.dpa import DPAError, _stable_rank
from ..core.power_model import leakage_matrix
from ..core.selection import selection_matrix
from .accumulators import CoMomentAccumulator


class StreamingDomState:
    """Running difference-of-means state of every key guess at once.

    Maintains exactly the prefix sums of the incremental disclosure engine
    (:func:`repro.core.dpa.dom_prefix_peaks`): the per-guess selected-set
    sums, set sizes and the all-trace sum.  All quantities are plain sums, so
    merging shard states is exact.
    """

    def __init__(self, selection, guess_space: Sequence[int]):
        self.selection = selection
        self.guess_space = list(guess_space)
        self.count = 0
        self.sum1: Optional[np.ndarray] = None
        self.sum_all: Optional[np.ndarray] = None
        self.counts1 = np.zeros(len(self.guess_space))

    def _allocate(self, n_samples: int) -> None:
        self.sum1 = np.zeros((len(self.guess_space), n_samples))
        self.sum_all = np.zeros(n_samples)

    def update(self, matrix: np.ndarray,
               plaintexts: Sequence[Sequence[int]]) -> "StreamingDomState":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[0] == 0:
            return self
        if self.sum1 is None:
            self._allocate(matrix.shape[1])
        bits = selection_matrix(self.selection, [list(p) for p in plaintexts],
                                self.guess_space)
        self.sum_all += matrix.sum(axis=0)
        self.sum1 += bits.astype(float) @ matrix
        self.counts1 += bits.sum(axis=1)
        self.count += matrix.shape[0]
        return self

    def merge(self, other: "StreamingDomState") -> "StreamingDomState":
        if other.sum1 is None:
            return self
        if self.sum1 is None:
            self._allocate(other.sum1.shape[1])
        self.sum1 += other.sum1
        self.sum_all += other.sum_all
        self.counts1 += other.counts1
        self.count += other.count
        return self

    def statistics(self) -> np.ndarray:
        """The per-guess bias matrix of everything seen (equations (8)–(9))."""
        if self.sum1 is None:
            raise DPAError("streaming DPA state has seen no traces")
        counts0 = self.count - self.counts1
        valid = (self.counts1 > 0) & (counts0 > 0)
        bias = np.zeros_like(self.sum1)
        if valid.any():
            bias[valid] = ((self.sum_all - self.sum1[valid]) / counts0[valid, None]
                           - self.sum1[valid] / self.counts1[valid, None])
        return bias

    def peaks(self) -> np.ndarray:
        """Per-guess max |bias| (the disclosure-sweep boundary statistic)."""
        return np.abs(self.statistics()).max(axis=1)


class StreamingCpaState:
    """Running Pearson-CPA state of every key guess at once.

    One :class:`CoMomentAccumulator` between the leakage-model hypothesis
    rows and the trace samples; the correlation read-out matches the
    in-memory :func:`repro.core.cpa.pearson_statistics` to floating-point
    reordering, and shard states merge exactly (Chan's formula).
    """

    def __init__(self, model, guess_space: Sequence[int]):
        self.model = model
        self.guess_space = list(guess_space)
        self._moments = CoMomentAccumulator()

    @property
    def count(self) -> int:
        return self._moments.count

    def update(self, matrix: np.ndarray,
               plaintexts: Sequence[Sequence[int]]) -> "StreamingCpaState":
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape[0] == 0:
            return self
        hypothesis = leakage_matrix(self.model, [list(p) for p in plaintexts],
                                    self.guess_space)
        self._moments.update(hypothesis, matrix)
        return self

    def merge(self, other: "StreamingCpaState") -> "StreamingCpaState":
        self._moments.merge(other._moments)
        return self

    def statistics(self) -> np.ndarray:
        if self._moments.count == 0:
            raise DPAError("streaming CPA state has seen no traces")
        return self._moments.correlation()

    def peaks(self) -> np.ndarray:
        return np.abs(self.statistics()).max(axis=1)


def streaming_state(kernel, guess_space: Sequence[int]):
    """The streaming counterpart of an attack kernel.

    :class:`~repro.core.cpa.DpaKernel` and :class:`~repro.core.cpa.CpaKernel`
    map to their moment-based states; custom kernels can participate by
    exposing ``stream_state(guess_space)``.  Kernels that need the full trace
    matrix (the second-order centered-product family) are rejected.
    """
    maker = getattr(kernel, "stream_state", None)
    if maker is not None:
        return maker(guess_space)
    if isinstance(kernel, DpaKernel):
        return StreamingDomState(kernel.selection, guess_space)
    if isinstance(kernel, CpaKernel):
        return StreamingCpaState(kernel.model, guess_space)
    raise DPAError(
        f"attack kernel {getattr(kernel, 'name', kernel)!r} cannot run in "
        "streaming mode: second-order (centered-product) kernels need the "
        "full trace matrix — run the campaign without streaming, or add a "
        "stream_state(guess_space) implementation to the kernel"
    )


class DisclosureTracker:
    """Streaming messages-to-disclosure: the stability logic of
    :func:`repro.core.dpa.messages_to_disclosure` fed boundary peaks.

    ``observe(count, peaks)`` is called at every ascending prefix boundary;
    :attr:`disclosure` holds the first boundary from which the correct guess
    ranked first for ``stable_runs`` consecutive boundaries (and stays fixed
    once found, exactly like the in-memory sweep's early return).
    """

    def __init__(self, correct_index: int, *, stable_runs: int = 1):
        self.correct_index = correct_index
        self.stable_runs = stable_runs
        self._consecutive = 0
        self._first_success: Optional[int] = None
        self.disclosure: Optional[int] = None

    def observe(self, count: int, peaks: np.ndarray) -> None:
        if self.disclosure is not None:
            return
        if _stable_rank(np.asarray(peaks), self.correct_index) == 1:
            if self._consecutive == 0:
                self._first_success = count
            self._consecutive += 1
            if self._consecutive >= self.stable_runs:
                self.disclosure = self._first_success
        else:
            self._consecutive = 0
            self._first_success = None


def disclosure_boundaries(total: int, *, start: int = 16,
                          step: int = 16) -> List[int]:
    """The prefix boundaries of a disclosure sweep over ``total`` traces."""
    if start < 2:
        raise DPAError("need at least 2 traces to run a DPA attack")
    return list(range(start, total + 1, step))
