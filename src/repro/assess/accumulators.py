"""One-pass, mergeable streaming moment accumulators.

The leakage-assessment statistics (Welch t-test, SNR, Pearson correlation)
are all functions of first and second moments of the trace distribution —
per sample, per class, or jointly with a hypothesis variable.  This module
provides the three accumulator shapes they need, each with the same
contract:

* ``update(chunk, …)`` folds one ``(n_chunk, n_samples)`` block of traces in
  (numerically stable: every chunk is centred on its own mean before its
  second moments are taken — the Welford/Chan *parallel* update, never the
  cancellation-prone ``Σx² − n·x̄²``);
* ``merge(other)`` combines two accumulators exactly as if their traces had
  been seen by one (Chan et al.'s pairwise formula), so sharded campaigns
  can assess independently and merge;
* the statistics read out of a merged accumulator match a single full-matrix
  pass to floating-point reordering (≲ 1e-12 relative), which is what lets
  the streaming pipelines promise bounded memory without changing results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class AccumulatorError(Exception):
    """Raised on malformed accumulator updates or merges."""


def _as_chunk(matrix: np.ndarray) -> np.ndarray:
    chunk = np.asarray(matrix, dtype=float)
    if chunk.ndim == 1:
        chunk = chunk[None, :]
    if chunk.ndim != 2:
        raise AccumulatorError(
            f"expected an (n_traces, n_samples) chunk, got shape {chunk.shape}"
        )
    return chunk


def chan_merge(count_a, mean_a, m2_a, count_b, mean_b, m2_b):
    """Combine two (count, mean, M2) moment triples exactly.

    The pairwise update of Chan, Golub & LeVeque: valid for scalars or
    broadcastable arrays, with either side allowed to be empty.  Returns the
    combined ``(count, mean, M2)``.
    """
    total = count_a + count_b
    if np.all(total == 0):
        return total, mean_a, m2_a
    delta = mean_b - mean_a
    with np.errstate(invalid="ignore", divide="ignore"):
        weight_b = np.where(total > 0, count_b / np.maximum(total, 1), 0.0)
        cross = np.where(total > 0, count_a * weight_b, 0.0)
    mean = mean_a + delta * weight_b
    m2 = m2_a + m2_b + cross * delta ** 2
    return total, mean, m2


class MomentAccumulator:
    """Streaming per-sample count / mean / M2 over trace rows.

    ``variance`` and ``std`` follow from ``M2 / (count − ddof)``; the sample
    axis is sized lazily from the first chunk.
    """

    def __init__(self, n_samples: Optional[int] = None):
        self.count: int = 0
        self.mean: Optional[np.ndarray] = None
        self.m2: Optional[np.ndarray] = None
        if n_samples is not None:
            self._allocate(n_samples)

    def _allocate(self, n_samples: int) -> None:
        self.mean = np.zeros(n_samples)
        self.m2 = np.zeros(n_samples)

    @property
    def n_samples(self) -> Optional[int]:
        return None if self.mean is None else len(self.mean)

    def _check_width(self, width: int) -> None:
        if self.mean is None:
            self._allocate(width)
        elif width != len(self.mean):
            raise AccumulatorError(
                f"chunk has {width} samples but the accumulator tracks "
                f"{len(self.mean)}"
            )

    def update(self, matrix: np.ndarray) -> "MomentAccumulator":
        """Fold an ``(n_chunk, n_samples)`` block (or one trace row) in."""
        chunk = _as_chunk(matrix)
        if chunk.shape[0] == 0:
            return self
        self._check_width(chunk.shape[1])
        chunk_mean = chunk.mean(axis=0)
        centered = chunk - chunk_mean[None, :]
        chunk_m2 = np.einsum("ij,ij->j", centered, centered)
        self.count, self.mean, self.m2 = chan_merge(
            self.count, self.mean, self.m2,
            chunk.shape[0], chunk_mean, chunk_m2,
        )
        return self

    def merge(self, other: "MomentAccumulator") -> "MomentAccumulator":
        """Fold another accumulator in, exactly (shard reduction)."""
        if other.count == 0:
            return self
        self._check_width(len(other.mean))
        self.count, self.mean, self.m2 = chan_merge(
            self.count, self.mean, self.m2,
            other.count, other.mean, other.m2,
        )
        return self

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-sample variance (zero where fewer than ``ddof + 1`` traces)."""
        if self.mean is None:
            raise AccumulatorError("accumulator has seen no traces")
        if self.count <= ddof:
            return np.zeros_like(self.m2)
        return self.m2 / (self.count - ddof)

    def std(self, ddof: int = 1) -> np.ndarray:
        return np.sqrt(self.variance(ddof))

    def copy(self) -> "MomentAccumulator":
        duplicate = MomentAccumulator()
        duplicate.count = self.count
        duplicate.mean = None if self.mean is None else self.mean.copy()
        duplicate.m2 = None if self.m2 is None else self.m2.copy()
        return duplicate


class ClassAccumulator:
    """Per-class streaming moments: one :class:`MomentAccumulator` per label,
    vectorized over all classes.

    ``update`` takes the chunk together with one integer label per row
    (``0 … n_classes − 1``); the per-class counts, means and M2 vectors are
    maintained with the same Chan parallel update, so the SNR and specific
    t-test partitions stream chunk by chunk and merge across shards.
    """

    def __init__(self, n_classes: int, n_samples: Optional[int] = None):
        if n_classes < 2:
            raise AccumulatorError(f"need >= 2 classes, got {n_classes}")
        self.n_classes = n_classes
        self.counts = np.zeros(n_classes, dtype=np.int64)
        self.means: Optional[np.ndarray] = None
        self.m2s: Optional[np.ndarray] = None
        if n_samples is not None:
            self._allocate(n_samples)

    def _allocate(self, n_samples: int) -> None:
        self.means = np.zeros((self.n_classes, n_samples))
        self.m2s = np.zeros((self.n_classes, n_samples))

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def n_samples(self) -> Optional[int]:
        return None if self.means is None else self.means.shape[1]

    def _check_width(self, width: int) -> None:
        if self.means is None:
            self._allocate(width)
        elif width != self.means.shape[1]:
            raise AccumulatorError(
                f"chunk has {width} samples but the accumulator tracks "
                f"{self.means.shape[1]}"
            )

    def update(self, matrix: np.ndarray, labels) -> "ClassAccumulator":
        chunk = _as_chunk(matrix)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(labels) != chunk.shape[0]:
            raise AccumulatorError(
                f"got {len(labels)} labels for {chunk.shape[0]} chunk rows"
            )
        if chunk.shape[0] == 0:
            return self
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise AccumulatorError(
                f"labels must lie in 0..{self.n_classes - 1}, "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        self._check_width(chunk.shape[1])

        chunk_counts = np.bincount(labels, minlength=self.n_classes)
        sums = np.zeros_like(self.means)
        np.add.at(sums, labels, chunk)
        populated = chunk_counts > 0
        chunk_means = np.zeros_like(self.means)
        chunk_means[populated] = sums[populated] / chunk_counts[populated, None]
        centered = chunk - chunk_means[labels]
        chunk_m2 = np.zeros_like(self.m2s)
        np.add.at(chunk_m2, labels, centered ** 2)

        totals = self.counts + chunk_counts
        delta = chunk_means - self.means
        with np.errstate(invalid="ignore", divide="ignore"):
            weight = np.where(totals > 0, chunk_counts / np.maximum(totals, 1), 0.0)
            cross = self.counts * weight
        self.means = self.means + delta * weight[:, None]
        self.m2s = self.m2s + chunk_m2 + cross[:, None] * delta ** 2
        self.counts = totals
        return self

    def merge(self, other: "ClassAccumulator") -> "ClassAccumulator":
        if other.n_classes != self.n_classes:
            raise AccumulatorError(
                f"cannot merge {other.n_classes}-class into "
                f"{self.n_classes}-class accumulator"
            )
        if other.means is None:
            return self
        self._check_width(other.means.shape[1])
        totals = self.counts + other.counts
        delta = other.means - self.means
        with np.errstate(invalid="ignore", divide="ignore"):
            weight = np.where(totals > 0, other.counts / np.maximum(totals, 1), 0.0)
            cross = self.counts * weight
        self.means = self.means + delta * weight[:, None]
        self.m2s = self.m2s + other.m2s + cross[:, None] * delta ** 2
        self.counts = totals
        return self

    def variances(self, ddof: int = 1) -> np.ndarray:
        """Per-class per-sample variance (zero rows where count ≤ ddof)."""
        if self.m2s is None:
            raise AccumulatorError("accumulator has seen no traces")
        variances = np.zeros_like(self.m2s)
        enough = self.counts > ddof
        variances[enough] = self.m2s[enough] / (self.counts[enough, None] - ddof)
        return variances

    def class_moments(self, label: int) -> MomentAccumulator:
        """The moments of one class, as a standalone accumulator."""
        if self.means is None:
            raise AccumulatorError("accumulator has seen no traces")
        moments = MomentAccumulator(self.means.shape[1])
        moments.count = int(self.counts[label])
        moments.mean = self.means[label].copy()
        moments.m2 = self.m2s[label].copy()
        return moments

    def grand_mean(self) -> np.ndarray:
        """Overall per-sample mean across every class."""
        if self.means is None:
            raise AccumulatorError("accumulator has seen no traces")
        total = self.count
        if total == 0:
            return np.zeros(self.means.shape[1])
        return (self.counts[:, None] * self.means).sum(axis=0) / total


class CoMomentAccumulator:
    """Streaming cross-moments between a hypothesis matrix and the traces.

    Tracks, over all traces seen, the centered cross-product matrix
    ``C[g, j] = Σ (x_g − x̄_g)(y_j − ȳ_j)`` between ``n_vars`` hypothesis
    variables (rows of the per-chunk ``(n_vars, n_chunk)`` matrix — one key
    guess each for CPA) and ``n_samples`` trace samples, together with both
    marginal M2 vectors.  :meth:`correlation` is then the full Pearson matrix
    of a one-pass streaming CPA, and :meth:`merge` the exact shard reduction.
    """

    def __init__(self, n_vars: Optional[int] = None,
                 n_samples: Optional[int] = None):
        self.count: int = 0
        self.mean_x: Optional[np.ndarray] = None
        self.mean_y: Optional[np.ndarray] = None
        self.m2_x: Optional[np.ndarray] = None
        self.m2_y: Optional[np.ndarray] = None
        self.cross: Optional[np.ndarray] = None
        if n_vars is not None and n_samples is not None:
            self._allocate(n_vars, n_samples)

    def _allocate(self, n_vars: int, n_samples: int) -> None:
        self.mean_x = np.zeros(n_vars)
        self.mean_y = np.zeros(n_samples)
        self.m2_x = np.zeros(n_vars)
        self.m2_y = np.zeros(n_samples)
        self.cross = np.zeros((n_vars, n_samples))

    def _check_shape(self, n_vars: int, n_samples: int) -> None:
        if self.cross is None:
            self._allocate(n_vars, n_samples)
        elif self.cross.shape != (n_vars, n_samples):
            raise AccumulatorError(
                f"chunk shape ({n_vars} vars, {n_samples} samples) does not "
                f"match accumulator shape {self.cross.shape}"
            )

    def update(self, hypothesis: np.ndarray, matrix: np.ndarray
               ) -> "CoMomentAccumulator":
        """Fold one chunk: ``hypothesis`` is ``(n_vars, n_chunk)``, ``matrix``
        the matching ``(n_chunk, n_samples)`` trace block."""
        x = np.asarray(hypothesis, dtype=float)
        y = _as_chunk(matrix)
        if x.ndim != 2 or x.shape[1] != y.shape[0]:
            raise AccumulatorError(
                f"hypothesis covers {x.shape} but the chunk holds "
                f"{y.shape[0]} traces"
            )
        n = y.shape[0]
        if n == 0:
            return self
        self._check_shape(x.shape[0], y.shape[1])
        chunk_mean_x = x.mean(axis=1)
        chunk_mean_y = y.mean(axis=0)
        cx = x - chunk_mean_x[:, None]
        cy = y - chunk_mean_y[None, :]
        chunk_m2_x = np.einsum("ij,ij->i", cx, cx)
        chunk_m2_y = np.einsum("ij,ij->j", cy, cy)
        chunk_cross = cx @ cy

        total = self.count + n
        delta_x = chunk_mean_x - self.mean_x
        delta_y = chunk_mean_y - self.mean_y
        factor = self.count * n / total
        self.cross += chunk_cross + factor * np.outer(delta_x, delta_y)
        self.m2_x += chunk_m2_x + factor * delta_x ** 2
        self.m2_y += chunk_m2_y + factor * delta_y ** 2
        self.mean_x += delta_x * (n / total)
        self.mean_y += delta_y * (n / total)
        self.count = total
        return self

    def merge(self, other: "CoMomentAccumulator") -> "CoMomentAccumulator":
        if other.count == 0:
            return self
        self._check_shape(*other.cross.shape)
        total = self.count + other.count
        delta_x = other.mean_x - self.mean_x
        delta_y = other.mean_y - self.mean_y
        factor = self.count * other.count / total
        self.cross += other.cross + factor * np.outer(delta_x, delta_y)
        self.m2_x += other.m2_x + factor * delta_x ** 2
        self.m2_y += other.m2_y + factor * delta_y ** 2
        self.mean_x += delta_x * (other.count / total)
        self.mean_y += delta_y * (other.count / total)
        self.count = total
        return self

    def correlation(self) -> np.ndarray:
        """The ``(n_vars, n_samples)`` Pearson matrix of everything seen.

        Zero-variance rows or columns give 0 rather than NaN, matching
        :func:`repro.core.cpa.pearson_statistics`.
        """
        if self.cross is None:
            raise AccumulatorError("accumulator has seen no traces")
        denominator = np.sqrt(
            np.clip(self.m2_x, 0.0, None)[:, None]
            * np.clip(self.m2_y, 0.0, None)[None, :]
        )
        return np.divide(self.cross, denominator,
                         out=np.zeros_like(self.cross),
                         where=denominator > 0)
