"""Streaming leakage assessment: TVLA t-tests and SNR in bounded memory.

The certification-style rung of the evaluation ladder: before (or instead
of) mounting key-recovery attacks, an evaluator runs attack-independent
leakage detection — the TVLA fixed-vs-random Welch t-test and the per-sample
SNR — at trace counts that do not fit in RAM.  The subsystem therefore
separates *statistics* from *storage*:

* :mod:`repro.assess.accumulators` — one-pass, mergeable moment accumulators
  (Welford/Chan): per-sample, per-class, and hypothesis-cross moments;
* :mod:`repro.assess.tvla` — non-specific (fixed vs random) and specific
  (known-key intermediate) Welch t-tests with the ``|t| > 4.5`` criterion
  and max-|t|-vs-trace-count curves;
* :mod:`repro.assess.snr` — per-sample signal-to-noise ratio partitioned by
  intermediate value (raw or Hamming-weight classes);
* :mod:`repro.assess.streaming` — the existing DPA/CPA attacks re-expressed
  over the same chunk streams, so a streaming campaign reproduces the
  in-memory rows without ever materializing more than one chunk.

Chunks come from :meth:`repro.asyncaes.tracegen.AesPowerTraceGenerator.trace_chunks`
(or any iterable of :class:`~repro.core.dpa.TraceSet` blocks), and
:class:`repro.core.flow.AttackCampaign` drives everything through
``add_assessment(...)`` and ``run(streaming=True, chunk_size=...)``.
"""

from .accumulators import (
    AccumulatorError,
    ClassAccumulator,
    CoMomentAccumulator,
    MomentAccumulator,
    chan_merge,
)
from .snr import (
    SnrResult,
    StreamingSnr,
    class_count_for,
    intermediate_labels,
    snr_by_intermediate,
)
from .streaming import (
    DisclosureTracker,
    StreamingCpaState,
    StreamingDomState,
    disclosure_boundaries,
    streaming_state,
)
from .tvla import (
    TVLA_THRESHOLD,
    StreamingTTest,
    TTestResult,
    specific_labels,
    ttest_fixed_vs_random,
    ttest_specific,
    welch_t,
)

__all__ = [
    "AccumulatorError",
    "ClassAccumulator",
    "CoMomentAccumulator",
    "MomentAccumulator",
    "chan_merge",
    "SnrResult",
    "StreamingSnr",
    "class_count_for",
    "intermediate_labels",
    "snr_by_intermediate",
    "DisclosureTracker",
    "StreamingCpaState",
    "StreamingDomState",
    "disclosure_boundaries",
    "streaming_state",
    "TVLA_THRESHOLD",
    "StreamingTTest",
    "TTestResult",
    "specific_labels",
    "ttest_fixed_vs_random",
    "ttest_specific",
    "welch_t",
]
