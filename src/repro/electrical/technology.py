"""Technology parameters of the electrical substrate.

The paper's electrical validation uses the HCMOS9 0.13 µm design kit from
STMicroelectronics simulated with Eldo.  We do not have that kit, so this
module defines an *HCMOS9-like* parameter set: a 1.2 V supply, a default net
capacitance of 8 fF (the paper's ``Cd``), a per-micron routing capacitance and
the timing granularity of the synthesized current waveforms.  Absolute values
are representative rather than calibrated; every reproduced result depends
only on ratios of capacitances, which is exactly what the paper's analysis
(equation (12)) establishes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Technology:
    """Process / environment parameters shared by the electrical models.

    Attributes
    ----------
    name:
        Identifier of the parameter set.
    vdd:
        Supply voltage in volts.
    default_net_cap_ff:
        Default routing capacitance assigned to nets before extraction — the
        paper's ``Cd`` = 8 fF.
    routing_cap_ff_per_um:
        Extracted routing capacitance per micron of estimated wirelength.
    via_cap_ff:
        Fixed capacitance added per routed net (vias, pin accesses).
    time_step_s:
        Sampling period of synthesized current waveforms.
    transition_scale:
        Multiplier applied to the RC product when converting a node
        capacitance into a charge/discharge time ``Δt``.
    cell_height_um:
        Standard-cell row height used by the placement substrate.
    cell_unit_width_um:
        Width of one unit of cell area (area_um2 / cell_height rounded up).
    """

    name: str = "hcmos9-like-130nm"
    vdd: float = 1.2
    default_net_cap_ff: float = 8.0
    routing_cap_ff_per_um: float = 0.20
    via_cap_ff: float = 0.4
    time_step_s: float = 1e-12
    transition_scale: float = 1.0
    cell_height_um: float = 3.7
    cell_unit_width_um: float = 0.4

    def with_(self, **kwargs) -> "Technology":
        """Return a copy with some parameters replaced."""
        return replace(self, **kwargs)

    def charge_fc(self, cap_ff: float) -> float:
        """Charge (femtocoulombs) needed to swing ``cap_ff`` by ``vdd``."""
        return cap_ff * self.vdd

    def switching_energy_fj(self, cap_ff: float) -> float:
        """Energy (femtojoules) of one full charge/discharge cycle: ``C·Vdd²``."""
        return cap_ff * self.vdd * self.vdd

    def wire_cap_ff(self, length_um: float) -> float:
        """Routing capacitance of a wire of the given estimated length."""
        if length_um < 0:
            raise ValueError(f"wire length must be >= 0, got {length_um}")
        return self.via_cap_ff + self.routing_cap_ff_per_um * length_um


#: Default technology instance used when none is supplied.
HCMOS9_LIKE = Technology()


def scaled_technology(factor: float, base: Technology = HCMOS9_LIKE) -> Technology:
    """A technology whose capacitances are scaled by ``factor``.

    Useful for sensitivity studies: the DPA bias of equation (12) scales with
    the *difference* of capacitances, so a uniformly scaled technology must
    produce a proportionally scaled bias — a property the test-suite checks.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be > 0, got {factor}")
    return base.with_(
        default_net_cap_ff=base.default_net_cap_ff * factor,
        routing_cap_ff_per_um=base.routing_cap_ff_per_um * factor,
        via_cap_ff=base.via_cap_ff * factor,
    )
