"""Uniformly-sampled waveforms and elementary current pulses.

The electrical substrate represents supply-current traces as uniformly
sampled :class:`Waveform` objects.  Each gate transition contributes a
triangular current pulse whose *area* equals the charge ``Q = C·Vdd`` moved on
the output node and whose *width* equals the charge/discharge time ``Δt``.
Because the area is fixed by the charge, a larger capacitance produces a
wider, taller and later pulse — the three effects that together build the
DPA signature of equation (12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class WaveformError(Exception):
    """Raised on incompatible waveform operations."""


def _same_period(dt_a: float, dt_b: float, tolerance: float = 1e-6) -> bool:
    """Relative comparison of sampling periods (absolute tolerances are
    meaningless for picosecond-scale values)."""
    return abs(dt_a - dt_b) <= tolerance * max(abs(dt_a), abs(dt_b))


@dataclass
class Waveform:
    """A real-valued signal sampled at a fixed period starting at ``t0``."""

    samples: np.ndarray
    dt: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.dt <= 0:
            raise WaveformError(f"sampling period must be > 0, got {self.dt}")

    # ------------------------------------------------------------- basics
    @classmethod
    def zeros(cls, duration: float, dt: float, t0: float = 0.0) -> "Waveform":
        if dt <= 0:
            raise WaveformError(f"sampling period must be > 0, got {dt}")
        # Round before the ceiling so that an exact multiple of dt (up to
        # floating-point noise) does not gain a spurious extra sample.
        n = max(1, int(np.ceil(round(duration / dt, 9))))
        return cls(np.zeros(n), dt, t0)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        return len(self.samples) * self.dt

    @property
    def end_time(self) -> float:
        return self.t0 + self.duration

    def times(self) -> np.ndarray:
        return self.t0 + np.arange(len(self.samples)) * self.dt

    def copy(self) -> "Waveform":
        return Waveform(self.samples.copy(), self.dt, self.t0)

    # ---------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "Waveform") -> None:
        if not _same_period(self.dt, other.dt):
            raise WaveformError(
                f"incompatible sampling periods: {self.dt} vs {other.dt}"
            )

    def __add__(self, other: "Waveform") -> "Waveform":
        self._check_compatible(other)
        t0 = min(self.t0, other.t0)
        end = max(self.end_time, other.end_time)
        result = Waveform.zeros(end - t0, self.dt, t0)
        result.accumulate(self)
        result.accumulate(other)
        return result

    def __sub__(self, other: "Waveform") -> "Waveform":
        negated = other.copy()
        negated.samples = -negated.samples
        return self + negated

    def __mul__(self, scalar: float) -> "Waveform":
        result = self.copy()
        result.samples *= scalar
        return result

    __rmul__ = __mul__

    def accumulate(self, other: "Waveform") -> None:
        """Add ``other`` in place (the overlap is summed; no resizing)."""
        self._check_compatible(other)
        offset = int(round((other.t0 - self.t0) / self.dt))
        if offset < 0:
            raise WaveformError("cannot accumulate a waveform starting earlier")
        end = min(len(self.samples), offset + len(other.samples))
        if end <= offset:
            return
        self.samples[offset:end] += other.samples[: end - offset]

    def add_pulse(self, start: float, pulse: np.ndarray) -> None:
        """Add a pulse (sample array) starting at absolute time ``start``."""
        offset = int(round((start - self.t0) / self.dt))
        if offset >= len(self.samples):
            return
        if offset < 0:
            pulse = pulse[-offset:]
            offset = 0
        end = min(len(self.samples), offset + len(pulse))
        if end <= offset:
            return
        self.samples[offset:end] += pulse[: end - offset]

    # ------------------------------------------------------------- queries
    def value_at(self, time: float) -> float:
        index = int(round((time - self.t0) / self.dt))
        if index < 0 or index >= len(self.samples):
            return 0.0
        return float(self.samples[index])

    def integral(self) -> float:
        """Numerical integral (e.g. total charge of a current waveform)."""
        return float(np.sum(self.samples) * self.dt)

    def energy(self) -> float:
        """Integral of the squared waveform (used for signature magnitudes)."""
        return float(np.sum(self.samples ** 2) * self.dt)

    def peak(self) -> Tuple[float, float]:
        """``(time, value)`` of the sample with the largest absolute value."""
        if len(self.samples) == 0:
            return (self.t0, 0.0)
        index = int(np.argmax(np.abs(self.samples)))
        return (self.t0 + index * self.dt, float(self.samples[index]))

    def max_abs(self) -> float:
        if len(self.samples) == 0:
            return 0.0
        return float(np.max(np.abs(self.samples)))

    def rms(self) -> float:
        if len(self.samples) == 0:
            return 0.0
        return float(np.sqrt(np.mean(self.samples ** 2)))

    def resample(self, new_length: int) -> "Waveform":
        """Return a copy truncated or zero-padded to ``new_length`` samples."""
        if new_length <= len(self.samples):
            samples = self.samples[:new_length].copy()
        else:
            samples = np.concatenate(
                [self.samples, np.zeros(new_length - len(self.samples))]
            )
        return Waveform(samples, self.dt, self.t0)


def triangular_pulse(charge: float, width: float, dt: float) -> np.ndarray:
    """A triangular pulse of the given area (charge) and base width.

    The pulse rises linearly to its apex at ``width / 2`` and falls back to
    zero at ``width``; its integral equals ``charge``.
    """
    if width <= 0:
        raise WaveformError(f"pulse width must be > 0, got {width}")
    n = max(2, int(np.ceil(width / dt)))
    x = np.linspace(0.0, 1.0, n)
    shape = 1.0 - np.abs(2.0 * x - 1.0)
    area = np.sum(shape) * dt
    if area == 0.0:
        return np.zeros(n)
    return shape * (charge / area)


def exponential_pulse(charge: float, tau: float, dt: float, *,
                      cutoff: float = 5.0) -> np.ndarray:
    """An RC-discharge shaped pulse ``I(t) = (Q/τ)·exp(-t/τ)`` truncated at
    ``cutoff`` time constants and renormalised to the requested charge."""
    if tau <= 0:
        raise WaveformError(f"time constant must be > 0, got {tau}")
    n = max(2, int(np.ceil(cutoff * tau / dt)))
    t = np.arange(n) * dt
    shape = np.exp(-t / tau)
    area = np.sum(shape) * dt
    return shape * (charge / area)


def align_waveforms(waveforms: Sequence[Waveform]) -> List[Waveform]:
    """Pad a set of waveforms to a common origin and length."""
    if not waveforms:
        return []
    matrix, dt, t0 = stack_aligned(waveforms)
    return [Waveform(matrix[i], dt, t0) for i in range(matrix.shape[0])]


def stack_aligned(waveforms: Sequence[Waveform]) -> Tuple[np.ndarray, float, float]:
    """Align a set of waveforms in one pass into an ``(n, m)`` sample matrix.

    Returns ``(matrix, dt, t0)``; row ``i`` holds the samples of waveform
    ``i`` padded to the common origin and length.  This is the batched form of
    :func:`align_waveforms` — it writes each waveform straight into its row,
    without building intermediate padded :class:`Waveform` objects.
    """
    if not waveforms:
        raise WaveformError("cannot stack an empty set of waveforms")
    dt = waveforms[0].dt
    for w in waveforms:
        if not _same_period(w.dt, dt):
            raise WaveformError("cannot align waveforms with different sampling periods")
    t0 = min(w.t0 for w in waveforms)
    end = max(w.end_time for w in waveforms)
    length = max(1, int(np.ceil(round((end - t0) / dt, 9))))
    matrix = np.zeros((len(waveforms), length))
    for row, w in zip(matrix, waveforms):
        offset = int(round((w.t0 - t0) / dt))
        stop = min(length, offset + len(w.samples))
        if stop > offset:
            row[offset:stop] = w.samples[: stop - offset]
    return matrix, dt, t0


def average_waveform(waveforms: Sequence[Waveform]) -> Waveform:
    """Point-wise average of a set of waveforms (the A0/A1 of equation (8))."""
    if not waveforms:
        raise WaveformError("cannot average an empty set of waveforms")
    aligned = align_waveforms(waveforms)
    stack = np.vstack([w.samples for w in aligned])
    return Waveform(stack.mean(axis=0), aligned[0].dt, aligned[0].t0)


def difference_waveform(set_a: Sequence[Waveform], set_b: Sequence[Waveform]) -> Waveform:
    """``mean(set_a) − mean(set_b)`` — the DPA bias signal of equation (9)."""
    return average_waveform(list(set_a)) - average_waveform(list(set_b))
