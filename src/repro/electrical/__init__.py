"""Electrical substrate: technology, capacitances, waveforms, current synthesis.

This subpackage replaces the paper's Eldo + HCMOS9 analogue simulations with
an analytical transient model: every logic transition contributes a current
pulse whose charge and width are set by the node capacitance
``C = Cl + Cpar + Csc`` and the driver's output resistance.  The model keeps
exactly the quantities the paper's analysis depends on, so the electrical
signatures of Figs. 6 and 7 are reproduced in shape.
"""

from .capacitance import (
    apply_process_variation,
    CapacitanceBreakdown,
    all_node_capacitances,
    apply_default_routing_caps,
    node_capacitance,
    switching_charge_fc,
    switching_energy_fj,
    transition_time_s,
)
from .current_sim import (
    BlockCurrentResult,
    CurrentTrace,
    block_current,
    per_computation_currents,
    synthesize_current,
)
from .noise import (
    BackgroundActivityNoise,
    CompositeNoise,
    GaussianNoise,
    NoNoise,
    NoiseModel,
    apply_noise_matrix,
    apply_noise_trace,
    derive_rng,
)
from .technology import HCMOS9_LIKE, Technology, scaled_technology
from .waveform import (
    Waveform,
    WaveformError,
    align_waveforms,
    average_waveform,
    difference_waveform,
    exponential_pulse,
    stack_aligned,
    triangular_pulse,
)

__all__ = [
    "CapacitanceBreakdown",
    "all_node_capacitances",
    "apply_default_routing_caps",
    "apply_process_variation",
    "node_capacitance",
    "switching_charge_fc",
    "switching_energy_fj",
    "transition_time_s",
    "BlockCurrentResult",
    "CurrentTrace",
    "block_current",
    "per_computation_currents",
    "synthesize_current",
    "BackgroundActivityNoise",
    "CompositeNoise",
    "GaussianNoise",
    "NoNoise",
    "NoiseModel",
    "apply_noise_matrix",
    "apply_noise_trace",
    "derive_rng",
    "HCMOS9_LIKE",
    "Technology",
    "scaled_technology",
    "Waveform",
    "WaveformError",
    "align_waveforms",
    "average_waveform",
    "difference_waveform",
    "exponential_pulse",
    "stack_aligned",
    "triangular_pulse",
]
