"""Synthesis of transient supply-current traces from logic simulations.

This module is the reproduction's substitute for the paper's Eldo electrical
simulations.  Every recorded net transition contributes a triangular current
pulse whose area is the charge ``Q = C·Vdd`` of the switched node and whose
width is the charge/discharge time ``Δt = R_drive · C``.  Because the logic
simulator already delays downstream gates by the same RC products, a net with
a larger capacitance produces a wider, later pulse *and* shifts every
subsequent level — the two visible effects in Fig. 7 of the paper.

The result is a :class:`CurrentTrace` carrying the total waveform, the
per-logical-level decomposition of equation (5) and the per-net contributions
used by the formal signature analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


from ..circuits.builder import QDIBlock
from ..circuits.netlist import Netlist
from ..circuits.signals import TraceRecord
from ..circuits.simulator import DelayModel
from ..circuits.validate import ComputationResult, simulate_two_operand_block
from .capacitance import node_capacitance, transition_time_s
from .noise import NoiseModel
from .technology import HCMOS9_LIKE, Technology
from .waveform import Waveform, triangular_pulse


@dataclass
class CurrentTrace:
    """A synthesized transient current trace and its decompositions."""

    total: Waveform
    per_level: Dict[int, Waveform] = field(default_factory=dict)
    per_net: Dict[str, Waveform] = field(default_factory=dict)
    transitions_used: int = 0

    @property
    def dt(self) -> float:
        return self.total.dt

    def level(self, index: int) -> Waveform:
        """Current contributed by the gates of logical level ``index``.

        This is the ``Σ_j I_ij(t)`` inner sum of equation (5).
        """
        if index in self.per_level:
            return self.per_level[index]
        return Waveform.zeros(self.total.duration, self.total.dt, self.total.t0)

    def charge(self) -> float:
        """Total charge (coulombs) delivered during the trace."""
        return self.total.integral()


def _default_duration(trace: TraceRecord, margin: float) -> float:
    return max(trace.end_time + margin, margin)


def synthesize_current(netlist: Netlist, trace: TraceRecord, *,
                       technology: Technology = HCMOS9_LIKE,
                       dt: Optional[float] = None,
                       duration: Optional[float] = None,
                       t0: float = 0.0,
                       include_nets: Optional[Iterable[str]] = None,
                       noise: Optional[NoiseModel] = None,
                       keep_per_net: bool = False) -> CurrentTrace:
    """Convert a logic-simulation trace into a supply-current waveform.

    Parameters
    ----------
    netlist:
        The netlist the trace was produced from; provides node capacitances.
    trace:
        Recorded transitions.
    technology:
        Electrical parameters (supply voltage, sampling period).
    dt, duration, t0:
        Sampling period, length and origin of the synthesized waveform.
    include_nets:
        Restrict the synthesis to these nets (default: every net driven by a
        gate of the netlist — environment-driven stimuli do not draw current
        from the block's supply).
    noise:
        Optional additive noise model applied to the total waveform.
    keep_per_net:
        Also keep one waveform per contributing net (memory-heavier; used by
        the formal signature analysis).
    """
    step = dt if dt is not None else technology.time_step_s
    length = duration if duration is not None else _default_duration(trace, 200 * step)
    total = Waveform.zeros(length - t0, step, t0)
    per_level: Dict[int, Waveform] = {}
    per_net: Dict[str, Waveform] = {}

    allowed: Optional[Set[str]]
    if include_nets is not None:
        allowed = set(include_nets)
    else:
        allowed = {net.name for net in netlist.nets() if net.driver is not None}

    used = 0
    for transition in trace.transitions:
        if transition.net not in allowed:
            continue
        breakdown = node_capacitance(netlist, transition.net)
        charge = breakdown.total_farad * technology.vdd
        width = max(transition_time_s(netlist, transition.net, technology), 2 * step)
        pulse = triangular_pulse(charge, width, step)
        total.add_pulse(transition.time, pulse)
        used += 1

        level = transition.level
        if level not in per_level:
            per_level[level] = Waveform.zeros(length - t0, step, t0)
        per_level[level].add_pulse(transition.time, pulse)

        if keep_per_net:
            if transition.net not in per_net:
                per_net[transition.net] = Waveform.zeros(length - t0, step, t0)
            per_net[transition.net].add_pulse(transition.time, pulse)

    if noise is not None:
        total = noise.apply(total)

    return CurrentTrace(total=total, per_level=per_level, per_net=per_net,
                        transitions_used=used)


@dataclass
class BlockCurrentResult:
    """Current trace of a single two-operand block computation sequence."""

    current: CurrentTrace
    computation: ComputationResult
    phase_windows: List[Tuple[float, float]] = field(default_factory=list)

    def window_waveforms(self) -> List[Waveform]:
        """One waveform per computation (evaluation + return-to-zero)."""
        result = []
        for start, stop in self.phase_windows:
            window = Waveform.zeros(stop - start, self.current.dt, start)
            window.accumulate(self.current.total)
            result.append(window)
        return result


def block_current(block: QDIBlock, operand_pairs: Sequence[Tuple[int, int]], *,
                  technology: Technology = HCMOS9_LIKE,
                  delay_model: Optional[DelayModel] = None,
                  noise: Optional[NoiseModel] = None,
                  keep_per_net: bool = False) -> BlockCurrentResult:
    """Simulate a two-operand QDI block and synthesize its current trace.

    The returned phase windows delimit each complete handshake (evaluation
    plus return-to-zero), using the falling edges of the block's completion
    signal as separators — each window is one "computation" in the sense of
    the DPA trace collection of Section IV.
    """
    computation = simulate_two_operand_block(block, operand_pairs,
                                             delay_model=delay_model)
    block_nets = set(block.internal_nets())
    current = synthesize_current(
        block.netlist, computation.trace, technology=technology,
        include_nets=block_nets, noise=noise, keep_per_net=keep_per_net,
    )
    boundaries = [t.time for t in computation.trace.transitions
                  if t.net == block.ack_out and t.is_falling]
    windows: List[Tuple[float, float]] = []
    previous = 0.0
    margin = 50 * current.dt
    for boundary in boundaries:
        windows.append((previous, boundary + margin))
        previous = boundary
    return BlockCurrentResult(current=current, computation=computation,
                              phase_windows=windows)


def per_computation_currents(block: QDIBlock,
                             operand_pairs: Sequence[Tuple[int, int]], *,
                             technology: Technology = HCMOS9_LIKE,
                             delay_model: Optional[DelayModel] = None,
                             noise: Optional[NoiseModel] = None,
                             align: bool = True) -> List[Waveform]:
    """One current waveform per operand pair, each simulated independently.

    Simulating each computation from the reset state gives the cleanly
    aligned single-computation traces used by the Fig. 6 / Fig. 7 experiments
    and by the DPA set averaging; ``align`` rebases every waveform to t=0.
    """
    waveforms: List[Waveform] = []
    for pair in operand_pairs:
        result = block_current(block, [pair], technology=technology,
                               delay_model=delay_model, noise=noise)
        waveform = result.current.total
        if align:
            waveform = Waveform(waveform.samples.copy(), waveform.dt, 0.0)
        waveforms.append(waveform)
    return waveforms
