"""Noise models for synthesized current traces.

The paper's block current model includes a dynamic noise term ``P_dn(t)``
(equation (5)) and the DPA averages include a noise signal ``I_n(t)``
(equations (10)–(11)).  The reproduction models it as additive Gaussian noise
plus an optional uncorrelated activity term representing other blocks of the
chip switching concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .waveform import Waveform


class NoiseModel:
    """Interface of additive noise sources."""

    def apply(self, waveform: Waveform) -> Waveform:  # pragma: no cover - interface
        raise NotImplementedError

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0) -> np.ndarray:
        """Apply the noise to a whole ``(n_traces, n_samples)`` matrix at once.

        The base implementation falls back to the per-trace :meth:`apply` so
        any custom model keeps working with the batched trace engine —
        ``dt``/``t0`` carry the traces' real time base to models whose noise
        depends on it, and each row is copied so in-place ``apply``
        implementations cannot corrupt the caller's matrix.  The built-in
        models override this to sample their randomness in one draw (they are
        time-base independent, so they ignore ``dt``/``t0``).
        """
        rows = [self.apply(Waveform(row.copy(), dt, t0)).samples for row in matrix]
        return np.vstack(rows) if rows else matrix.copy()


@dataclass
class NoNoise(NoiseModel):
    """The noiseless case used by the electrical validations of Section V
    ("the electrical simulation offers the possibility to analyze without
    disturbing signal (noise) the gate's electrical behaviour")."""

    def apply(self, waveform: Waveform) -> Waveform:
        return waveform.copy()

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0) -> np.ndarray:
        return matrix.copy()


@dataclass
class GaussianNoise(NoiseModel):
    """White Gaussian measurement noise of fixed standard deviation.

    Parameters
    ----------
    sigma:
        Standard deviation, in the same unit as the waveform samples
        (amperes for current traces).
    seed:
        Seed of the dedicated random generator, so experiments stay
        reproducible.
    """

    sigma: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"noise sigma must be >= 0, got {self.sigma}")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, waveform: Waveform) -> Waveform:
        noisy = waveform.copy()
        if self.sigma > 0:
            noisy.samples = noisy.samples + self._rng.normal(
                0.0, self.sigma, size=len(noisy.samples)
            )
        return noisy

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0) -> np.ndarray:
        if self.sigma == 0:
            return matrix.copy()
        return matrix + self._rng.normal(0.0, self.sigma, size=matrix.shape)


@dataclass
class BackgroundActivityNoise(NoiseModel):
    """Uncorrelated switching activity of the rest of the chip.

    Modelled as a train of random current pulses of random amplitude; the
    pulse rate and amplitude control how much the attacker's averaging has to
    work to reveal the bias.
    """

    pulse_rate_per_sample: float
    amplitude: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pulse_rate_per_sample < 0:
            raise ValueError("pulse rate must be >= 0")
        if self.amplitude < 0:
            raise ValueError("amplitude must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, waveform: Waveform) -> Waveform:
        noisy = waveform.copy()
        if self.pulse_rate_per_sample == 0 or self.amplitude == 0:
            return noisy
        n = len(noisy.samples)
        pulse_count = self._rng.poisson(self.pulse_rate_per_sample * n)
        if pulse_count == 0:
            return noisy
        positions = self._rng.integers(0, n, size=pulse_count)
        amplitudes = self._rng.uniform(0.0, self.amplitude, size=pulse_count)
        np.add.at(noisy.samples, positions, amplitudes)
        return noisy

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0) -> np.ndarray:
        noisy = matrix.copy()
        if self.pulse_rate_per_sample == 0 or self.amplitude == 0:
            return noisy
        total = noisy.size
        pulse_count = self._rng.poisson(self.pulse_rate_per_sample * total)
        if pulse_count == 0:
            return noisy
        positions = self._rng.integers(0, total, size=pulse_count)
        amplitudes = self._rng.uniform(0.0, self.amplitude, size=pulse_count)
        flat = noisy.reshape(-1)
        np.add.at(flat, positions, amplitudes)
        return noisy


@dataclass
class CompositeNoise(NoiseModel):
    """Apply several noise models in sequence."""

    models: tuple

    def apply(self, waveform: Waveform) -> Waveform:
        result = waveform
        for model in self.models:
            result = model.apply(result)
        return result

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0) -> np.ndarray:
        result = matrix
        for model in self.models:
            result = model.apply_matrix(result, dt, t0)
        return result
