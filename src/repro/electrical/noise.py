"""Noise models for synthesized current traces.

The paper's block current model includes a dynamic noise term ``P_dn(t)``
(equation (5)) and the DPA averages include a noise signal ``I_n(t)``
(equations (10)–(11)).  The reproduction models it as additive Gaussian noise
plus an optional uncorrelated activity term representing other blocks of the
chip switching concurrently.

Reproducibility contract
------------------------
The noise of trace ``i`` is a pure function of ``(seed, i)``: every built-in
model derives a dedicated generator per trace index through
:func:`derive_rng` instead of consuming one shared stream.  Consequences the
streaming/sharded pipelines rely on:

* applying noise to a full ``(n, m)`` matrix equals applying it chunk by
  chunk with the matching ``start_index`` offsets — chunk size never changes
  the samples;
* two scenarios (or shards) that build their models from the same seed get
  the same noise regardless of the order in which they run;
* the per-trace :meth:`NoiseModel.apply` keeps an internal call counter, so
  trace-by-trace application still matches the matrix path exactly.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .waveform import Waveform


def derive_rng(seed: Optional[int], index: int) -> np.random.Generator:
    """A dedicated generator for noise draw ``index`` of stream ``seed``.

    The derivation goes through :class:`numpy.random.SeedSequence` with the
    index as spawn key, so the streams of different indices are statistically
    independent and the mapping ``(seed, index) → samples`` never depends on
    what was drawn before.  ``seed=None`` keeps the legacy non-reproducible
    behaviour (fresh OS entropy per draw).
    """
    if seed is None:
        return np.random.default_rng()
    if index < 0:
        raise ValueError(f"noise draw index must be >= 0, got {index}")
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def apply_noise_matrix(noise: "NoiseModel", matrix: np.ndarray, dt: float,
                       t0: float = 0.0, start_index: int = 0) -> np.ndarray:
    """Apply a noise model to a matrix whose first row is trace ``start_index``.

    Thin dispatcher used by the chunked trace pipelines: models that take the
    ``start_index`` keyword (all built-ins) receive it, while custom models
    with the historical ``apply_matrix(matrix, dt, t0)`` signature keep
    working — their noise is then chunk-local, which only costs them the
    chunking-invariance guarantee, not correctness.
    """
    parameters = inspect.signature(noise.apply_matrix).parameters
    if "start_index" in parameters:
        return noise.apply_matrix(matrix, dt, t0, start_index=start_index)
    return noise.apply_matrix(matrix, dt, t0)


def apply_noise_trace(noise: "NoiseModel", waveform: Waveform,
                      index: int) -> Waveform:
    """Apply a noise model to the single trace of stream index ``index``.

    Counterpart of :func:`apply_noise_matrix` for per-trace pipelines: models
    taking the ``index`` keyword are pinned to their place in the stream;
    legacy models fall back to their internal ordering.
    """
    parameters = inspect.signature(noise.apply).parameters
    if "index" in parameters:
        return noise.apply(waveform, index=index)
    return noise.apply(waveform)


class NoiseModel:
    """Interface of additive noise sources."""

    def apply(self, waveform: Waveform) -> Waveform:  # pragma: no cover - interface
        raise NotImplementedError

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        """Apply the noise to a whole ``(n_traces, n_samples)`` matrix at once.

        ``start_index`` is the stream index of the first row, so chunked
        pipelines can hand each block its place in the global trace order.
        The base implementation falls back to the per-trace :meth:`apply` so
        any custom model keeps working with the batched trace engine —
        ``dt``/``t0`` carry the traces' real time base to models whose noise
        depends on it, and each row is copied so in-place ``apply``
        implementations cannot corrupt the caller's matrix.  The built-in
        models override this with an index-derived draw per row (they are
        time-base independent, so they ignore ``dt``/``t0``).
        """
        rows = [self.apply(Waveform(row.copy(), dt, t0)).samples for row in matrix]
        return np.vstack(rows) if rows else matrix.copy()


@dataclass
class NoNoise(NoiseModel):
    """The noiseless case used by the electrical validations of Section V
    ("the electrical simulation offers the possibility to analyze without
    disturbing signal (noise) the gate's electrical behaviour")."""

    def apply(self, waveform: Waveform) -> Waveform:
        return waveform.copy()

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        return matrix.copy()


class _IndexedNoise(NoiseModel):
    """Shared machinery of the built-in per-index-derived models."""

    seed: Optional[int]

    def _next_index(self, index: Optional[int]) -> int:
        """Resolve a per-call index: explicit, or the internal counter."""
        if index is not None:
            return index
        counter = getattr(self, "_counter", 0)
        object.__setattr__(self, "_counter", counter + 1)
        return counter

    def _row_samples(self, rng: np.random.Generator, length: int) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - subclass hook

    def apply(self, waveform: Waveform, *, index: Optional[int] = None) -> Waveform:
        """Noise one trace; ``index`` pins its place in the stream (defaults
        to an internal counter, so sequential calls walk indices 0, 1, …)."""
        noisy = waveform.copy()
        rng = derive_rng(self.seed, self._next_index(index))
        noisy.samples = noisy.samples + self._row_samples(rng, len(noisy.samples))
        return noisy

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        noisy = np.array(matrix, dtype=float, copy=True)
        for offset in range(noisy.shape[0]):
            rng = derive_rng(self.seed, start_index + offset)
            noisy[offset] += self._row_samples(rng, noisy.shape[1])
        return noisy


@dataclass
class GaussianNoise(_IndexedNoise):
    """White Gaussian measurement noise of fixed standard deviation.

    Parameters
    ----------
    sigma:
        Standard deviation, in the same unit as the waveform samples
        (amperes for current traces).
    seed:
        Seed of the per-trace derived generators (see :func:`derive_rng`),
        so experiments stay reproducible under any chunking or shard order.
    """

    sigma: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"noise sigma must be >= 0, got {self.sigma}")

    def _row_samples(self, rng: np.random.Generator, length: int) -> np.ndarray:
        return rng.normal(0.0, self.sigma, size=length)

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        if self.sigma == 0:
            return matrix.copy()
        return super().apply_matrix(matrix, dt, t0, start_index)


@dataclass
class BackgroundActivityNoise(_IndexedNoise):
    """Uncorrelated switching activity of the rest of the chip.

    Modelled as a train of random current pulses of random amplitude; the
    pulse rate and amplitude control how much the attacker's averaging has to
    work to reveal the bias.
    """

    pulse_rate_per_sample: float
    amplitude: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pulse_rate_per_sample < 0:
            raise ValueError("pulse rate must be >= 0")
        if self.amplitude < 0:
            raise ValueError("amplitude must be >= 0")

    def _row_samples(self, rng: np.random.Generator, length: int) -> np.ndarray:
        samples = np.zeros(length)
        if self.pulse_rate_per_sample == 0 or self.amplitude == 0:
            return samples
        pulse_count = rng.poisson(self.pulse_rate_per_sample * length)
        if pulse_count == 0:
            return samples
        positions = rng.integers(0, length, size=pulse_count)
        amplitudes = rng.uniform(0.0, self.amplitude, size=pulse_count)
        np.add.at(samples, positions, amplitudes)
        return samples

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        if self.pulse_rate_per_sample == 0 or self.amplitude == 0:
            return matrix.copy()
        return super().apply_matrix(matrix, dt, t0, start_index)


@dataclass
class CompositeNoise(NoiseModel):
    """Apply several noise models in sequence."""

    models: tuple

    def apply(self, waveform: Waveform, *, index: Optional[int] = None) -> Waveform:
        result = waveform
        for model in self.models:
            if index is not None and isinstance(model, _IndexedNoise):
                result = model.apply(result, index=index)
            else:
                result = model.apply(result)
        return result

    def apply_matrix(self, matrix: np.ndarray, dt: float = 1.0,
                     t0: float = 0.0, start_index: int = 0) -> np.ndarray:
        result = matrix
        for model in self.models:
            result = apply_noise_matrix(model, result, dt, t0, start_index)
        return result
