"""Node-capacitance decomposition ``C = Cl + Cpar + Csc`` (Section III).

The paper decomposes the capacitance charged or discharged at a gate output
into the load capacitance ``Cl`` (fan-out gate capacitance plus routing
capacitance), the parasitic capacitance ``Cpar`` of the driving gate and an
equivalent short-circuit capacitance ``Csc`` lumping the crowbar current.
The DPA-relevant quantity is the *difference* of the ``Cl`` values of the two
rails of a channel, because ``Cpar`` and ``Csc`` are properties of identical
driving cells and cancel out between balanced paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..circuits.netlist import Netlist
from .technology import HCMOS9_LIKE, Technology


@dataclass(frozen=True)
class CapacitanceBreakdown:
    """Decomposition of the capacitance of one net (all values in fF)."""

    net: str
    routing_ff: float
    fanout_ff: float
    parasitic_ff: float
    short_circuit_ff: float

    @property
    def load_ff(self) -> float:
        """``Cl`` — routing plus fan-out gate capacitance."""
        return self.routing_ff + self.fanout_ff

    @property
    def total_ff(self) -> float:
        """``C = Cl + Cpar + Csc``."""
        return self.load_ff + self.parasitic_ff + self.short_circuit_ff

    @property
    def total_farad(self) -> float:
        return self.total_ff * 1e-15


def node_capacitance(netlist: Netlist, net_name: str) -> CapacitanceBreakdown:
    """Compute the capacitance breakdown of one net of a netlist."""
    net = netlist.net(net_name)
    driver = netlist.driver_cell(net_name)
    return CapacitanceBreakdown(
        net=net_name,
        routing_ff=net.routing_cap_ff,
        fanout_ff=netlist.pin_cap_ff(net_name),
        parasitic_ff=driver.parasitic_cap_ff if driver is not None else 0.0,
        short_circuit_ff=driver.short_circuit_cap_ff if driver is not None else 0.0,
    )


def all_node_capacitances(netlist: Netlist,
                          nets: Optional[Iterable[str]] = None) -> Dict[str, CapacitanceBreakdown]:
    """Breakdown for every net (or the requested subset) of a netlist."""
    names = list(nets) if nets is not None else netlist.net_names()
    return {name: node_capacitance(netlist, name) for name in names}


def switching_charge_fc(netlist: Netlist, net_name: str,
                        technology: Technology = HCMOS9_LIKE) -> float:
    """Charge (fC) moved when the net swings by the full supply voltage."""
    return node_capacitance(netlist, net_name).total_ff * technology.vdd


def switching_energy_fj(netlist: Netlist, net_name: str,
                        technology: Technology = HCMOS9_LIKE) -> float:
    """Energy (fJ) of one full charge/discharge of the net."""
    return node_capacitance(netlist, net_name).total_ff * technology.vdd ** 2


def transition_time_s(netlist: Netlist, net_name: str,
                      technology: Technology = HCMOS9_LIKE) -> float:
    """Charge/discharge time ``Δt`` of a net.

    ``Δt`` is the RC product of the driving cell's output resistance and the
    total node capacitance, scaled by the technology's ``transition_scale``.
    This is the ``Δt`` that appears in the denominator of equation (12): a
    larger capacitance both widens and delays the current pulse.
    """
    breakdown = node_capacitance(netlist, net_name)
    driver = netlist.driver_cell(net_name)
    resistance = driver.drive_ohm if driver is not None else 5000.0
    return technology.transition_scale * resistance * breakdown.total_farad


def apply_default_routing_caps(netlist: Netlist,
                               technology: Technology = HCMOS9_LIKE,
                               *, only_driven: bool = True) -> None:
    """Assign the technology's default routing capacitance to every net.

    This models the pre-layout state of the design, before extraction
    replaces the defaults with values derived from the actual routing.
    """
    for net in netlist.nets():
        if only_driven and net.driver is None:
            continue
        net.routing_cap_ff = technology.default_net_cap_ff
    netlist.touch_caps()


def apply_process_variation(netlist: Netlist, *, sigma_ff: float = 0.1,
                            seed: Optional[int] = None,
                            only_driven: bool = True) -> None:
    """Perturb every net's routing capacitance with Gaussian mismatch.

    Even with identical drawn layout, the two rails of a channel differ by the
    intra-die variation of their parasitics; this is the origin of the "few
    peaks due to internal gate capacitance" visible in Fig. 6 of the paper
    when all load capacitances are nominally equal.  The perturbation is
    clipped so capacitances stay non-negative.
    """
    import numpy as np

    if sigma_ff < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma_ff}")
    rng = np.random.default_rng(seed)
    for net in netlist.nets():
        if only_driven and net.driver is None:
            continue
        perturbed = net.routing_cap_ff + float(rng.normal(0.0, sigma_ff))
        net.routing_cap_ff = max(0.0, perturbed)
    netlist.touch_caps()
