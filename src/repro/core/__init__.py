"""The paper's contribution: formal model, DPA formalisation, criterion, flow.

* :mod:`repro.core.power_model` — equations (1)–(6): dynamic power and the
  block current profile derived from the annotated graph;
* :mod:`repro.core.signature`  — equations (10)–(12): the electrical
  signature of symmetric data paths and its capacitance decomposition;
* :mod:`repro.core.dpa`        — equations (7)–(9): the DPA attack on trace
  sets (partitioning, set averages, bias signal, key ranking);
* :mod:`repro.core.selection`  — the D functions (AES AddRoundKey, DES S-box);
* :mod:`repro.core.criterion`  — the channel dissymmetry criterion of
  Section VI and Table-2 style reports;
* :mod:`repro.core.flow`       — the secure hierarchical design flow;
* :mod:`repro.core.metrics`    — peaks, SNR, key-recovery curves, area
  overhead.
"""

from .criterion import (
    ChannelCriterion,
    CriterionError,
    CriterionReport,
    channel_dissymmetry,
    compare_reports,
    evaluate_capacitance_map,
    evaluate_channel,
    evaluate_netlist_channels,
)
from .dpa import (
    DPAError,
    DPAResult,
    GuessResult,
    PowerTrace,
    TraceSet,
    dpa_attack,
    dpa_attack_reference,
    dpa_bias,
    messages_to_disclosure,
    partition_by_values,
    partition_traces,
    selection_bits,
)
from .flow import (
    AttackCampaign,
    CampaignDesign,
    CampaignResult,
    CampaignRow,
    CampaignSelection,
    FlowComparison,
    FlowConfig,
    FlowIteration,
    FlowResult,
    compare_flat_vs_hierarchical,
    run_secure_flow,
)
from .metrics import (
    AreaReport,
    KeyRecoveryCurve,
    KeyRecoveryPoint,
    Peak,
    area_overhead,
    find_peaks,
    peak_to_rms_ratio,
    signal_to_noise_ratio,
)
from .power_model import (
    FormalCurrentModel,
    GateCurrentTerm,
    PathCurrentModel,
    block_dynamic_power,
    block_power_from_netlist,
    gate_dynamic_power,
    qdi_gate_dynamic_power,
    xor_current_decomposition,
)
from .selection import (
    AesAddRoundKeySelection,
    AesSboxSelection,
    DesSboxSelection,
    HammingWeightSelection,
    SelectionFunction,
    list_standard_selections,
    selection_matrix,
)
from .signature import (
    SignatureReport,
    SignatureTerm,
    compare_formal_and_simulated,
    formal_signature,
    set_average,
    signature_from_traces,
    signature_peak_count,
    signature_terms,
)

__all__ = [
    "ChannelCriterion",
    "CriterionError",
    "CriterionReport",
    "channel_dissymmetry",
    "compare_reports",
    "evaluate_capacitance_map",
    "evaluate_channel",
    "evaluate_netlist_channels",
    "DPAError",
    "DPAResult",
    "GuessResult",
    "PowerTrace",
    "TraceSet",
    "dpa_attack",
    "dpa_attack_reference",
    "dpa_bias",
    "messages_to_disclosure",
    "partition_by_values",
    "partition_traces",
    "selection_bits",
    "AttackCampaign",
    "CampaignDesign",
    "CampaignResult",
    "CampaignRow",
    "CampaignSelection",
    "FlowComparison",
    "FlowConfig",
    "FlowIteration",
    "FlowResult",
    "compare_flat_vs_hierarchical",
    "run_secure_flow",
    "AreaReport",
    "KeyRecoveryCurve",
    "KeyRecoveryPoint",
    "Peak",
    "area_overhead",
    "find_peaks",
    "peak_to_rms_ratio",
    "signal_to_noise_ratio",
    "FormalCurrentModel",
    "GateCurrentTerm",
    "PathCurrentModel",
    "block_dynamic_power",
    "block_power_from_netlist",
    "gate_dynamic_power",
    "qdi_gate_dynamic_power",
    "xor_current_decomposition",
    "AesAddRoundKeySelection",
    "AesSboxSelection",
    "DesSboxSelection",
    "HammingWeightSelection",
    "SelectionFunction",
    "list_standard_selections",
    "selection_matrix",
    "SignatureReport",
    "SignatureTerm",
    "compare_formal_and_simulated",
    "formal_signature",
    "set_average",
    "signature_from_traces",
    "signature_peak_count",
    "signature_terms",
]
