"""Metrics for DPA resistance and design-flow cost.

Gathers the quantities used throughout the evaluation:

* peak detection and peak-to-noise ratios on bias signals (how visible the
  leak of equation (12) is);
* key-ranking metrics and messages-to-disclosure for end-to-end attacks;
* area overhead of the hierarchical flow (the paper reports ≈ 20 % for the
  constrained AES floorplan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..electrical.waveform import Waveform


@dataclass(frozen=True)
class Peak:
    """One detected peak of a bias/signature waveform."""

    time: float
    value: float

    @property
    def magnitude(self) -> float:
        return abs(self.value)


def find_peaks(waveform: Waveform, *, threshold_ratio: float = 0.5,
               min_separation_s: Optional[float] = None) -> List[Peak]:
    """Locate the local maxima of ``|waveform|`` above a relative threshold.

    Contiguous samples above the threshold are merged into a single peak
    located at the largest sample; peaks closer than ``min_separation_s`` are
    merged as well.
    """
    samples = np.abs(waveform.samples)
    if len(samples) == 0:
        return []
    maximum = samples.max()
    if maximum == 0.0:
        return []
    threshold = threshold_ratio * maximum
    separation = min_separation_s if min_separation_s is not None else 10 * waveform.dt
    gap = max(1, int(round(separation / waveform.dt)))

    peaks: List[Peak] = []
    index = 0
    n = len(samples)
    while index < n:
        if samples[index] >= threshold:
            start = index
            while index < n and samples[index] >= threshold:
                index += 1
            segment = samples[start:index]
            local = start + int(np.argmax(segment))
            peak = Peak(time=waveform.t0 + local * waveform.dt,
                        value=float(waveform.samples[local]))
            if peaks and (peak.time - peaks[-1].time) < gap * waveform.dt:
                if peak.magnitude > peaks[-1].magnitude:
                    peaks[-1] = peak
            else:
                peaks.append(peak)
        else:
            index += 1
    return peaks


def peak_to_rms_ratio(waveform: Waveform) -> float:
    """Largest absolute sample divided by the waveform RMS.

    A flat (noise-like) bias has a ratio close to 1–3; a bias with localised
    DPA peaks has a much larger ratio.
    """
    rms = waveform.rms()
    if rms == 0.0:
        return 0.0
    return waveform.max_abs() / rms


def signal_to_noise_ratio(signal: Waveform, noise_sigma: float) -> float:
    """Peak of the signal over the noise standard deviation."""
    if noise_sigma <= 0:
        return float("inf") if signal.max_abs() > 0 else 0.0
    return signal.max_abs() / noise_sigma


@dataclass
class AreaReport:
    """Area accounting of one placed design."""

    design: str
    cell_area_um2: float
    die_area_um2: float

    @property
    def utilization(self) -> float:
        if self.die_area_um2 == 0:
            return 0.0
        return self.cell_area_um2 / self.die_area_um2


def area_overhead(reference: AreaReport, candidate: AreaReport) -> float:
    """Relative die-area overhead of ``candidate`` with respect to ``reference``.

    The paper reports that the hierarchical AES (AES_v1) is about 20 % larger
    than the flat reference (AES_v2).
    """
    if reference.die_area_um2 == 0:
        raise ValueError("reference die area is zero")
    return (candidate.die_area_um2 - reference.die_area_um2) / reference.die_area_um2


@dataclass
class KeyRecoveryPoint:
    """One point of a messages-to-disclosure sweep."""

    trace_count: int
    rank_of_correct: int
    best_guess: int
    correct_peak: float
    best_wrong_peak: float

    @property
    def disclosed(self) -> bool:
        return self.rank_of_correct == 1


@dataclass
class KeyRecoveryCurve:
    """Evolution of the key rank with the number of traces."""

    selection_name: str
    correct_guess: int
    points: List[KeyRecoveryPoint] = field(default_factory=list)

    def messages_to_disclosure(self) -> Optional[int]:
        """First trace count from which the key stays ranked first."""
        disclosure: Optional[int] = None
        for point in self.points:
            if point.disclosed:
                if disclosure is None:
                    disclosure = point.trace_count
            else:
                disclosure = None
        return disclosure

    def final_rank(self) -> Optional[int]:
        if not self.points:
            return None
        return self.points[-1].rank_of_correct

    def as_table(self) -> str:
        lines = [f"selection {self.selection_name}, correct key {self.correct_guess:#04x}",
                 f"{'traces':>8s} {'rank':>6s} {'best guess':>12s} "
                 f"{'correct peak':>14s} {'best wrong':>12s}"]
        for point in self.points:
            lines.append(
                f"{point.trace_count:>8d} {point.rank_of_correct:>6d} "
                f"{point.best_guess:>#12x} {point.correct_peak:>14.3e} "
                f"{point.best_wrong_peak:>12.3e}"
            )
        return "\n".join(lines)
