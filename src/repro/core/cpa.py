"""Correlation power analysis and higher-order variants, as attack kernels.

The DPA of Section IV (:mod:`repro.core.dpa`) ranks key guesses by the raw
difference of set means.  A real evaluator's next rungs are:

* **CPA** (Brier-style): predict the *power* of an intermediate with a
  leakage model (:mod:`repro.core.power_model`) and rank guesses by the
  Pearson correlation between prediction and measured samples.  The
  normalization by the per-sample trace variance suppresses amplitude-driven
  ghost peaks, so CPA typically discloses a key byte in a fraction of the
  traces single-bit DPA needs.
* **Second-order DPA/CPA**: combine pairs of samples into centered products
  before running a first-order statistic, defeating first-order masking
  countermeasures (the product of two shares' leakages correlates with the
  unmasked value).

Both are expressed through one *attack-kernel* protocol — ``statistics``
produces the full ``(n_guesses, n_columns)`` distinguisher matrix in one
vectorized pass, ``prefix_peaks`` walks growing trace prefixes incrementally
— so :func:`run_attack`, :func:`repro.core.dpa.messages_to_disclosure` and
the :class:`repro.core.flow.AttackCampaign` orchestrator treat every attack
of the suite uniformly.  Everything is linear algebra over the trace matrix:
the correlation of all 256 guesses with all samples is two centered matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..electrical.waveform import Waveform
from .dpa import (
    DPAError,
    DPAResult,
    GuessResult,
    TraceSet,
    _bias_matrix,
    dom_prefix_peaks,
)
from .power_model import LeakageModel, SelectionBitModel, leakage_matrix
from .selection import SelectionFunction, selection_matrix


class AttackKernel(Protocol):
    """Protocol every attack of the suite implements.

    ``statistics`` maps the aligned ``(n_traces, n_samples)`` matrix plus the
    plaintexts to the ``(n_guesses, n_columns)`` distinguisher matrix (bias
    signals for DPA, correlation coefficients for CPA, …); ``prefix_peaks``
    yields the per-guess peak distinguisher at every prefix boundary of a
    messages-to-disclosure sweep, incrementally where the statistic allows.
    """

    name: str

    def guesses(self) -> Sequence[int]:
        ...

    def statistics(self, matrix: np.ndarray,
                   plaintexts: Sequence[Sequence[int]],
                   guess_space: Sequence[int]) -> np.ndarray:
        ...

    def prefix_peaks(self, matrix: np.ndarray,
                     plaintexts: Sequence[Sequence[int]],
                     guess_space: Sequence[int],
                     boundaries: Sequence[int]
                     ) -> Iterator[Tuple[int, np.ndarray]]:
        ...


# ------------------------------------------------------------ Pearson engine
def pearson_statistics(matrix: np.ndarray, hypothesis: np.ndarray) -> np.ndarray:
    """Pearson correlation of every hypothesis row with every sample column.

    ``matrix`` is the ``(n_traces, n_samples)`` measurement, ``hypothesis``
    the ``(n_guesses, n_traces)`` hypothetical power of a leakage model; the
    result is the ``(n_guesses, n_samples)`` correlation matrix, computed as
    one matmul between the centered operands.  Columns or rows with zero
    variance (a constant sample, a constant prediction) yield 0 rather than
    NaN, matching the "no information" reading of the attack.
    """
    matrix = np.asarray(matrix, dtype=float)
    hypothesis = np.asarray(hypothesis, dtype=float)
    if hypothesis.shape[1] != matrix.shape[0]:
        raise DPAError(
            f"hypothesis covers {hypothesis.shape[1]} traces but the matrix "
            f"holds {matrix.shape[0]}"
        )
    centered_traces = matrix - matrix.mean(axis=0, keepdims=True)
    centered_model = hypothesis - hypothesis.mean(axis=1, keepdims=True)
    covariance = centered_model @ centered_traces
    trace_norm = np.sqrt((centered_traces ** 2).sum(axis=0))
    model_norm = np.sqrt((centered_model ** 2).sum(axis=1))
    denominator = model_norm[:, None] * trace_norm[None, :]
    return np.divide(covariance, denominator,
                     out=np.zeros_like(covariance), where=denominator > 0)


def cpa_prefix_peaks(matrix: np.ndarray, hypothesis: np.ndarray,
                     boundaries: Sequence[int]
                     ) -> Iterator[Tuple[int, np.ndarray]]:
    """Per-guess correlation peaks at every prefix boundary, incrementally.

    Pearson's coefficient over a prefix only needs five running sums (trace
    sums and squares per sample, hypothesis sums and squares per guess, and
    the cross-product matrix), each updatable with one small matmul over the
    newly added slice — the whole sweep costs a single full CPA instead of
    one CPA per prefix size.
    """
    matrix = np.asarray(matrix, dtype=float)
    hypothesis = np.asarray(hypothesis, dtype=float)
    n_guesses, n_samples = hypothesis.shape[0], matrix.shape[1]
    trace_sum = np.zeros(n_samples)
    trace_sq = np.zeros(n_samples)
    model_sum = np.zeros(n_guesses)
    model_sq = np.zeros(n_guesses)
    cross = np.zeros((n_guesses, n_samples))
    previous = 0
    for count in boundaries:
        segment = slice(previous, count)
        trace_sum += matrix[segment].sum(axis=0)
        trace_sq += (matrix[segment] ** 2).sum(axis=0)
        model_sum += hypothesis[:, segment].sum(axis=1)
        model_sq += (hypothesis[:, segment] ** 2).sum(axis=1)
        cross += hypothesis[:, segment] @ matrix[segment]
        previous = count

        covariance = count * cross - model_sum[:, None] * trace_sum[None, :]
        trace_var = count * trace_sq - trace_sum ** 2
        model_var = count * model_sq - model_sum ** 2
        denominator = np.sqrt(
            np.clip(model_var, 0.0, None)[:, None]
            * np.clip(trace_var, 0.0, None)[None, :]
        )
        correlation = np.divide(covariance, denominator,
                                out=np.zeros_like(covariance),
                                where=denominator > 0)
        yield count, np.abs(correlation).max(axis=1)


# ----------------------------------------------------------------- kernels
def _memoized(kernel, key: tuple, compute):
    """One-slot memo on a frozen kernel instance.

    An attack over a trace set touches its hypothesis/bit matrix twice — once
    for the full-set ranking, once for the disclosure sweep — so kernels keep
    the last computed matrix and return it when called again with equal
    inputs (the equality check is trivially cheap next to the rebuild).
    """
    cached = getattr(kernel, "_memo", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    value = compute()
    object.__setattr__(kernel, "_memo", (key, value))
    return value


@dataclass(frozen=True)
class DpaKernel:
    """The Section-IV difference-of-means attack as a kernel."""

    selection: SelectionFunction

    @property
    def name(self) -> str:
        return f"dom({self.selection.name})"

    def guesses(self) -> Sequence[int]:
        return self.selection.guesses()

    def _bits(self, plaintexts, guess_space) -> np.ndarray:
        return _memoized(
            self, (plaintexts, list(guess_space)),
            lambda: selection_matrix(self.selection, plaintexts, guess_space),
        )

    def statistics(self, matrix, plaintexts, guess_space) -> np.ndarray:
        bias, _ = _bias_matrix(matrix, self._bits(plaintexts, guess_space))
        return bias

    def prefix_peaks(self, matrix, plaintexts, guess_space, boundaries):
        return dom_prefix_peaks(matrix, self._bits(plaintexts, guess_space),
                                boundaries)


@dataclass(frozen=True)
class CpaKernel:
    """Correlation power analysis against a leakage model."""

    model: LeakageModel

    @property
    def name(self) -> str:
        return f"cpa[{self.model.name}]"

    def guesses(self) -> Sequence[int]:
        return self.model.guesses()

    def _hypothesis(self, plaintexts, guess_space) -> np.ndarray:
        return _memoized(
            self, (plaintexts, list(guess_space)),
            lambda: leakage_matrix(self.model, plaintexts, guess_space),
        )

    def statistics(self, matrix, plaintexts, guess_space) -> np.ndarray:
        return pearson_statistics(matrix,
                                  self._hypothesis(plaintexts, guess_space))

    def prefix_peaks(self, matrix, plaintexts, guess_space, boundaries):
        return cpa_prefix_peaks(matrix,
                                self._hypothesis(plaintexts, guess_space),
                                boundaries)


def centered_product_matrix(matrix: np.ndarray, *,
                            pairs: Optional[Sequence[Tuple[int, int]]] = None,
                            window: Optional[int] = None,
                            region: Optional[Sequence[int]] = None
                            ) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Second-order preprocessing: centered products of sample pairs.

    Column ``p`` of the result is ``(S[:, j] − mean_j) · (S[:, k] − mean_k)``
    for the ``p``-th ``(j, k)`` pair.  Pairs are either given explicitly
    (``j == k`` is allowed — the univariate squared combining) or generated
    from every ordered pair of ``region`` columns (default: all samples) at
    most ``window`` samples apart.  The column means are those of the full
    matrix, so prefix sweeps reuse one combined matrix (the standard
    full-set-centering approximation).
    """
    matrix = np.asarray(matrix, dtype=float)
    if pairs is None:
        columns = (np.arange(matrix.shape[1], dtype=np.int64)
                   if region is None else np.asarray(list(region), dtype=np.int64))
        span = int(window) if window is not None else matrix.shape[1]
        pairs = [
            (int(columns[a]), int(columns[b]))
            for a in range(len(columns))
            for b in range(a + 1, len(columns))
            if abs(int(columns[b]) - int(columns[a])) <= span
        ]
    pairs = [(int(j), int(k)) for j, k in pairs]
    if not pairs:
        raise DPAError("second-order combining produced no sample pairs; "
                       "widen the window or pass pairs explicitly")
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    first = np.asarray([j for j, _ in pairs], dtype=np.int64)
    second = np.asarray([k for _, k in pairs], dtype=np.int64)
    return centered[:, first] * centered[:, second], pairs


@dataclass(frozen=True)
class SecondOrderKernel:
    """Any first-order kernel run over centered-product combined samples.

    Wrapping :class:`DpaKernel` gives the classic second-order DPA of
    Messerges; wrapping :class:`CpaKernel` gives second-order CPA.  The
    distinguisher columns index the combined ``(j, k)`` pairs rather than
    time samples.
    """

    inner: AttackKernel
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    window: Optional[int] = None
    region: Optional[Tuple[int, ...]] = None

    @property
    def name(self) -> str:
        return f"o2[{self.inner.name}]"

    def guesses(self) -> Sequence[int]:
        return self.inner.guesses()

    def _combined(self, matrix: np.ndarray) -> np.ndarray:
        # Keyed by identity: TraceSet.matrix() returns its cached array, so
        # ranking and disclosure over one trace set combine samples once.
        cached = getattr(self, "_combined_memo", None)
        if cached is not None and cached[0] is matrix:
            return cached[1]
        combined, _ = centered_product_matrix(
            matrix, pairs=self.pairs, window=self.window, region=self.region
        )
        object.__setattr__(self, "_combined_memo", (matrix, combined))
        return combined

    def statistics(self, matrix, plaintexts, guess_space) -> np.ndarray:
        return self.inner.statistics(self._combined(matrix), plaintexts,
                                     guess_space)

    def prefix_peaks(self, matrix, plaintexts, guess_space, boundaries):
        return self.inner.prefix_peaks(self._combined(matrix), plaintexts,
                                       guess_space, boundaries)


def as_leakage_model(model_or_selection) -> LeakageModel:
    """Coerce a selection function into its CPA leakage model.

    Objects already exposing ``model_matrix`` pass through; a plain selection
    function is wrapped in :class:`SelectionBitModel` (correlation against
    the D bit — the normalized difference-of-means).
    """
    if hasattr(model_or_selection, "model_matrix"):
        return model_or_selection
    if hasattr(model_or_selection, "guesses"):
        return SelectionBitModel(model_or_selection)
    raise TypeError(f"{model_or_selection!r} is neither a leakage model nor "
                    "a selection function")


def as_kernel(attack) -> AttackKernel:
    """Coerce a kernel, leakage model or selection function into a kernel."""
    if hasattr(attack, "statistics"):
        return attack
    if hasattr(attack, "model_matrix"):
        return CpaKernel(attack)
    if hasattr(attack, "guesses"):
        return DpaKernel(attack)
    raise TypeError(f"{attack!r} is not an attack kernel, leakage model or "
                    "selection function")


# ------------------------------------------------------------------ attacks
def result_from_statistic(statistic: np.ndarray, guess_space: Sequence[int],
                          name: str, trace_count: int, dt: float, t0: float,
                          *, keep_statistic: bool = False) -> DPAResult:
    """Rank key guesses from a computed ``(n_guesses, n_columns)`` statistic.

    The shared back half of every attack path: :func:`run_attack` feeds it
    the kernel's in-memory distinguisher, and the streaming states of
    :mod:`repro.assess.streaming` feed it their accumulated one — so both
    produce structurally identical :class:`DPAResult` objects.
    """
    statistic = np.asarray(statistic, dtype=float)
    if statistic.ndim != 2 or statistic.shape[0] != len(guess_space):
        raise DPAError(
            f"kernel {name!r} produced a {statistic.shape} statistic "
            f"for {len(guess_space)} guesses"
        )
    absolute = np.abs(statistic)
    peak_indices = np.argmax(absolute, axis=1)
    peaks = absolute[np.arange(len(guess_space)), peak_indices]
    rms = np.sqrt(np.mean(statistic ** 2, axis=1))

    result = DPAResult(selection_name=name, trace_count=trace_count)
    for index, guess in enumerate(guess_space):
        guess_result = GuessResult(
            guess=guess,
            peak=float(peaks[index]),
            peak_time=t0 + int(peak_indices[index]) * dt,
            rms=float(rms[index]),
        )
        if keep_statistic:
            guess_result.bias = Waveform(statistic[index].copy(), dt, t0)
        result.results.append(guess_result)
    return result


def run_attack(traces: TraceSet, kernel: AttackKernel, *,
               guesses: Optional[Sequence[int]] = None,
               keep_statistic: bool = False) -> DPAResult:
    """Run any attack kernel over a trace set and rank the key guesses.

    The generic counterpart of :func:`repro.core.dpa.dpa_attack`: the kernel
    produces its distinguisher matrix in one vectorized pass and the result
    carries the same ranking API (:class:`DPAResult`), so campaign
    orchestration and reporting are attack-agnostic.  When the kernel
    preserves the sample axis the peak time is a real trace time; kernels
    that recombine samples (second order) report the peak *column* index
    scaled by ``dt`` instead.
    """
    if len(traces) == 0:
        raise DPAError("cannot attack an empty trace set")
    matrix = traces.matrix()
    dt, t0 = traces._time_params()
    guess_space = list(guesses) if guesses is not None else list(kernel.guesses())

    statistic = np.asarray(
        kernel.statistics(matrix, traces.plaintexts(), guess_space), dtype=float
    )
    return result_from_statistic(statistic, guess_space, kernel.name,
                                 len(traces), dt, t0,
                                 keep_statistic=keep_statistic)


def cpa_attack(traces: TraceSet, model, *,
               guesses: Optional[Sequence[int]] = None,
               keep_correlation: bool = False) -> DPAResult:
    """Vectorized CPA over all key guesses in one pass.

    ``model`` is a leakage model of :mod:`repro.core.power_model`
    (:class:`HammingWeightModel`, :class:`HammingDistanceModel`, …) or a
    plain selection function, which is correlated through its D bit.  Guess
    peaks are absolute Pearson coefficients, so ``DPAResult.ranking`` orders
    by correlation strength.
    """
    return run_attack(traces, CpaKernel(as_leakage_model(model)),
                      guesses=guesses, keep_statistic=keep_correlation)


def second_order_dpa_attack(traces: TraceSet, selection: SelectionFunction, *,
                            pairs: Optional[Sequence[Tuple[int, int]]] = None,
                            window: Optional[int] = None,
                            region: Optional[Sequence[int]] = None,
                            guesses: Optional[Sequence[int]] = None,
                            keep_statistic: bool = False) -> DPAResult:
    """Second-order centered-product DPA (difference of combined-sample means).

    Sample pairs are combined with :func:`centered_product_matrix`; restrict
    them with ``pairs``/``window``/``region`` — the pair count grows
    quadratically with the region size.
    """
    kernel = SecondOrderKernel(
        DpaKernel(selection),
        pairs=tuple((int(j), int(k)) for j, k in pairs) if pairs is not None else None,
        window=window,
        region=tuple(int(c) for c in region) if region is not None else None,
    )
    return run_attack(traces, kernel, guesses=guesses,
                      keep_statistic=keep_statistic)


def second_order_cpa_attack(traces: TraceSet, model, *,
                            pairs: Optional[Sequence[Tuple[int, int]]] = None,
                            window: Optional[int] = None,
                            region: Optional[Sequence[int]] = None,
                            guesses: Optional[Sequence[int]] = None,
                            keep_statistic: bool = False) -> DPAResult:
    """Second-order CPA: Pearson correlation over centered-product samples."""
    kernel = SecondOrderKernel(
        CpaKernel(as_leakage_model(model)),
        pairs=tuple((int(j), int(k)) for j, k in pairs) if pairs is not None else None,
        window=window,
        region=tuple(int(c) for c in region) if region is not None else None,
    )
    return run_attack(traces, kernel, guesses=guesses,
                      keep_statistic=keep_statistic)
