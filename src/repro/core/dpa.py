"""Differential Power Analysis on power-trace sets (equations (7)–(9)).

Following the formalisation of Messerges et al. recalled in Section IV of the
paper, a DPA attack:

1. collects ``N`` power traces ``S_ij`` (trace ``i``, sample ``j``) together
   with the plaintexts ``PTI_i`` that produced them;
2. for every key guess, splits the traces into two sets according to a
   selection function ``D`` (equation (7));
3. averages each set (equation (8)) and computes the bias signal
   ``T[j] = A0[j] − A1[j]`` (equation (9));
4. declares the guess whose bias shows the strongest peaks to be the key.

The whole attack is linear algebra over the ``(n_traces, n_samples)`` sample
matrix: with the selection bits of every guess stacked into a matrix ``B``
(``n_guesses × n_traces``), the per-guess set sums of equation (8) are the
single matmul ``B · S`` and the bias signals of equation (9) follow from two
row-wise divisions.  :func:`dpa_attack` therefore evaluates **all key guesses
at once**; the per-trace, per-guess formulation it replaces is kept as
:func:`dpa_attack_reference` so the batched engine can always be checked
against the literal textbook loop.

The classes here are agnostic of where the traces come from: the library's
own synthesized traces (XOR block, asynchronous AES) or any externally
acquired waveform set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..electrical.waveform import Waveform, _same_period, stack_aligned
from .selection import SelectionFunction, selection_matrix


class DPAError(Exception):
    """Raised on malformed trace sets or attack parameters."""


@dataclass
class PowerTrace:
    """One acquired power trace and the plaintext that produced it."""

    waveform: Waveform
    plaintext: List[int]
    metadata: Dict[str, object] = field(default_factory=dict)


class TraceSet:
    """An ordered collection of :class:`PowerTrace` with a common time base.

    The set is backed by a contiguous ``(n_traces, n_samples)`` sample matrix
    plus an ``(n_traces, block)`` plaintext matrix, both built lazily and
    cached (alignment happens exactly once; :meth:`add` invalidates the
    caches).  The per-trace :class:`PowerTrace` API — iteration, indexing,
    ``waveforms()`` — is preserved as a view over the matrix rows, so existing
    per-trace code keeps working while the attack engine stays array-first.
    """

    def __init__(self, traces: Optional[Iterable[PowerTrace]] = None):
        self._traces: List[PowerTrace] = list(traces) if traces is not None else []
        self._matrix: Optional[np.ndarray] = None
        self._dt: Optional[float] = None
        self._t0: Optional[float] = None
        self._plaintext_matrix: Optional[np.ndarray] = None

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, plaintexts: Sequence[Sequence[int]],
                    dt: float, t0: float = 0.0,
                    metadata: Optional[Sequence[Mapping[str, object]]] = None
                    ) -> "TraceSet":
        """Build a trace set directly from an aligned sample matrix.

        This is the fast path used by the batched trace generators: the matrix
        is adopted as-is (rows become the waveforms of the per-trace view), so
        no per-trace alignment or copying ever happens.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise DPAError(f"expected an (n_traces, n_samples) matrix, "
                           f"got shape {matrix.shape}")
        if len(plaintexts) != matrix.shape[0]:
            raise DPAError(f"got {len(plaintexts)} plaintexts for "
                           f"{matrix.shape[0]} trace rows")
        if dt <= 0:
            raise DPAError(f"sampling period must be > 0, got {dt}")
        traces = cls()
        for index, plaintext in enumerate(plaintexts):
            extra = dict(metadata[index]) if metadata is not None else {}
            traces._traces.append(PowerTrace(
                waveform=Waveform(matrix[index], dt, t0),
                plaintext=list(plaintext), metadata=extra,
            ))
        traces._matrix = matrix
        traces._dt = dt
        traces._t0 = t0
        return traces

    def _invalidate(self) -> None:
        self._matrix = None
        self._dt = None
        self._t0 = None
        self._plaintext_matrix = None

    def add(self, waveform: Waveform, plaintext: Sequence[int], **metadata) -> None:
        self._traces.append(PowerTrace(waveform=waveform, plaintext=list(plaintext),
                                       metadata=dict(metadata)))
        self._invalidate()

    def extend(self, other: "TraceSet") -> None:
        """Append every trace of ``other`` (chunk-wise growth of a set).

        When both sets already carry an aligned sample matrix on the same
        time base, the matrices are stacked block-wise — no per-trace
        re-alignment ever happens, so growing a set chunk by chunk costs one
        ``vstack`` per chunk instead of re-aligning the whole history.  In
        every other case the caches are invalidated and the next
        :meth:`matrix` call re-aligns from scratch, which keeps the cache
        correct by construction.

        Sharing contract: the appended :class:`PowerTrace` objects are
        shared with ``other`` (they are immutable records), but the
        destination always **owns** its cached sample matrix — the
        empty-destination fast path copies ``other``'s matrix, exactly as
        the ``vstack`` of the non-empty path allocates fresh rows.  Mutating
        ``self.matrix()``'s return therefore never corrupts ``other`` (nor a
        parent set that ``other`` was zero-copy :meth:`subset` from), and
        ``other.add(...)`` after an extend invalidates only ``other``'s
        cache, never the destination's.
        """
        if len(other._traces) == 0:
            return
        appended = list(other._traces)
        reusable = (
            self._matrix is not None
            and other._matrix is not None
            and self._matrix.shape[1] == other._matrix.shape[1]
            and _same_period(self._dt, other._dt)
            and self._t0 == other._t0
        )
        if len(self._traces) == 0:
            self._traces = appended
            matrix = other._matrix
            self._matrix = None if matrix is None else matrix.copy()
            self._dt = other._dt
            self._t0 = other._t0
            self._plaintext_matrix = None
            return
        if reusable:
            self._matrix = np.vstack([self._matrix, other._matrix])
            self._plaintext_matrix = None
        else:
            self._invalidate()
        self._traces.extend(appended)

    def iter_chunks(self, chunk_size: int) -> Iterable["TraceSet"]:
        """Iterate the set as consecutive blocks of up to ``chunk_size`` traces.

        When the aligned matrix is already built every block shares its rows
        (zero-copy slices, like :meth:`subset`); otherwise each block wraps
        its slice of the per-trace list.  This is how an in-memory set feeds
        the streaming assessment pipelines of :mod:`repro.assess`.
        """
        if chunk_size < 1:
            raise DPAError(f"chunk size must be >= 1, got {chunk_size}")
        for start in range(0, len(self._traces), chunk_size):
            stop = start + chunk_size
            if self._matrix is not None:
                yield TraceSet.from_matrix(
                    self._matrix[start:stop],
                    [t.plaintext for t in self._traces[start:stop]],
                    self._dt, self._t0,
                    metadata=[t.metadata for t in self._traces[start:stop]],
                )
            else:
                yield TraceSet(self._traces[start:stop])

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def __getitem__(self, index: int) -> PowerTrace:
        return self._traces[index]

    def subset(self, count: int) -> "TraceSet":
        """The first ``count`` traces (used for messages-to-disclosure sweeps).

        ``count`` must be non-negative (a negative value raises
        :class:`DPAError` instead of silently slicing from the end) and is
        clamped to the set size, so ``subset(count)`` always holds exactly
        ``min(count, len(self))`` traces.  When the sample matrix is already
        built the subset shares its rows (a zero-copy slice), so
        growing-prefix sweeps never re-align anything.
        """
        if count < 0:
            raise DPAError(f"subset count must be >= 0, got {count}")
        count = min(count, len(self._traces))
        if self._matrix is not None:
            return TraceSet.from_matrix(
                self._matrix[:count],
                [t.plaintext for t in self._traces[:count]],
                self._dt, self._t0,
                metadata=[t.metadata for t in self._traces[:count]],
            )
        return TraceSet(self._traces[:count])

    def plaintexts(self) -> List[List[int]]:
        return [t.plaintext for t in self._traces]

    def plaintext_matrix(self) -> np.ndarray:
        """All plaintexts stacked into an ``(n_traces, block)`` int matrix."""
        if self._plaintext_matrix is None:
            if not self._traces:
                raise DPAError("empty trace set has no plaintext matrix")
            lengths = {len(t.plaintext) for t in self._traces}
            if len(lengths) != 1:
                raise DPAError(f"plaintexts have mixed lengths {sorted(lengths)}; "
                               "cannot build a rectangular matrix")
            self._plaintext_matrix = np.asarray(
                [t.plaintext for t in self._traces], dtype=np.int64
            )
        return self._plaintext_matrix

    def waveforms(self) -> List[Waveform]:
        return [t.waveform for t in self._traces]

    @property
    def dt(self) -> float:
        if not self._traces:
            raise DPAError("empty trace set has no time base")
        return self._traces[0].waveform.dt

    def matrix(self) -> np.ndarray:
        """Stack all traces into an ``(n_traces, n_samples)`` matrix.

        Alignment over the set happens on the first call only; the result is
        cached until the set is mutated.
        """
        if self._matrix is None:
            if not self._traces:
                raise DPAError("cannot build a matrix from an empty trace set")
            self._matrix, self._dt, self._t0 = stack_aligned(
                [t.waveform for t in self._traces]
            )
        return self._matrix

    def time_base(self) -> Waveform:
        """The first trace on the set's common time base (cached alignment)."""
        matrix = self.matrix()
        return Waveform(matrix[0].copy(), self._dt, self._t0)

    def _time_params(self) -> Tuple[float, float]:
        """``(dt, t0)`` of the aligned matrix (building it if needed)."""
        self.matrix()
        return self._dt, self._t0


# ----------------------------------------------------------------- partition
def selection_bits(traces: TraceSet, selection: SelectionFunction,
                   key_guess: int) -> np.ndarray:
    """The D-function value for every trace of the set (0/1 vector)."""
    return selection_matrix(selection, traces.plaintexts(), [key_guess])[0]


def partition_traces(traces: TraceSet, selection: SelectionFunction,
                     key_guess: int) -> Tuple[List[Waveform], List[Waveform]]:
    """Equation (7): split traces into ``S0`` (D = 0) and ``S1`` (D = 1)."""
    bits = selection_bits(traces, selection, key_guess)
    set0 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 0]
    set1 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 1]
    return set0, set1


def partition_by_values(traces: TraceSet, bits: Sequence[int]
                        ) -> Tuple[List[Waveform], List[Waveform]]:
    """Split traces by externally supplied bit values (known-key assessment)."""
    if len(bits) != len(traces):
        raise DPAError(
            f"got {len(bits)} selection bits for {len(traces)} traces"
        )
    set0 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 0]
    set1 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 1]
    return set0, set1


def _bias_from_matrix(matrix: np.ndarray, bits: np.ndarray) -> Optional[np.ndarray]:
    mask1 = bits == 1
    mask0 = ~mask1
    if not mask0.any() or not mask1.any():
        return None
    return matrix[mask0].mean(axis=0) - matrix[mask1].mean(axis=0)


def _bias_matrix(matrix: np.ndarray, bit_matrix: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Equations (8)–(9) for every guess at once.

    ``bit_matrix`` is the ``(n_guesses, n_traces)`` selection-bit matrix;
    the result is the ``(n_guesses, n_samples)`` bias matrix together with a
    boolean validity vector (a guess whose partition is single-sided has no
    bias and gets a zero row, matching the per-guess reference).
    """
    n_traces = matrix.shape[0]
    counts1 = bit_matrix.sum(axis=1)
    counts0 = n_traces - counts1
    sum1 = bit_matrix.astype(float) @ matrix
    sum_all = matrix.sum(axis=0)
    valid = (counts1 > 0) & (counts0 > 0)
    bias = np.zeros((bit_matrix.shape[0], matrix.shape[1]))
    if valid.any():
        bias[valid] = ((sum_all - sum1[valid]) / counts0[valid, None]
                       - sum1[valid] / counts1[valid, None])
    return bias, valid


def dpa_bias(traces: TraceSet, selection: SelectionFunction,
             key_guess: int) -> Waveform:
    """Equations (8)–(9): the DPA bias signal ``T[j]`` for one key guess."""
    matrix = traces.matrix()
    dt, t0 = traces._time_params()
    bits = selection_bits(traces, selection, key_guess)
    bias = _bias_from_matrix(matrix, bits)
    if bias is None:
        return Waveform(np.zeros(matrix.shape[1]), dt, t0)
    return Waveform(bias, dt, t0)


# -------------------------------------------------------------------- attack
@dataclass
class GuessResult:
    """Bias signal and summary statistics for one key guess."""

    guess: int
    peak: float
    peak_time: float
    rms: float
    bias: Optional[Waveform] = None

    def __repr__(self) -> str:
        return (f"GuessResult(guess={self.guess:#x}, peak={self.peak:.3e}, "
                f"t={self.peak_time:.3e})")


@dataclass
class DPAResult:
    """Outcome of a full DPA attack (all key guesses of a selection function)."""

    selection_name: str
    trace_count: int
    results: List[GuessResult] = field(default_factory=list)

    def ranking(self) -> List[GuessResult]:
        """Guesses sorted by decreasing bias peak."""
        return sorted(self.results, key=lambda r: r.peak, reverse=True)

    @property
    def best_guess(self) -> int:
        return self.ranking()[0].guess

    @property
    def best_peak(self) -> float:
        return self.ranking()[0].peak

    def result_for(self, guess: int) -> GuessResult:
        for result in self.results:
            if result.guess == guess:
                return result
        raise DPAError(f"guess {guess:#x} was not part of the attack")

    def rank_of(self, guess: int) -> int:
        """1-based rank of a guess (1 = the attack's best candidate)."""
        ranked = self.ranking()
        for index, result in enumerate(ranked):
            if result.guess == guess:
                return index + 1
        raise DPAError(f"guess {guess:#x} was not part of the attack")

    def discrimination_ratio(self, correct_guess: int) -> float:
        """Peak of the correct guess divided by the best wrong-guess peak.

        Values above 1 mean the attack distinguishes the key; large values
        mean it does so comfortably.
        """
        correct = self.result_for(correct_guess).peak
        wrong = [r.peak for r in self.results if r.guess != correct_guess]
        if not wrong:
            return float("inf")
        best_wrong = max(wrong)
        if best_wrong == 0.0:
            return float("inf") if correct > 0 else 1.0
        return correct / best_wrong


def _polarized_bias(bias: np.ndarray, polarity: str) -> np.ndarray:
    """Apply the expected bias polarity before peak extraction.

    ``"abs"`` is the classic two-sided peak.  ``"negative"`` /
    ``"positive"`` implement the single-sided variant: when the attacker
    knows which partition consumes more charge (under the paper's model the
    ``D = 1`` traces of the correct guess draw *more* current, so
    ``T = A0 − A1`` peaks negative), only peaks of that sign count — which
    resolves the complement ambiguity of Hamming-weight selections against
    linear leakage.  Wrong-side excursions are clipped to zero, so
    :attr:`GuessResult.peak` stays non-negative under every polarity (a
    guess with no peak of the expected sign carries no evidence, exactly
    like a guess with a single-sided partition) and the ranking /
    discrimination-ratio semantics are unchanged.
    """
    if polarity == "abs":
        return np.abs(bias)
    if polarity == "negative":
        return np.maximum(-bias, 0.0)
    if polarity == "positive":
        return np.maximum(bias, 0.0)
    raise DPAError(f"unknown polarity {polarity!r}; "
                   "expected 'abs', 'positive' or 'negative'")


def dpa_attack(traces: TraceSet, selection: SelectionFunction, *,
               guesses: Optional[Sequence[int]] = None,
               keep_bias: bool = False,
               polarity: str = "abs") -> DPAResult:
    """Run the DPA attack of Section IV over a set of key guesses.

    All guesses are evaluated at once: the selection-bit matrix ``B`` of the
    whole guess space is built vectorized, the per-guess set sums of
    equation (8) come from the single matmul ``B · S``, and equation (9)'s
    bias signals follow element-wise.  Numerically equivalent to (and checked
    in the tests against) :func:`dpa_attack_reference`.

    Parameters
    ----------
    traces:
        The acquired traces with their plaintexts.
    selection:
        The D function; its :meth:`guesses` provides the default guess space.
    guesses:
        Optional subset of key guesses to evaluate.
    keep_bias:
        Store the full bias waveform of every guess (memory-heavier; useful
        for plotting or for inspecting secondary peaks).
    polarity:
        Peak statistic: ``"abs"`` (default, two-sided) or the single-sided
        ``"negative"`` / ``"positive"`` when the expected sign of
        ``T = A0 − A1`` at the leak is known (see :func:`_polarized_bias`).
    """
    if len(traces) == 0:
        raise DPAError("cannot attack an empty trace set")
    matrix = traces.matrix()
    dt, t0 = traces._time_params()
    guess_space = list(guesses) if guesses is not None else list(selection.guesses())

    bit_matrix = selection_matrix(selection, traces.plaintexts(), guess_space)
    bias, valid = _bias_matrix(matrix, bit_matrix)
    abs_bias = _polarized_bias(bias, polarity)
    peak_indices = np.argmax(abs_bias, axis=1)
    peaks = abs_bias[np.arange(len(guess_space)), peak_indices]
    rms = np.sqrt(np.mean(bias ** 2, axis=1))

    result = DPAResult(selection_name=selection.name, trace_count=len(traces))
    for index, guess in enumerate(guess_space):
        if not valid[index]:
            result.results.append(GuessResult(guess=guess, peak=0.0,
                                              peak_time=t0, rms=0.0, bias=None))
            continue
        guess_result = GuessResult(
            guess=guess,
            peak=float(peaks[index]),
            peak_time=t0 + int(peak_indices[index]) * dt,
            rms=float(rms[index]),
        )
        if keep_bias:
            guess_result.bias = Waveform(bias[index].copy(), dt, t0)
        result.results.append(guess_result)
    return result


def dpa_attack_reference(traces: TraceSet, selection: SelectionFunction, *,
                         guesses: Optional[Sequence[int]] = None,
                         keep_bias: bool = False,
                         polarity: str = "abs") -> DPAResult:
    """The literal per-guess formulation of the attack (reference path).

    Splits and averages the trace set one key guess at a time, exactly as the
    equations read.  Kept as the equivalence oracle for :func:`dpa_attack`
    and as the baseline of the engine-throughput benchmark.
    """
    if len(traces) == 0:
        raise DPAError("cannot attack an empty trace set")
    matrix = traces.matrix()
    dt, t0 = traces._time_params()
    guess_space = list(guesses) if guesses is not None else list(selection.guesses())

    result = DPAResult(selection_name=selection.name, trace_count=len(traces))
    for guess in guess_space:
        bits = np.array([selection(t.plaintext, guess) for t in traces], dtype=int)
        bias = _bias_from_matrix(matrix, bits)
        if bias is None:
            result.results.append(GuessResult(guess=guess, peak=0.0,
                                              peak_time=t0, rms=0.0, bias=None))
            continue
        abs_bias = _polarized_bias(bias, polarity)
        peak_index = int(np.argmax(abs_bias))
        guess_result = GuessResult(
            guess=guess,
            peak=float(abs_bias[peak_index]),
            peak_time=t0 + peak_index * dt,
            rms=float(np.sqrt(np.mean(bias ** 2))),
        )
        if keep_bias:
            guess_result.bias = Waveform(bias.copy(), dt, t0)
        result.results.append(guess_result)
    return result


def _stable_rank(peaks: np.ndarray, correct_index: int) -> int:
    """1-based rank of ``peaks[correct_index]`` under a stable descending sort.

    Matches :meth:`DPAResult.rank_of` exactly: guesses with a strictly larger
    peak rank first, and ties are broken by position in the guess space.
    """
    correct_peak = peaks[correct_index]
    better = int((peaks > correct_peak).sum())
    earlier_ties = int((peaks[:correct_index] == correct_peak).sum())
    return 1 + better + earlier_ties


def dom_prefix_peaks(matrix: np.ndarray, bit_matrix: np.ndarray,
                     boundaries: Sequence[int]):
    """Per-guess bias peaks at every prefix boundary, incrementally.

    Yields ``(count, peaks)`` pairs where ``peaks[g]`` is the maximum
    absolute bias of guess ``g`` over the first ``count`` traces.  The
    per-guess set sums of each prefix are the running cumulative sums of the
    previous prefix plus one small matmul over the new slice of traces — the
    whole sweep costs a single full attack, O(N·m) per guess, instead of
    re-running the attack from scratch at every prefix size (O(N²·m)).

    This is the difference-of-means instance of the attack-kernel
    ``prefix_peaks`` protocol; :mod:`repro.core.cpa` provides the Pearson
    and second-order instances.
    """
    n_guesses, n_samples = bit_matrix.shape[0], matrix.shape[1]
    # Running prefix sums (equation (8) numerators and set sizes).
    sum1 = np.zeros((n_guesses, n_samples))
    sum_all = np.zeros(n_samples)
    counts1 = np.zeros(n_guesses)
    previous = 0
    for count in boundaries:
        segment = slice(previous, count)
        sum_all += matrix[segment].sum(axis=0)
        sum1 += bit_matrix[:, segment].astype(float) @ matrix[segment]
        counts1 += bit_matrix[:, segment].sum(axis=1)
        previous = count

        counts0 = count - counts1
        valid = (counts1 > 0) & (counts0 > 0)
        peaks = np.zeros(n_guesses)
        if valid.any():
            bias = ((sum_all - sum1[valid]) / counts0[valid, None]
                    - sum1[valid] / counts1[valid, None])
            peaks[valid] = np.abs(bias).max(axis=1)
        yield count, peaks


def messages_to_disclosure(traces: TraceSet, attack, correct_guess: int, *,
                           guesses: Optional[Sequence[int]] = None,
                           start: int = 16, step: int = 16,
                           stable_runs: int = 1) -> Optional[int]:
    """Smallest number of traces after which the correct key ranks first.

    The attack is evaluated on growing prefixes of the trace set; the
    returned value is the size of the first prefix for which the correct
    guess is ranked first and stays first for ``stable_runs`` consecutive
    prefix sizes.  Returns ``None`` when the full set never discloses the key.

    ``attack`` is either a plain :class:`SelectionFunction` (the historical
    difference-of-means sweep) or any attack kernel exposing the
    ``prefix_peaks(matrix, plaintexts, guess_space, boundaries)`` protocol —
    e.g. the CPA and second-order kernels of :mod:`repro.core.cpa` — so every
    attack of the suite shares one incremental disclosure engine.
    """
    if start < 2:
        raise DPAError("need at least 2 traces to run a DPA attack")
    if len(traces) == 0:
        raise DPAError("cannot attack an empty trace set")

    guess_space = list(guesses) if guesses is not None else list(attack.guesses())
    try:
        correct_index = guess_space.index(correct_guess)
    except ValueError:
        raise DPAError(f"guess {correct_guess:#x} was not part of the attack") from None

    matrix = traces.matrix()
    boundaries = range(start, len(traces) + 1, step)
    prefix_peaks = getattr(attack, "prefix_peaks", None)
    if prefix_peaks is not None:
        sweep = prefix_peaks(matrix, traces.plaintexts(), guess_space, boundaries)
    else:
        bit_matrix = selection_matrix(attack, traces.plaintexts(), guess_space)
        sweep = dom_prefix_peaks(matrix, bit_matrix, boundaries)

    consecutive = 0
    first_success: Optional[int] = None
    for count, peaks in sweep:
        if _stable_rank(peaks, correct_index) == 1:
            if consecutive == 0:
                first_success = count
            consecutive += 1
            if consecutive >= stable_runs:
                return first_success
        else:
            consecutive = 0
            first_success = None
    return None
