"""Differential Power Analysis on power-trace sets (equations (7)–(9)).

Following the formalisation of Messerges et al. recalled in Section IV of the
paper, a DPA attack:

1. collects ``N`` power traces ``S_ij`` (trace ``i``, sample ``j``) together
   with the plaintexts ``PTI_i`` that produced them;
2. for every key guess, splits the traces into two sets according to a
   selection function ``D`` (equation (7));
3. averages each set (equation (8)) and computes the bias signal
   ``T[j] = A0[j] − A1[j]`` (equation (9));
4. declares the guess whose bias shows the strongest peaks to be the key.

The classes here are agnostic of where the traces come from: the library's
own synthesized traces (XOR block, asynchronous AES) or any externally
acquired waveform set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..electrical.waveform import Waveform, align_waveforms
from .selection import SelectionFunction


class DPAError(Exception):
    """Raised on malformed trace sets or attack parameters."""


@dataclass
class PowerTrace:
    """One acquired power trace and the plaintext that produced it."""

    waveform: Waveform
    plaintext: List[int]
    metadata: Dict[str, object] = field(default_factory=dict)


class TraceSet:
    """An ordered collection of :class:`PowerTrace` with a common time base."""

    def __init__(self, traces: Optional[Iterable[PowerTrace]] = None):
        self._traces: List[PowerTrace] = list(traces) if traces is not None else []

    def add(self, waveform: Waveform, plaintext: Sequence[int], **metadata) -> None:
        self._traces.append(PowerTrace(waveform=waveform, plaintext=list(plaintext),
                                       metadata=dict(metadata)))

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def __getitem__(self, index: int) -> PowerTrace:
        return self._traces[index]

    def subset(self, count: int) -> "TraceSet":
        """The first ``count`` traces (used for messages-to-disclosure sweeps)."""
        return TraceSet(self._traces[:count])

    def plaintexts(self) -> List[List[int]]:
        return [t.plaintext for t in self._traces]

    def waveforms(self) -> List[Waveform]:
        return [t.waveform for t in self._traces]

    @property
    def dt(self) -> float:
        if not self._traces:
            raise DPAError("empty trace set has no time base")
        return self._traces[0].waveform.dt

    def matrix(self) -> np.ndarray:
        """Stack all traces into an ``(n_traces, n_samples)`` matrix."""
        if not self._traces:
            raise DPAError("cannot build a matrix from an empty trace set")
        aligned = align_waveforms([t.waveform for t in self._traces])
        return np.vstack([w.samples for w in aligned])

    def time_base(self) -> Waveform:
        aligned = align_waveforms([t.waveform for t in self._traces])
        return aligned[0]


# ----------------------------------------------------------------- partition
def selection_bits(traces: TraceSet, selection: SelectionFunction,
                   key_guess: int) -> np.ndarray:
    """The D-function value for every trace of the set (0/1 vector)."""
    return np.array(
        [selection(trace.plaintext, key_guess) for trace in traces], dtype=int
    )


def partition_traces(traces: TraceSet, selection: SelectionFunction,
                     key_guess: int) -> Tuple[List[Waveform], List[Waveform]]:
    """Equation (7): split traces into ``S0`` (D = 0) and ``S1`` (D = 1)."""
    bits = selection_bits(traces, selection, key_guess)
    set0 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 0]
    set1 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 1]
    return set0, set1


def partition_by_values(traces: TraceSet, bits: Sequence[int]
                        ) -> Tuple[List[Waveform], List[Waveform]]:
    """Split traces by externally supplied bit values (known-key assessment)."""
    if len(bits) != len(traces):
        raise DPAError(
            f"got {len(bits)} selection bits for {len(traces)} traces"
        )
    set0 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 0]
    set1 = [trace.waveform for trace, bit in zip(traces, bits) if bit == 1]
    return set0, set1


def _bias_from_matrix(matrix: np.ndarray, bits: np.ndarray) -> Optional[np.ndarray]:
    mask1 = bits == 1
    mask0 = ~mask1
    if not mask0.any() or not mask1.any():
        return None
    return matrix[mask0].mean(axis=0) - matrix[mask1].mean(axis=0)


def dpa_bias(traces: TraceSet, selection: SelectionFunction,
             key_guess: int) -> Waveform:
    """Equations (8)–(9): the DPA bias signal ``T[j]`` for one key guess."""
    matrix = traces.matrix()
    bits = selection_bits(traces, selection, key_guess)
    bias = _bias_from_matrix(matrix, bits)
    base = traces.time_base()
    if bias is None:
        return Waveform(np.zeros(matrix.shape[1]), base.dt, base.t0)
    return Waveform(bias, base.dt, base.t0)


# -------------------------------------------------------------------- attack
@dataclass
class GuessResult:
    """Bias signal and summary statistics for one key guess."""

    guess: int
    peak: float
    peak_time: float
    rms: float
    bias: Optional[Waveform] = None

    def __repr__(self) -> str:
        return (f"GuessResult(guess={self.guess:#x}, peak={self.peak:.3e}, "
                f"t={self.peak_time:.3e})")


@dataclass
class DPAResult:
    """Outcome of a full DPA attack (all key guesses of a selection function)."""

    selection_name: str
    trace_count: int
    results: List[GuessResult] = field(default_factory=list)

    def ranking(self) -> List[GuessResult]:
        """Guesses sorted by decreasing bias peak."""
        return sorted(self.results, key=lambda r: r.peak, reverse=True)

    @property
    def best_guess(self) -> int:
        return self.ranking()[0].guess

    @property
    def best_peak(self) -> float:
        return self.ranking()[0].peak

    def result_for(self, guess: int) -> GuessResult:
        for result in self.results:
            if result.guess == guess:
                return result
        raise DPAError(f"guess {guess:#x} was not part of the attack")

    def rank_of(self, guess: int) -> int:
        """1-based rank of a guess (1 = the attack's best candidate)."""
        ranked = self.ranking()
        for index, result in enumerate(ranked):
            if result.guess == guess:
                return index + 1
        raise DPAError(f"guess {guess:#x} was not part of the attack")

    def discrimination_ratio(self, correct_guess: int) -> float:
        """Peak of the correct guess divided by the best wrong-guess peak.

        Values above 1 mean the attack distinguishes the key; large values
        mean it does so comfortably.
        """
        correct = self.result_for(correct_guess).peak
        wrong = [r.peak for r in self.results if r.guess != correct_guess]
        if not wrong:
            return float("inf")
        best_wrong = max(wrong)
        if best_wrong == 0.0:
            return float("inf") if correct > 0 else 1.0
        return correct / best_wrong


def dpa_attack(traces: TraceSet, selection: SelectionFunction, *,
               guesses: Optional[Sequence[int]] = None,
               keep_bias: bool = False) -> DPAResult:
    """Run the DPA attack of Section IV over a set of key guesses.

    Parameters
    ----------
    traces:
        The acquired traces with their plaintexts.
    selection:
        The D function; its :meth:`guesses` provides the default guess space.
    guesses:
        Optional subset of key guesses to evaluate.
    keep_bias:
        Store the full bias waveform of every guess (memory-heavier; useful
        for plotting or for inspecting secondary peaks).
    """
    if len(traces) == 0:
        raise DPAError("cannot attack an empty trace set")
    matrix = traces.matrix()
    base = traces.time_base()
    guess_space = list(guesses) if guesses is not None else list(selection.guesses())

    result = DPAResult(selection_name=selection.name, trace_count=len(traces))
    for guess in guess_space:
        bits = selection_bits(traces, selection, guess)
        bias = _bias_from_matrix(matrix, bits)
        if bias is None:
            result.results.append(GuessResult(guess=guess, peak=0.0,
                                              peak_time=base.t0, rms=0.0,
                                              bias=None))
            continue
        abs_bias = np.abs(bias)
        peak_index = int(np.argmax(abs_bias))
        guess_result = GuessResult(
            guess=guess,
            peak=float(abs_bias[peak_index]),
            peak_time=base.t0 + peak_index * base.dt,
            rms=float(np.sqrt(np.mean(bias ** 2))),
        )
        if keep_bias:
            guess_result.bias = Waveform(bias.copy(), base.dt, base.t0)
        result.results.append(guess_result)
    return result


def messages_to_disclosure(traces: TraceSet, selection: SelectionFunction,
                           correct_guess: int, *,
                           start: int = 16, step: int = 16,
                           stable_runs: int = 1) -> Optional[int]:
    """Smallest number of traces after which the correct key ranks first.

    The attack is re-run on growing prefixes of the trace set; the returned
    value is the size of the first prefix for which the correct guess is
    ranked first and stays first for ``stable_runs`` consecutive prefix sizes.
    Returns ``None`` when the full set never discloses the key.
    """
    if start < 2:
        raise DPAError("need at least 2 traces to run a DPA attack")
    consecutive = 0
    first_success: Optional[int] = None
    count = start
    while count <= len(traces):
        prefix = traces.subset(count)
        attack = dpa_attack(prefix, selection)
        if attack.rank_of(correct_guess) == 1:
            if consecutive == 0:
                first_success = count
            consecutive += 1
            if consecutive >= stable_runs:
                return first_success
        else:
            consecutive = 0
            first_success = None
        count += step
    return None
