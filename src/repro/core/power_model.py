"""Formal power and current model of secured QDI blocks (Section III).

This module implements equations (1)–(6) of the paper:

* equation (1):  ``Pd = η · f · C · Vdd²``               (CMOS gate dynamic power)
* equation (2):  ``Pda = η · fa · C · Vdd²``             (gate in a QDI environment,
  clocked by the acknowledge frequency ``fa`` instead of a global clock)
* equation (3):  ``Pb = Σ_{i=1..Nt} fa · η · Ci · Vdd²`` (block dynamic power, the
  sum running over the fixed number ``Nt`` of transitions of the block)
* equation (4):  ``I(t) = C · dV/dt``                    (gate dynamic current)
* equation (5):  ``Pdc(t) = Σ_{i=1..Nc} Σ_{j=1..Nij} I_ij(t) + Pdn(t)``
* equation (6):  the dual-rail XOR instance of (5), with ``Nt = Nc = 4`` and one
  gate per level: ``Pdc(t) = I11 + I21 + I31 + I41 + Pdn``.

The :class:`FormalCurrentModel` is the analytic counterpart of the event-driven
electrical simulation: it predicts the block current profile of a computation
directly from the annotated graph (levels, node capacitances, transition
times), which is exactly how the paper evaluates DPA sensitivity "in theory,
with the formal model".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..circuits.builder import QDIBlock
from ..circuits.netlist import Netlist
from ..electrical.capacitance import node_capacitance, transition_time_s
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..electrical.waveform import Waveform, triangular_pulse
from .selection import SelectionFunction, popcount_matrix, selection_matrix


# ----------------------------------------------------------- equations (1-3)
def gate_dynamic_power(switching_activity: float, frequency_hz: float,
                       cap_ff: float, vdd: float) -> float:
    """Equation (1): dynamic power of a CMOS gate, in watts.

    ``switching_activity`` is the activity ratio η, ``frequency_hz`` the
    switching frequency f, ``cap_ff`` the total output node capacitance in
    femtofarads and ``vdd`` the supply voltage.
    """
    if switching_activity < 0 or frequency_hz < 0 or cap_ff < 0 or vdd < 0:
        raise ValueError("power model parameters must be non-negative")
    return switching_activity * frequency_hz * cap_ff * 1e-15 * vdd * vdd


def qdi_gate_dynamic_power(switching_activity: float, ack_frequency_hz: float,
                           cap_ff: float, vdd: float) -> float:
    """Equation (2): the same expression with the acknowledge frequency ``fa``.

    In a QDI circuit the rate at which a gate is exercised is set by the
    four-phase handshake, i.e. by the frequency of the acknowledge signal.
    """
    return gate_dynamic_power(switching_activity, ack_frequency_hz, cap_ff, vdd)


def block_dynamic_power(node_caps_ff: Sequence[float], ack_frequency_hz: float,
                        vdd: float, switching_activity: float = 1.0) -> float:
    """Equation (3): dynamic power of a balanced QDI block.

    ``node_caps_ff`` lists the capacitance switched by each of the ``Nt``
    transitions of one computation; because ``Nt`` is fixed by construction,
    the sum is data independent *in structure* — but not in value unless the
    capacitances themselves are matched, which is the paper's central point.
    """
    return sum(
        qdi_gate_dynamic_power(switching_activity, ack_frequency_hz, cap, vdd)
        for cap in node_caps_ff
    )


def block_power_from_netlist(netlist: Netlist, switching_nets: Sequence[str],
                             ack_frequency_hz: float,
                             technology: Technology = HCMOS9_LIKE) -> float:
    """Equation (3) evaluated on a netlist: sum over the switched nets."""
    caps = [node_capacitance(netlist, net).total_ff for net in switching_nets]
    return block_dynamic_power(caps, ack_frequency_hz, technology.vdd)


# ----------------------------------------------------------- equations (4-6)
@dataclass(frozen=True)
class GateCurrentTerm:
    """One ``I_ij(t)`` term of equation (5).

    Attributes
    ----------
    level:
        Logical level ``i`` of the switching gate.
    position:
        Index ``j`` of the gate within its level.
    net:
        Output net of the gate.
    cap_ff:
        Total node capacitance ``C`` charged or discharged by the transition.
    transition_time_s:
        Charge/discharge time ``Δt`` of the node (RC product).
    onset_s:
        Time at which the transition starts, measured from the beginning of
        the phase (the sum of the ``Δt`` of the upstream levels on the same
        path).
    weight:
        Probability that this gate is the one firing at its level when the
        output takes the path's value.  For the dual-rail XOR, level 1 has
        two minterm gates per rail value (M1/M2 for rail 0), each firing for
        half of the uniformly distributed inputs — this is the ``½`` in front
        of ``I11`` and ``I12`` in equation (10).
    """

    level: int
    position: int
    net: str
    cap_ff: float
    transition_time_s: float
    onset_s: float
    weight: float = 1.0

    def charge_coulomb(self, vdd: float) -> float:
        """Charge moved by the transition: ``Q = C · Vdd``."""
        return self.cap_ff * 1e-15 * vdd

    def average_current_a(self, vdd: float) -> float:
        """Equation (4) averaged over the transition: ``I ≈ C · ΔV / Δt``."""
        if self.transition_time_s <= 0:
            raise ValueError("transition time must be > 0")
        return self.charge_coulomb(vdd) / self.transition_time_s

    def pulse(self, dt: float, vdd: float) -> Waveform:
        """The transition rendered as a triangular current pulse.

        The pulse area is the moved charge scaled by the firing probability
        ``weight`` — i.e. the *expected* contribution to the set average of
        equation (8).
        """
        width = max(self.transition_time_s, 2 * dt)
        samples = triangular_pulse(self.weight * self.charge_coulomb(vdd), width, dt)
        return Waveform(samples, dt, self.onset_s)


@dataclass
class PathCurrentModel:
    """The sequence of gate current terms fired when one output rail is produced.

    For the dual-rail XOR this is one of the two symmetric data paths whose
    averaged difference gives the electrical signature of equations (10)–(12).
    """

    rail: str
    rail_value: int
    terms: List[GateCurrentTerm] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return max((t.level for t in self.terms), default=0)

    def total_cap_ff(self) -> float:
        return sum(t.cap_ff for t in self.terms)

    def completion_time_s(self) -> float:
        """Time at which the last transition of the path finishes."""
        return max((t.onset_s + t.transition_time_s for t in self.terms), default=0.0)

    def profile(self, dt: float, vdd: float, duration: Optional[float] = None) -> Waveform:
        """Render the path's current profile ``Σ_i I_i(t)`` as a waveform."""
        length = duration if duration is not None else self.completion_time_s() + 20 * dt
        waveform = Waveform.zeros(length, dt, 0.0)
        for term in self.terms:
            pulse = term.pulse(dt, vdd)
            waveform.add_pulse(pulse.t0, pulse.samples)
        return waveform


@dataclass
class FormalCurrentModel:
    """Analytic current model of a balanced QDI block (equations (5)–(6)).

    ``paths`` maps each output-rail value to its :class:`PathCurrentModel`;
    ``shared_terms`` lists the terms common to all paths (e.g. the completion
    detector, the ``I_41`` of equation (10)/(11) which appears in both sets).
    """

    block_name: str
    technology: Technology
    paths: Dict[int, PathCurrentModel] = field(default_factory=dict)
    shared_terms: List[GateCurrentTerm] = field(default_factory=list)
    noise_floor_a: float = 0.0

    # ------------------------------------------------------------ building
    @classmethod
    def from_block(cls, block: QDIBlock, *, output_index: int = 0,
                   technology: Technology = HCMOS9_LIKE) -> "FormalCurrentModel":
        """Build the model from a library block's rail cones and levels.

        For every rail of the selected output channel, the gates of the
        rail's cone are ordered by logical level; the onset of each term is
        the accumulated transition time of the upstream terms on the same
        path (the mechanism by which an early heavy net shifts the whole rest
        of the path, visible in Fig. 7c/7d).  Gates that belong to no rail
        cone (completion detection) become shared terms, placed after the
        deepest path level.
        """
        netlist = block.netlist
        channel = block.outputs[output_index]
        model = cls(block_name=block.name, technology=technology)

        assigned: set = set()
        for rail_value, rail_net in enumerate(channel.rails):
            cone = block.rail_cones.get(rail_net, [])
            by_level: Dict[int, List[str]] = {}
            for instance_name in cone:
                level = block.level_of_instance.get(instance_name, 0)
                by_level.setdefault(level, []).append(instance_name)
            path = PathCurrentModel(rail=rail_net, rail_value=rail_value)
            onset = 0.0
            for level in sorted(by_level):
                gates = sorted(by_level[level])
                # When several gates of the cone share a level (the minterm
                # detectors), exactly one of them fires per computation; each
                # contributes with probability 1/len(gates) to the set average.
                weight = 1.0 / len(gates)
                level_delta = 0.0
                for instance_name in gates:
                    cell = netlist.cell_of(instance_name)
                    out_net = netlist.instance(instance_name).net_of(cell.output)
                    cap = node_capacitance(netlist, out_net).total_ff
                    delta_t = transition_time_s(netlist, out_net, technology)
                    position = _position_in_grid(block, instance_name)
                    path.terms.append(GateCurrentTerm(
                        level=level, position=position, net=out_net, cap_ff=cap,
                        transition_time_s=delta_t, onset_s=onset, weight=weight,
                    ))
                    assigned.add(instance_name)
                    level_delta = max(level_delta, delta_t)
                # The next level starts once the slowest alternative of this
                # level has finished charging its output node.
                onset += level_delta
            model.paths[rail_value] = path

        # Shared terms (completion detection and other gates outside every rail
        # cone) fire after the active path has completed; their stored onset is
        # therefore *relative to the end of the path* and is rebased per rail
        # value in :meth:`terms_for`.  This is what makes a slowed-down path
        # shift the completion pulse and create the end-of-phase peak of
        # Fig. 7.
        shared_onset = 0.0
        for instance_name, level in sorted(block.level_of_instance.items(),
                                           key=lambda item: item[1]):
            if instance_name in assigned:
                continue
            cell = netlist.cell_of(instance_name)
            out_net = netlist.instance(instance_name).net_of(cell.output)
            cap = node_capacitance(netlist, out_net).total_ff
            delta_t = transition_time_s(netlist, out_net, technology)
            position = _position_in_grid(block, instance_name)
            model.shared_terms.append(GateCurrentTerm(
                level=level, position=position, net=out_net, cap_ff=cap,
                transition_time_s=delta_t, onset_s=shared_onset,
            ))
            shared_onset += delta_t
        return model

    # ------------------------------------------------------------- queries
    @property
    def nc(self) -> int:
        """``Nc``: the number of logical levels along the critical path."""
        levels = [t.level for p in self.paths.values() for t in p.terms]
        levels += [t.level for t in self.shared_terms]
        return max(levels, default=0)

    def nij(self, rail_value: int) -> Dict[int, int]:
        """``N_ij``: gates switching per level for one computation.

        Alternative gates of one level (weight < 1) are counted as the single
        gate that actually fires, so for the dual-rail XOR every level counts
        one gate — ``N_1j = N_2j = N_3j = N_4j = 1`` as in the paper.
        """
        weights: Dict[int, float] = {}
        for term in list(self.paths[rail_value].terms) + list(self.shared_terms):
            weights[term.level] = weights.get(term.level, 0.0) + term.weight
        return {level: int(round(value)) for level, value in weights.items()}

    def nt(self, rail_value: int) -> int:
        """``Nt``: total number of transitions of one evaluation phase."""
        return sum(self.nij(rail_value).values())

    def terms_for(self, rail_value: int) -> List[GateCurrentTerm]:
        """All terms fired when the output takes ``rail_value`` (eq. (10)/(11)).

        Shared terms (completion detection) are rebased to start when the
        selected path has finished charging its last node, so a capacitance
        imbalance on one path also shifts the shared pulses in time — the
        second peak visible in Fig. 7b.
        """
        path = self.paths[rail_value]
        completion = path.completion_time_s()
        rebased = [replace(term, onset_s=term.onset_s + completion)
                   for term in self.shared_terms]
        return list(path.terms) + rebased

    def profile(self, rail_value: int, *, dt: Optional[float] = None,
                duration: Optional[float] = None) -> Waveform:
        """Equation (5)/(6): the predicted block current for one computation."""
        step = dt if dt is not None else self.technology.time_step_s
        terms = self.terms_for(rail_value)
        end = max((t.onset_s + t.transition_time_s for t in terms), default=0.0)
        length = duration if duration is not None else end + 20 * step
        waveform = Waveform.zeros(length, step, 0.0)
        for term in terms:
            pulse = term.pulse(step, self.technology.vdd)
            waveform.add_pulse(pulse.t0, pulse.samples)
        return waveform

    def block_power_w(self, ack_frequency_hz: float, rail_value: int = 0) -> float:
        """Equation (3) evaluated with the model's capacitances."""
        caps = [t.cap_ff for t in self.terms_for(rail_value)]
        return block_dynamic_power(caps, ack_frequency_hz, self.technology.vdd)


def _position_in_grid(block: QDIBlock, instance_name: str) -> int:
    for (_level, position), name in block.gate_grid.items():
        if name == instance_name:
            return position
    return 0


# ------------------------------------------------------ CPA leakage models
#
# Where the DPA of Section IV predicts a single *bit* of an intermediate value
# (the D functions of :mod:`repro.core.selection`), a correlation attack
# predicts the *amount of power* an intermediate consumes.  A leakage model
# turns a (plaintext, key guess) grid into a real-valued hypothetical power
# matrix — the ``H`` of a Brier-style CPA — that :func:`repro.core.cpa.
# cpa_attack` correlates against the measured trace matrix.  The models build
# on the selection functions' vectorized ``intermediate_matrix`` API, so the
# whole 256-guess hypothesis grid resolves in a handful of table lookups.


class LeakageModel(Protocol):
    """Protocol of CPA leakage models (hypothetical power predictors)."""

    name: str

    def guesses(self) -> Sequence[int]:
        """The key-guess space to enumerate."""
        ...

    def model_matrix(self, plaintexts: Sequence[Sequence[int]],
                     guesses: np.ndarray) -> np.ndarray:
        """Hypothetical power of every (guess, trace) pair, ``(G, N)`` floats."""
        ...


def leakage_matrix(model: LeakageModel,
                   plaintexts: Sequence[Sequence[int]],
                   guesses: Sequence[int]) -> np.ndarray:
    """The hypothetical power matrix ``H[g, i]`` of a model, shape-checked.

    The CPA counterpart of :func:`repro.core.selection.selection_matrix`:
    ``H[g, i]`` is the power the model predicts for plaintext ``i`` under key
    guess ``g``.  Returned as floats so the correlation kernel can center it
    in place.
    """
    guesses = np.asarray(list(guesses), dtype=np.int64)
    matrix = np.asarray(model.model_matrix(plaintexts, guesses), dtype=float)
    if matrix.shape != (len(guesses), len(plaintexts)):
        raise ValueError(
            f"leakage model {model.name!r} produced a {matrix.shape} matrix "
            f"for {len(guesses)} guesses x {len(plaintexts)} plaintexts"
        )
    return matrix


def _intermediate_grid(target, plaintexts: Sequence[Sequence[int]],
                       guesses: np.ndarray) -> np.ndarray:
    """``(G, N)`` intermediate values of a selection-function target."""
    intermediate_matrix = getattr(target, "intermediate_matrix", None)
    if intermediate_matrix is not None:
        return np.asarray(intermediate_matrix(plaintexts, guesses),
                          dtype=np.int64)
    intermediate = getattr(target, "intermediate", None)
    if intermediate is None:
        raise TypeError(
            f"{getattr(target, 'name', target)!r} exposes no intermediate "
            "value; CPA leakage models need a selection function with an "
            "intermediate/intermediate_matrix API"
        )
    return np.asarray(
        [[intermediate(plaintext, int(guess)) for plaintext in plaintexts]
         for guess in guesses],
        dtype=np.int64,
    ).reshape(len(guesses), len(plaintexts))


@dataclass(frozen=True)
class HammingWeightModel:
    """Classic CPA model: power ∝ Hamming weight of the intermediate value.

    ``target`` is any selection function exposing ``intermediate`` /
    ``intermediate_matrix`` (e.g. :class:`AesSboxSelection`); its ``bit_index``
    is ignored — the model consumes the whole intermediate word.
    """

    target: SelectionFunction

    @property
    def name(self) -> str:
        return f"hw({self.target.name})"

    def guesses(self) -> Sequence[int]:
        return self.target.guesses()

    def model_matrix(self, plaintexts: Sequence[Sequence[int]],
                     guesses: np.ndarray) -> np.ndarray:
        return popcount_matrix(
            _intermediate_grid(self.target, plaintexts, guesses)
        ).astype(float)


@dataclass(frozen=True)
class HammingDistanceModel:
    """CPA model: power ∝ Hamming distance to a reference state.

    ``reference`` is either a fixed integer (e.g. the precharge value of a
    bus — 0 models the all-zero spacer of a return-to-zero QDI channel) or
    ``None``, in which case the reference is the targeted plaintext byte
    itself (the register-overwrite model of clocked implementations).
    """

    target: SelectionFunction
    reference: Optional[int] = 0

    @property
    def name(self) -> str:
        ref = "pt" if self.reference is None else f"{self.reference:#x}"
        return f"hd({self.target.name},ref={ref})"

    def guesses(self) -> Sequence[int]:
        return self.target.guesses()

    def model_matrix(self, plaintexts: Sequence[Sequence[int]],
                     guesses: np.ndarray) -> np.ndarray:
        grid = _intermediate_grid(self.target, plaintexts, guesses)
        if self.reference is None:
            byte_index = getattr(self.target, "byte_index", 0)
            array = np.asarray(plaintexts, dtype=np.int64)
            reference = array[:, byte_index][None, :]
        else:
            reference = np.int64(self.reference)
        return popcount_matrix(grid ^ reference).astype(float)


@dataclass(frozen=True)
class SelectionBitModel:
    """CPA model: power ∝ the single selection bit itself.

    Correlating against the D-function bit is the normalized form of the
    difference-of-means test — Pearson's coefficient divides out the
    per-sample trace variance, which suppresses the amplitude-driven ghost
    peaks that plague the raw bias ranking.  On the reference asynchronous
    AES this roughly halves the traces needed to disclose a key byte.
    """

    selection: SelectionFunction

    @property
    def name(self) -> str:
        return f"bit({self.selection.name})"

    def guesses(self) -> Sequence[int]:
        return self.selection.guesses()

    def model_matrix(self, plaintexts: Sequence[Sequence[int]],
                     guesses: np.ndarray) -> np.ndarray:
        return selection_matrix(self.selection, plaintexts,
                                guesses).astype(float)


def xor_current_decomposition(block: QDIBlock, rail_value: int, *,
                              technology: Technology = HCMOS9_LIKE
                              ) -> List[Tuple[str, GateCurrentTerm]]:
    """Equation (6) for the dual-rail XOR: the ordered ``I_i1(t)`` terms.

    Returns ``[("I11", term), ("I21", term), ("I31", term), ("I41", term)]``
    style labels so tests and benchmarks can check the decomposition matches
    the paper's ``Nt = Nc = 4``, one gate per level.
    """
    model = FormalCurrentModel.from_block(block, technology=technology)
    labelled = []
    for term in model.terms_for(rail_value):
        labelled.append((f"I{term.level}{term.position}", term))
    labelled.sort(key=lambda item: (item[1].level, item[1].position))
    return labelled
