"""DPA selection functions (the ``D`` functions of Section IV).

A selection function predicts, from the known plaintext and a *guessed* part
of the key, one bit of an intermediate value of the cipher.  The paper gives
the two classical examples:

* DES:  ``D(C1, P6, K0) = SBOX1(P6 ⊕ K0)(C1)`` — bit ``C1`` of the output of
  the first S-box of the first round;
* AES:  ``D(C1, P8, K8) = XOR(P8, K8)(C1)`` — bit ``C1`` of the XOR of one
  plaintext byte with the corresponding first-round key byte (the initial
  AddRoundKey of Rijndael).

Every selection function exposes its key-guess space so that the attack loop
in :mod:`repro.core.dpa` can enumerate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence

import numpy as np

from ..crypto.aes_tables import SBOX
from ..crypto.des import expanded_plaintext_chunk, sbox_lookup
from ..crypto.keys import bit_of, hamming_weight

#: Lookup tables as arrays, so whole plaintext × guess grids resolve in one
#: fancy-indexing operation instead of a Python call per (trace, guess) pair.
_SBOX_TABLE = np.asarray(SBOX, dtype=np.int64)
_DES_SBOX_TABLE = np.asarray(
    [[sbox_lookup(s, v) for v in range(64)] for s in range(8)], dtype=np.int64
)
_POPCOUNT_TABLE = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.int64)


def popcount_matrix(values: np.ndarray) -> np.ndarray:
    """Element-wise Hamming weight of an integer array (any shape).

    Works byte by byte through the 256-entry popcount table, so arbitrarily
    wide non-negative integers are supported.  This is the shared primitive of
    the multi-bit selection functions and of the CPA Hamming-weight/distance
    leakage models in :mod:`repro.core.power_model`.
    """
    values = np.asarray(values)
    if values.size and values.min() < 0:
        raise ValueError("popcount is only defined for non-negative integers")
    remaining = values.astype(np.int64, copy=True)
    weights = np.zeros_like(remaining)
    while (remaining > 0).any():
        weights += _POPCOUNT_TABLE[remaining & 0xFF]
        remaining >>= 8
    return weights


class SelectionFunction(Protocol):
    """Protocol of DPA selection functions."""

    name: str

    def guesses(self) -> Sequence[int]:
        """The key-guess space to enumerate."""
        ...

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        """Return the predicted bit (0 or 1) for one plaintext and key guess."""
        ...


def selection_matrix(selection: SelectionFunction,
                     plaintexts: Sequence[Sequence[int]],
                     guesses: Sequence[int]) -> np.ndarray:
    """The D-function values of every (guess, trace) pair as a bit matrix.

    Returns a ``(n_guesses, n_traces)`` 0/1 integer matrix ``B`` with
    ``B[g, i] = D(plaintext_i, guess_g)`` — the selection-bit matrix the
    batched attack of :func:`repro.core.dpa.dpa_attack` turns into set sums
    with a single matmul.  Selection functions that implement ``bits_matrix``
    are evaluated vectorized; any other callable falls back to a generic loop.
    """
    guesses = np.asarray(list(guesses), dtype=np.int64)
    bits_matrix = getattr(selection, "bits_matrix", None)
    if bits_matrix is not None:
        matrix = np.asarray(bits_matrix(plaintexts, guesses), dtype=np.int64)
    else:
        matrix = np.asarray(
            [[selection(plaintext, int(guess)) for plaintext in plaintexts]
             for guess in guesses],
            dtype=np.int64,
        ).reshape(len(guesses), len(plaintexts))
    if matrix.shape != (len(guesses), len(plaintexts)):
        raise ValueError(
            f"selection {selection.name!r} produced a {matrix.shape} bit matrix "
            f"for {len(guesses)} guesses x {len(plaintexts)} plaintexts"
        )
    return matrix


def _plaintext_bytes(plaintexts: Sequence[Sequence[int]], byte_index: int) -> np.ndarray:
    """Column ``byte_index`` of a batch of plaintexts as an int array."""
    array = np.asarray(plaintexts)
    if array.ndim != 2:
        raise ValueError("plaintexts must form a rectangular (n, block) batch")
    return array[:, byte_index].astype(np.int64)


@dataclass(frozen=True)
class AesAddRoundKeySelection:
    """AES selection function of Section IV: a bit of ``plaintext ⊕ key``.

    Parameters
    ----------
    byte_index:
        Which plaintext/key byte (0..15) the attack targets — the paper's
        ``P8`` / ``K8``.
    bit_index:
        Which bit of the XOR output is predicted — the paper's ``C1``
        (0 = least significant bit).
    """

    byte_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.byte_index < 16:
            raise ValueError(f"byte_index must be 0..15, got {self.byte_index}")
        if not 0 <= self.bit_index < 8:
            raise ValueError(f"bit_index must be 0..7, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"aes-addkey[byte={self.byte_index},bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(256)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        """The full intermediate byte ``plaintext[byte] ⊕ key_guess``."""
        return plaintext[self.byte_index] ^ (key_guess & 0xFF)

    def intermediate_matrix(self, plaintexts: Sequence[Sequence[int]],
                            guesses: np.ndarray) -> np.ndarray:
        """``(n_guesses, n_traces)`` matrix of intermediate bytes."""
        targets = _plaintext_bytes(plaintexts, self.byte_index)
        return targets[None, :] ^ (guesses[:, None] & 0xFF)

    def bits_matrix(self, plaintexts: Sequence[Sequence[int]],
                    guesses: np.ndarray) -> np.ndarray:
        return (self.intermediate_matrix(plaintexts, guesses) >> self.bit_index) & 1

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class AesSboxSelection:
    """A first-round SubBytes selection: a bit of ``SBOX(plaintext ⊕ key)``.

    Not used in the paper's formal development but standard practice for AES
    DPA; provided as the natural extension for the end-to-end key-recovery
    experiments (the S-box makes wrong guesses decorrelate much faster).
    """

    byte_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.byte_index < 16:
            raise ValueError(f"byte_index must be 0..15, got {self.byte_index}")
        if not 0 <= self.bit_index < 8:
            raise ValueError(f"bit_index must be 0..7, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"aes-sbox[byte={self.byte_index},bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(256)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        return SBOX[plaintext[self.byte_index] ^ (key_guess & 0xFF)]

    def intermediate_matrix(self, plaintexts: Sequence[Sequence[int]],
                            guesses: np.ndarray) -> np.ndarray:
        targets = _plaintext_bytes(plaintexts, self.byte_index)
        return _SBOX_TABLE[targets[None, :] ^ (guesses[:, None] & 0xFF)]

    def bits_matrix(self, plaintexts: Sequence[Sequence[int]],
                    guesses: np.ndarray) -> np.ndarray:
        return (self.intermediate_matrix(plaintexts, guesses) >> self.bit_index) & 1

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class DesSboxSelection:
    """DES selection function of Section IV: a bit of ``SBOX1(P6 ⊕ K0)``.

    ``P6`` is derived from the plaintext through the initial permutation and
    the expansion E of the first round; ``K0`` is the guessed 6-bit chunk of
    the first round key feeding the selected S-box.
    """

    sbox_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sbox_index < 8:
            raise ValueError(f"sbox_index must be 0..7, got {self.sbox_index}")
        if not 0 <= self.bit_index < 4:
            raise ValueError(f"bit_index must be 0..3, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"des-sbox{self.sbox_index + 1}[bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(64)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        chunk = expanded_plaintext_chunk(plaintext, self.sbox_index)
        return sbox_lookup(self.sbox_index, chunk ^ (key_guess & 0x3F))

    def intermediate_matrix(self, plaintexts: Sequence[Sequence[int]],
                            guesses: np.ndarray) -> np.ndarray:
        # The IP/E bit permutations are per-plaintext only (no guess
        # dependence), so one Python pass over the traces feeds a fully
        # vectorized S-box lookup over the whole guess grid.
        chunks = np.asarray(
            [expanded_plaintext_chunk(plaintext, self.sbox_index)
             for plaintext in plaintexts],
            dtype=np.int64,
        )
        return _DES_SBOX_TABLE[self.sbox_index][chunks[None, :] ^ (guesses[:, None] & 0x3F)]

    def bits_matrix(self, plaintexts: Sequence[Sequence[int]],
                    guesses: np.ndarray) -> np.ndarray:
        return (self.intermediate_matrix(plaintexts, guesses) >> self.bit_index) & 1

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class HammingWeightSelection:
    """Multi-bit selection: partition by the Hamming weight of an intermediate.

    Wraps another selection function's intermediate value and predicts 1 when
    its Hamming weight exceeds a threshold.  Mentioned in Section IV as the
    multi-bit alternative ("the number of bits chosen for Ci in the selection
    function determinates the number of sets to create").
    """

    inner: AesAddRoundKeySelection
    threshold: int = 4

    @property
    def name(self) -> str:
        return f"hw[{self.inner.name},>={self.threshold}]"

    def guesses(self) -> Sequence[int]:
        return self.inner.guesses()

    def bits_matrix(self, plaintexts: Sequence[Sequence[int]],
                    guesses: np.ndarray) -> np.ndarray:
        intermediate_matrix = getattr(self.inner, "intermediate_matrix", None)
        if intermediate_matrix is None:
            # Custom inner selections without a vectorized intermediate keep
            # working through the scalar protocol.
            return np.asarray(
                [[self(plaintext, int(guess)) for plaintext in plaintexts]
                 for guess in guesses],
                dtype=np.int64,
            ).reshape(len(guesses), len(plaintexts))
        weights = popcount_matrix(intermediate_matrix(plaintexts, guesses))
        return (weights >= self.threshold).astype(np.int64)

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        weight = hamming_weight(self.inner.intermediate(plaintext, key_guess))
        return 1 if weight >= self.threshold else 0


@dataclass(frozen=True)
class KnownValueSelection:
    """Selection by a pre-computed intermediate value (no key guess).

    Useful for leakage assessment: when the key is known, partitioning by the
    true intermediate bit measures the worst-case information available to an
    attacker (the "strong correlation" case of Section IV).
    """

    values: tuple
    bit_index: int = 0
    name: str = "known-value"

    def guesses(self) -> Sequence[int]:
        return (0,)

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        # ``plaintext`` is ignored: the caller indexes traces positionally via
        # the pre-computed values tuple.
        raise NotImplementedError(
            "KnownValueSelection partitions by index; use dpa.partition_by_values"
        )


def list_standard_selections() -> List[str]:
    """Names of the selection functions the library provides out of the box."""
    return [
        AesAddRoundKeySelection().name,
        AesSboxSelection().name,
        DesSboxSelection().name,
    ]
