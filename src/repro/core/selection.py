"""DPA selection functions (the ``D`` functions of Section IV).

A selection function predicts, from the known plaintext and a *guessed* part
of the key, one bit of an intermediate value of the cipher.  The paper gives
the two classical examples:

* DES:  ``D(C1, P6, K0) = SBOX1(P6 ⊕ K0)(C1)`` — bit ``C1`` of the output of
  the first S-box of the first round;
* AES:  ``D(C1, P8, K8) = XOR(P8, K8)(C1)`` — bit ``C1`` of the XOR of one
  plaintext byte with the corresponding first-round key byte (the initial
  AddRoundKey of Rijndael).

Every selection function exposes its key-guess space so that the attack loop
in :mod:`repro.core.dpa` can enumerate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence

from ..crypto.aes_tables import SBOX
from ..crypto.des import expanded_plaintext_chunk, sbox_lookup
from ..crypto.keys import bit_of, hamming_weight


class SelectionFunction(Protocol):
    """Protocol of DPA selection functions."""

    name: str

    def guesses(self) -> Sequence[int]:
        """The key-guess space to enumerate."""
        ...

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        """Return the predicted bit (0 or 1) for one plaintext and key guess."""
        ...


@dataclass(frozen=True)
class AesAddRoundKeySelection:
    """AES selection function of Section IV: a bit of ``plaintext ⊕ key``.

    Parameters
    ----------
    byte_index:
        Which plaintext/key byte (0..15) the attack targets — the paper's
        ``P8`` / ``K8``.
    bit_index:
        Which bit of the XOR output is predicted — the paper's ``C1``
        (0 = least significant bit).
    """

    byte_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.byte_index < 16:
            raise ValueError(f"byte_index must be 0..15, got {self.byte_index}")
        if not 0 <= self.bit_index < 8:
            raise ValueError(f"bit_index must be 0..7, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"aes-addkey[byte={self.byte_index},bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(256)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        """The full intermediate byte ``plaintext[byte] ⊕ key_guess``."""
        return plaintext[self.byte_index] ^ (key_guess & 0xFF)

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class AesSboxSelection:
    """A first-round SubBytes selection: a bit of ``SBOX(plaintext ⊕ key)``.

    Not used in the paper's formal development but standard practice for AES
    DPA; provided as the natural extension for the end-to-end key-recovery
    experiments (the S-box makes wrong guesses decorrelate much faster).
    """

    byte_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.byte_index < 16:
            raise ValueError(f"byte_index must be 0..15, got {self.byte_index}")
        if not 0 <= self.bit_index < 8:
            raise ValueError(f"bit_index must be 0..7, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"aes-sbox[byte={self.byte_index},bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(256)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        return SBOX[plaintext[self.byte_index] ^ (key_guess & 0xFF)]

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class DesSboxSelection:
    """DES selection function of Section IV: a bit of ``SBOX1(P6 ⊕ K0)``.

    ``P6`` is derived from the plaintext through the initial permutation and
    the expansion E of the first round; ``K0`` is the guessed 6-bit chunk of
    the first round key feeding the selected S-box.
    """

    sbox_index: int = 0
    bit_index: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sbox_index < 8:
            raise ValueError(f"sbox_index must be 0..7, got {self.sbox_index}")
        if not 0 <= self.bit_index < 4:
            raise ValueError(f"bit_index must be 0..3, got {self.bit_index}")

    @property
    def name(self) -> str:
        return f"des-sbox{self.sbox_index + 1}[bit={self.bit_index}]"

    def guesses(self) -> Sequence[int]:
        return range(64)

    def intermediate(self, plaintext: Sequence[int], key_guess: int) -> int:
        chunk = expanded_plaintext_chunk(plaintext, self.sbox_index)
        return sbox_lookup(self.sbox_index, chunk ^ (key_guess & 0x3F))

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        return bit_of(self.intermediate(plaintext, key_guess), self.bit_index)


@dataclass(frozen=True)
class HammingWeightSelection:
    """Multi-bit selection: partition by the Hamming weight of an intermediate.

    Wraps another selection function's intermediate value and predicts 1 when
    its Hamming weight exceeds a threshold.  Mentioned in Section IV as the
    multi-bit alternative ("the number of bits chosen for Ci in the selection
    function determinates the number of sets to create").
    """

    inner: AesAddRoundKeySelection
    threshold: int = 4

    @property
    def name(self) -> str:
        return f"hw[{self.inner.name},>={self.threshold}]"

    def guesses(self) -> Sequence[int]:
        return self.inner.guesses()

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        weight = hamming_weight(self.inner.intermediate(plaintext, key_guess))
        return 1 if weight >= self.threshold else 0


@dataclass(frozen=True)
class KnownValueSelection:
    """Selection by a pre-computed intermediate value (no key guess).

    Useful for leakage assessment: when the key is known, partitioning by the
    true intermediate bit measures the worst-case information available to an
    attacker (the "strong correlation" case of Section IV).
    """

    values: tuple
    bit_index: int = 0
    name: str = "known-value"

    def guesses(self) -> Sequence[int]:
        return (0,)

    def __call__(self, plaintext: Sequence[int], key_guess: int) -> int:
        # ``plaintext`` is ignored: the caller indexes traces positionally via
        # the pre-computed values tuple.
        raise NotImplementedError(
            "KnownValueSelection partitions by index; use dpa.partition_by_values"
        )


def list_standard_selections() -> List[str]:
    """Names of the selection functions the library provides out of the box."""
    return [
        AesAddRoundKeySelection().name,
        AesSboxSelection().name,
        DesSboxSelection().name,
    ]
