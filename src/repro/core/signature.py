"""Electrical signature of symmetric QDI data paths (equations (10)–(12)).

Applying the DPA formalism to the formal current model of a balanced
dual-rail block gives, for a single-bit selection function, two set averages

    ``A0(t) = ½ (I11 + I12 + I21 + I31 + I41 + In)``       (equation (10))
    ``A1(t) = ½ (I13 + I14 + I22 + I32 + I41 + In)``       (equation (11))

whose difference ``S(t) = A0(t) − A1(t)`` collapses — once each transition is
approximated by its average current ``C·ΔV/Δt`` — into the closed form of
equation (12): a sum of per-level terms proportional to the *difference of
capacitance-to-transition-time ratios* between the two data paths.  A block
with perfectly matched capacitances therefore has a null signature even
though every computation dissipates; any mismatch appears as localised peaks.

Two views are provided:

* :func:`formal_signature` and :func:`signature_terms` — the analytic
  prediction computed from a :class:`~repro.core.power_model.FormalCurrentModel`;
* :func:`signature_from_traces` — the "measured" signature computed from sets
  of simulated (or otherwise acquired) current traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..electrical.waveform import Waveform, average_waveform, difference_waveform
from .power_model import FormalCurrentModel, GateCurrentTerm


@dataclass(frozen=True)
class SignatureTerm:
    """One bracketed term of equation (12).

    Two complementary views of the same per-level mismatch are kept:

    * ``ratio_a`` / ``ratio_b`` — the literal quantities ``V·C/Δt`` of the
      paper's equation (12) for the gates of sets ``S0`` and ``S1``;
    * ``peak_difference`` — the numerically evaluated maximum of
      ``|I_a(t) − I_b(t)|`` over the level's current pulses.  Because
      ``Δt`` itself grows with ``C``, a capacitance mismatch shows up mostly
      as a *time misalignment* of the pulses (the shifted curves of Fig. 7),
      which this value captures while the raw ratio difference may stay
      small.

    ``cap_a_ff`` / ``cap_b_ff`` and ``onset_a_s`` / ``onset_b_s`` expose the
    underlying capacitances and pulse onsets so reports can explain *why* a
    level leaks.
    """

    level: int
    net_a: Optional[str]
    net_b: Optional[str]
    ratio_a: float
    ratio_b: float
    cap_a_ff: float
    cap_b_ff: float
    onset_a_s: float
    onset_b_s: float
    peak_difference: float
    onset_s: float

    @property
    def ratio_difference(self) -> float:
        """The literal equation-(12) bracket: ``V·(Ca/Δta − Cb/Δtb)``."""
        return self.ratio_a - self.ratio_b

    @property
    def difference(self) -> float:
        """Observable signature contribution of this level (amperes)."""
        return self.peak_difference

    @property
    def cap_difference_ff(self) -> float:
        return self.cap_a_ff - self.cap_b_ff

    @property
    def is_balanced(self) -> bool:
        return (np.isclose(self.cap_a_ff, self.cap_b_ff)
                and np.isclose(self.onset_a_s, self.onset_b_s))


@dataclass
class SignatureReport:
    """Full output of the formal signature analysis of one block."""

    block_name: str
    terms: List[SignatureTerm] = field(default_factory=list)
    waveform: Optional[Waveform] = None

    @property
    def max_term(self) -> float:
        """Largest absolute per-level contribution (amperes)."""
        return max((abs(t.difference) for t in self.terms), default=0.0)

    @property
    def is_balanced(self) -> bool:
        return all(t.is_balanced for t in self.terms)

    def dominant_level(self) -> Optional[int]:
        """Level whose capacitance mismatch dominates the signature."""
        if not self.terms:
            return None
        worst = max(self.terms, key=lambda t: abs(t.difference))
        if np.isclose(worst.difference, 0.0):
            return None
        return worst.level


# --------------------------------------------------------------- trace view
def set_average(traces: Sequence[Waveform]) -> Waveform:
    """Equation (8): the average power signal of one DPA set."""
    return average_waveform(list(traces))


def signature_from_traces(set0: Sequence[Waveform], set1: Sequence[Waveform]) -> Waveform:
    """Equations (8)–(9) on measured/simulated traces: ``T = A0 − A1``."""
    return difference_waveform(list(set0), list(set1))


# -------------------------------------------------------------- formal view
def _terms_by_level(terms: Sequence[GateCurrentTerm]) -> Dict[int, List[GateCurrentTerm]]:
    grouped: Dict[int, List[GateCurrentTerm]] = {}
    for term in terms:
        grouped.setdefault(term.level, []).append(term)
    return grouped


def formal_signature(model: FormalCurrentModel, *, value_a: int = 0, value_b: int = 1,
                     dt: Optional[float] = None,
                     duration: Optional[float] = None) -> Waveform:
    """The signature waveform predicted by the formal model.

    ``value_a`` / ``value_b`` select which output value defines the sets
    ``S0`` / ``S1`` of equation (7); for a dual-rail channel these are simply
    the two rails.  The result is the difference of the two predicted current
    profiles (shared terms cancel exactly, as the ``I41`` of the paper does).
    """
    step = dt if dt is not None else model.technology.time_step_s
    end_a = model.profile(value_a, dt=step, duration=duration)
    end_b = model.profile(value_b, dt=step, duration=duration)
    return end_a - end_b


def signature_terms(model: FormalCurrentModel, *, value_a: int = 0,
                    value_b: int = 1,
                    dt: Optional[float] = None) -> SignatureReport:
    """Equation (12): the per-level capacitance-difference decomposition.

    Each level of the two paths contributes a term built from
    ``V · C_a / Δt_a`` and ``V · C_b / Δt_b`` (the literal equation) together
    with the numerically evaluated pulse-difference peak that accounts for the
    time shift a capacitance mismatch induces; shared terms (completion
    detection) contribute nothing.  The report also carries the predicted
    signature waveform.
    """
    vdd = model.technology.vdd
    step = dt if dt is not None else model.technology.time_step_s
    path_a = _terms_by_level(model.paths[value_a].terms)
    path_b = _terms_by_level(model.paths[value_b].terms)
    levels = sorted(set(path_a) | set(path_b))
    terms: List[SignatureTerm] = []
    for level in levels:
        a_terms = path_a.get(level, [])
        b_terms = path_b.get(level, [])
        ratio_a = sum(vdd * t.cap_ff * 1e-15 / t.transition_time_s for t in a_terms)
        ratio_b = sum(vdd * t.cap_ff * 1e-15 / t.transition_time_s for t in b_terms)
        cap_a = sum(t.weight * t.cap_ff for t in a_terms)
        cap_b = sum(t.weight * t.cap_ff for t in b_terms)
        onset_a = min((t.onset_s for t in a_terms), default=0.0)
        onset_b = min((t.onset_s for t in b_terms), default=0.0)

        # Numerical per-level difference: render the level's pulses of both
        # paths on a common time base and take the largest deviation.
        end = max(
            (t.onset_s + t.transition_time_s for t in a_terms + b_terms),
            default=0.0,
        ) + 10 * step
        level_diff = Waveform.zeros(end, step, 0.0)
        for term in a_terms:
            pulse = term.pulse(step, vdd)
            level_diff.add_pulse(pulse.t0, pulse.samples)
        for term in b_terms:
            pulse = term.pulse(step, vdd)
            level_diff.add_pulse(pulse.t0, -pulse.samples)

        onset_candidates = [t.onset_s for t in a_terms + b_terms]
        terms.append(SignatureTerm(
            level=level,
            net_a=a_terms[0].net if a_terms else None,
            net_b=b_terms[0].net if b_terms else None,
            ratio_a=ratio_a,
            ratio_b=ratio_b,
            cap_a_ff=cap_a,
            cap_b_ff=cap_b,
            onset_a_s=onset_a,
            onset_b_s=onset_b,
            peak_difference=level_diff.max_abs(),
            onset_s=min(onset_candidates) if onset_candidates else 0.0,
        ))
    report = SignatureReport(block_name=model.block_name, terms=terms)
    report.waveform = formal_signature(model, value_a=value_a, value_b=value_b)
    return report


def signature_peak_count(signature: Waveform, *, threshold_ratio: float = 0.2,
                         min_separation_s: Optional[float] = None) -> int:
    """Count the distinct peaks of a signature waveform.

    A sample is part of a peak when its absolute value exceeds
    ``threshold_ratio`` times the waveform's maximum; contiguous (or closer
    than ``min_separation_s``) samples count as one peak.  This matches the
    qualitative reading of Fig. 7: one peak when a level-3 net is unbalanced,
    two peaks when a level-2 net is, etc.
    """
    if len(signature.samples) == 0:
        return 0
    maximum = signature.max_abs()
    if maximum == 0.0:
        return 0
    separation = (min_separation_s if min_separation_s is not None
                  else 10 * signature.dt)
    gap_samples = max(1, int(round(separation / signature.dt)))
    above = np.abs(signature.samples) >= threshold_ratio * maximum
    peaks = 0
    last_end = -gap_samples - 1
    index = 0
    n = len(above)
    while index < n:
        if above[index]:
            start = index
            while index < n and above[index]:
                index += 1
            if start - last_end > gap_samples:
                peaks += 1
            last_end = index
        else:
            index += 1
    return peaks


def compare_formal_and_simulated(formal: Waveform, simulated: Waveform) -> float:
    """Normalised cross-correlation between the formal and simulated signatures.

    Returns a value in [-1, 1]; values close to 1 mean the formal model
    predicts the shape of the simulated signature well (the validation claim
    of Section V).
    """
    a = formal.samples
    b = simulated.resample(len(a)).samples if len(simulated) != len(formal) else simulated.samples
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.dot(a, b) / denom)
