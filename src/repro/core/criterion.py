"""The channel dissymmetry criterion of Section VI.

The paper defines, for a dual-rail channel ``A`` whose rails have net
capacitances ``Cl0`` and ``Cl1``,

    ``d_A = |Cl0 − Cl1| / min(Cl0, Cl1)``                    (equation (12'))

"the lower the value of ``d_A``, the more resistant to DPA the chip is".  The
criterion generalises to 1-of-N channels by taking the spread between the
largest and smallest rail capacitance.  Table 2 of the paper reports the most
critical channels (highest criterion) of the AES core for the flat and the
hierarchical place-and-route flows.

This module evaluates the criterion over a netlist whose nets carry channel
annotations and produces Table-2 style reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..circuits.netlist import Net, Netlist


class CriterionError(Exception):
    """Raised on malformed capacitance data."""


def channel_dissymmetry(rail_caps_ff: Sequence[float]) -> float:
    """The dissymmetry criterion for one channel.

    For a dual-rail channel this is exactly the paper's
    ``|Cl0 − Cl1| / min(Cl0, Cl1)``; for wider 1-of-N channels the spread
    between the extreme rails is used, which reduces to the same expression
    when N = 2.
    """
    caps = [float(c) for c in rail_caps_ff]
    if len(caps) < 2:
        raise CriterionError("a channel needs at least two rails")
    if any(c < 0 for c in caps):
        raise CriterionError(f"negative capacitance in {caps}")
    smallest = min(caps)
    largest = max(caps)
    if smallest == 0.0:
        return float("inf") if largest > 0.0 else 0.0
    return (largest - smallest) / smallest


@dataclass(frozen=True)
class ChannelCriterion:
    """Criterion evaluation of one channel."""

    channel: str
    block: str
    bit: Optional[int]
    rail_caps_ff: Tuple[float, ...]
    dissymmetry: float

    @property
    def min_cap_ff(self) -> float:
        return min(self.rail_caps_ff)

    @property
    def max_cap_ff(self) -> float:
        return max(self.rail_caps_ff)

    def describe(self) -> str:
        caps = " | ".join(f"{c:.1f}" for c in self.rail_caps_ff)
        return (f"{self.channel:<40s} block={self.block or '-':<16s} "
                f"caps(fF)=[{caps}] dA={self.dissymmetry:.3f}")


@dataclass
class CriterionReport:
    """Criterion evaluation of every channel of a design."""

    design: str
    channels: List[ChannelCriterion] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.channels)

    def worst(self, count: int = 5) -> List[ChannelCriterion]:
        """The ``count`` channels with the highest criterion (Table 2 rows)."""
        return sorted(self.channels, key=lambda c: c.dissymmetry, reverse=True)[:count]

    @property
    def max_dissymmetry(self) -> float:
        return max((c.dissymmetry for c in self.channels), default=0.0)

    @property
    def mean_dissymmetry(self) -> float:
        if not self.channels:
            return 0.0
        return sum(c.dissymmetry for c in self.channels) / len(self.channels)

    def channels_above(self, threshold: float) -> List[ChannelCriterion]:
        """Channels whose criterion exceeds a bound (the leaky ones)."""
        return [c for c in self.channels if c.dissymmetry > threshold]

    def meets_bound(self, threshold: float) -> bool:
        """True when every channel satisfies ``d_A <= threshold``."""
        return self.max_dissymmetry <= threshold

    def as_table(self, count: int = 5) -> str:
        """Render the worst channels as a Table-2 style text table."""
        lines = [
            f"Design: {self.design} — {len(self.channels)} channels, "
            f"max dA = {self.max_dissymmetry:.3f}, mean dA = {self.mean_dissymmetry:.3f}",
            f"{'channel':<40s} {'block':<18s} {'bit':>4s} "
            f"{'rail caps (fF)':>24s} {'dA':>8s}",
        ]
        for criterion in self.worst(count):
            caps = " | ".join(f"{c:.0f}" for c in criterion.rail_caps_ff)
            bit = "" if criterion.bit is None else str(criterion.bit)
            lines.append(
                f"{criterion.channel:<40s} {criterion.block or '-':<18s} {bit:>4s} "
                f"{caps:>24s} {criterion.dissymmetry:>8.2f}"
            )
        return "\n".join(lines)


def _rail_capacitance(netlist: Netlist, net: Net, use_load_cap: bool) -> float:
    """Capacitance of one rail, read from the annotated netlist.

    All criterion evaluations go through the netlist (never through a raw
    extraction-report lookup): ``load_cap_ff`` raises ``NetlistError`` on an
    unknown net, matching the strict
    :meth:`repro.pnr.extraction.ExtractionReport.cap_of` contract — a
    routing/annotation name mismatch fails loudly instead of reporting a
    phantom ``0.0`` capacitance that would understate the dissymmetry.
    """
    if use_load_cap:
        return netlist.load_cap_ff(net.name)
    return net.routing_cap_ff


def evaluate_channel(netlist: Netlist, channel_name: str, rails: Sequence[Net], *,
                     use_load_cap: bool = True) -> ChannelCriterion:
    """Evaluate the criterion of one channel given its rail nets."""
    caps = tuple(_rail_capacitance(netlist, net, use_load_cap) for net in rails)
    blocks = {net.block for net in rails if net.block}
    bit: Optional[int] = None
    # Channels generated by the bus helpers are named ``<bus>_b<bit>``.
    if "_b" in channel_name:
        suffix = channel_name.rsplit("_b", 1)[-1]
        if suffix.isdigit():
            bit = int(suffix)
    return ChannelCriterion(
        channel=channel_name,
        block=next(iter(blocks)) if blocks else "",
        bit=bit,
        rail_caps_ff=caps,
        dissymmetry=channel_dissymmetry(caps),
    )


def evaluate_netlist_channels(netlist: Netlist, *, use_load_cap: bool = True,
                              design_name: Optional[str] = None) -> CriterionReport:
    """Evaluate the dissymmetry criterion of every channel of a netlist.

    Channels are discovered from the per-net ``channel`` / ``rail``
    annotations; nets without channel annotation are ignored (control and
    acknowledge wires are not data channels).
    """
    report = CriterionReport(design=design_name or netlist.name)
    for channel_name, rails in sorted(netlist.channels().items()):
        if len(rails) < 2:
            continue
        report.channels.append(
            evaluate_channel(netlist, channel_name, rails, use_load_cap=use_load_cap)
        )
    return report


def evaluate_capacitance_map(rail_caps: Mapping[str, Sequence[float]], *,
                             design_name: str = "design") -> CriterionReport:
    """Evaluate the criterion from a plain ``channel → rail capacitances`` map.

    Useful when capacitances come from an external extraction (or from the
    block-level AES model) rather than from a gate-level netlist.
    """
    report = CriterionReport(design=design_name)
    for channel_name in sorted(rail_caps):
        caps = tuple(float(c) for c in rail_caps[channel_name])
        if len(caps) < 2:
            continue
        bit: Optional[int] = None
        if "_b" in channel_name:
            suffix = channel_name.rsplit("_b", 1)[-1]
            if suffix.isdigit():
                bit = int(suffix)
        block = channel_name.split("/", 1)[0] if "/" in channel_name else ""
        report.channels.append(ChannelCriterion(
            channel=channel_name, block=block, bit=bit, rail_caps_ff=caps,
            dissymmetry=channel_dissymmetry(caps),
        ))
    return report


def compare_reports(reference: CriterionReport, improved: CriterionReport,
                    *, count: int = 5) -> str:
    """Side-by-side comparison of two flows (the Table 2 of the paper)."""
    lines = [
        f"{'':<28s} {reference.design:>20s} {improved.design:>20s}",
        f"{'channels':<28s} {len(reference):>20d} {len(improved):>20d}",
        f"{'max dA':<28s} {reference.max_dissymmetry:>20.3f} {improved.max_dissymmetry:>20.3f}",
        f"{'mean dA':<28s} {reference.mean_dissymmetry:>20.3f} {improved.mean_dissymmetry:>20.3f}",
        "",
        f"--- worst channels: {reference.design} ---",
        reference.as_table(count),
        "",
        f"--- worst channels: {improved.design} ---",
        improved.as_table(count),
    ]
    return "\n".join(lines)
