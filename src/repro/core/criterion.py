"""The channel dissymmetry criterion of Section VI.

The paper defines, for a dual-rail channel ``A`` whose rails have net
capacitances ``Cl0`` and ``Cl1``,

    ``d_A = |Cl0 − Cl1| / min(Cl0, Cl1)``                    (equation (12'))

"the lower the value of ``d_A``, the more resistant to DPA the chip is".  The
criterion generalises to 1-of-N channels by taking the spread between the
largest and smallest rail capacitance.  Table 2 of the paper reports the most
critical channels (highest criterion) of the AES core for the flat and the
hierarchical place-and-route flows.

This module evaluates the criterion over a netlist whose nets carry channel
annotations and produces Table-2 style reports.  Evaluation is vectorized:
every report carries a dense ``(channels, max rails)`` capacitance matrix
(NaN-padded for narrower channels) and all aggregates — the dissymmetry
vector, max/mean, bound checks, worst-channel ranking — are O(channels)
numpy expressions over it.  The scalar :func:`channel_dissymmetry` stays the
definitional oracle; the vectorized path is exactly equivalent (same float64
operations, bit-identical results), which the test-suite asserts across the
QDI block library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Net, Netlist


class CriterionError(Exception):
    """Raised on malformed capacitance data."""


def channel_dissymmetry(rail_caps_ff: Sequence[float]) -> float:
    """The dissymmetry criterion for one channel (the scalar oracle).

    For a dual-rail channel this is exactly the paper's
    ``|Cl0 − Cl1| / min(Cl0, Cl1)``; for wider 1-of-N channels the spread
    between the extreme rails is used, which reduces to the same expression
    when N = 2.  A zero-capacitance rail opposite a loaded one yields
    ``inf`` — maximally leaky, never to be averaged away.
    """
    caps = [float(c) for c in rail_caps_ff]
    if len(caps) < 2:
        raise CriterionError("a channel needs at least two rails")
    if any(c < 0 for c in caps):
        raise CriterionError(f"negative capacitance in {caps}")
    smallest = min(caps)
    largest = max(caps)
    if smallest == 0.0:
        return float("inf") if largest > 0.0 else 0.0
    return (largest - smallest) / smallest


def dissymmetry_vector(cap_matrix: np.ndarray, *,
                       validate: bool = True) -> np.ndarray:
    """Vectorized criterion over a dense ``(channels, max rails)`` matrix.

    Rows are channels; entries beyond a channel's rail count are NaN.  The
    result is float64 and **bit-identical** to calling the scalar
    :func:`channel_dissymmetry` row by row: the per-row reduction uses the
    same ``(max − min) / min`` float64 operations, with the same
    zero-capacitance conventions (``0/0 → 0``, ``x/0 → inf``).

    ``validate=False`` skips the shape/NaN/negativity checks — the fast path
    for hot callers (the vectorized placer re-evaluates candidate channel
    rows thousands of times per temperature step against matrices it packed
    itself).
    """
    matrix = np.asarray(cap_matrix, dtype=np.float64)
    if validate:
        if matrix.ndim != 2 or matrix.shape[1] < 2:
            raise CriterionError(
                f"capacitance matrix must be (channels, >=2 rails), "
                f"got shape {matrix.shape}")
        valid = ~np.isnan(matrix)
        if (valid.sum(axis=1) < 2).any():
            raise CriterionError("a channel needs at least two rails")
        if (matrix[valid] < 0).any():
            raise CriterionError("negative capacitance in the matrix")
    smallest = np.nanmin(matrix, axis=1)
    largest = np.nanmax(matrix, axis=1)
    out = np.zeros(matrix.shape[0])
    zero = smallest == 0.0
    np.divide(largest - smallest, smallest, out=out, where=~zero)
    out[zero & (largest > 0.0)] = np.inf
    out[zero & (largest == 0.0)] = 0.0
    return out


def pack_cap_matrix(rail_caps: Sequence[Sequence[float]]) -> np.ndarray:
    """NaN-pad a ragged list of per-channel rail capacitances into a matrix."""
    if not rail_caps:
        return np.empty((0, 2))
    width = max(2, max(len(caps) for caps in rail_caps))
    matrix = np.full((len(rail_caps), width), np.nan)
    for row, caps in enumerate(rail_caps):
        matrix[row, :len(caps)] = caps
    return matrix


@dataclass(frozen=True)
class ChannelCriterion:
    """Criterion evaluation of one channel."""

    channel: str
    block: str
    bit: Optional[int]
    rail_caps_ff: Tuple[float, ...]
    dissymmetry: float

    @property
    def min_cap_ff(self) -> float:
        return min(self.rail_caps_ff)

    @property
    def max_cap_ff(self) -> float:
        return max(self.rail_caps_ff)

    def describe(self) -> str:
        caps = " | ".join(f"{c:.1f}" for c in self.rail_caps_ff)
        return (f"{self.channel:<40s} block={self.block or '-':<16s} "
                f"caps(fF)=[{caps}] dA={self.dissymmetry:.3f}")


def _infer_bit(channel_name: str) -> Optional[int]:
    """Bit index of a ``<bus>_b<bit>`` channel name, or ``None``."""
    if "_b" in channel_name:
        suffix = channel_name.rsplit("_b", 1)[-1]
        if suffix.isdigit():
            return int(suffix)
    return None


@dataclass
class CriterionReport:
    """Criterion evaluation of every channel of a design.

    Aggregates (max/mean dissymmetry, bound checks, worst ranking) are
    computed from a cached dense capacitance matrix and dissymmetry vector,
    rebuilt lazily whenever the channel list grows — per-query cost is one
    O(channels) numpy reduction instead of a Python loop.
    """

    design: str
    channels: List[ChannelCriterion] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cache_len = -1
        self._cap_matrix: Optional[np.ndarray] = None
        self._dissymmetries: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.channels)

    # ------------------------------------------------------------ dense view
    def _refresh_cache(self) -> None:
        if self._cache_len == len(self.channels):
            return
        self._cap_matrix = pack_cap_matrix(
            [c.rail_caps_ff for c in self.channels])
        self._dissymmetries = np.array(
            [c.dissymmetry for c in self.channels], dtype=np.float64)
        self._cache_len = len(self.channels)

    def cap_matrix(self) -> np.ndarray:
        """Dense ``(channels, max rails)`` rail-capacitance matrix (NaN pad)."""
        self._refresh_cache()
        return self._cap_matrix

    def dissymmetries(self) -> np.ndarray:
        """The per-channel criterion values as one float64 vector."""
        self._refresh_cache()
        return self._dissymmetries

    # ------------------------------------------------------------ aggregates
    def worst(self, count: int = 5) -> List[ChannelCriterion]:
        """The ``count`` channels with the highest criterion (Table 2 rows).

        Ties are broken by channel name (ascending), so the ranking is stable
        across runs, seeds and dict insertion orders.
        """
        order = self._ranked_indices()
        return [self.channels[i] for i in order[:count]]

    def _ranked_indices(self) -> List[int]:
        """Channel indices sorted by (dissymmetry desc, channel name asc)."""
        self._refresh_cache()
        values = self._dissymmetries
        names = [c.channel for c in self.channels]
        # np.lexsort sorts ascending by the last key first; negate the
        # criterion for the descending primary order.  ``-inf`` from negating
        # infinite dissymmetries sorts first, as required.
        return list(np.lexsort((names, -values)))

    @property
    def max_dissymmetry(self) -> float:
        self._refresh_cache()
        if self._dissymmetries.size == 0:
            return 0.0
        return float(self._dissymmetries.max())

    @property
    def mean_dissymmetry(self) -> float:
        """Arithmetic mean of the criterion (``inf`` if any channel is).

        An infinite dissymmetry (a zero-capacitance rail opposite a loaded
        one) propagates: a report containing such a channel never averages
        it away into a finite, reassuring mean.
        """
        self._refresh_cache()
        if self._dissymmetries.size == 0:
            return 0.0
        return float(self._dissymmetries.mean())

    def channels_above(self, threshold: float) -> List[ChannelCriterion]:
        """Channels whose criterion exceeds a bound (the leaky ones).

        Ordered worst-first with the same deterministic name tie-breaking as
        :meth:`worst`, so repair passes and reports walk violations in a
        reproducible order.
        """
        self._refresh_cache()
        return [self.channels[i] for i in self._ranked_indices()
                if self._dissymmetries[i] > threshold]

    def violation_count(self, threshold: float) -> int:
        """How many channels exceed the bound (one vector comparison)."""
        self._refresh_cache()
        return int((self._dissymmetries > threshold).sum())

    def meets_bound(self, threshold: float) -> bool:
        """True when every channel satisfies ``d_A <= threshold``."""
        return self.max_dissymmetry <= threshold

    def as_table(self, count: int = 5) -> str:
        """Render the worst channels as a Table-2 style text table."""
        lines = [
            f"Design: {self.design} — {len(self.channels)} channels, "
            f"max dA = {self.max_dissymmetry:.3f}, mean dA = {self.mean_dissymmetry:.3f}",
            f"{'channel':<40s} {'block':<18s} {'bit':>4s} "
            f"{'rail caps (fF)':>24s} {'dA':>8s}",
        ]
        for criterion in self.worst(count):
            caps = " | ".join(f"{c:.0f}" for c in criterion.rail_caps_ff)
            bit = "" if criterion.bit is None else str(criterion.bit)
            lines.append(
                f"{criterion.channel:<40s} {criterion.block or '-':<18s} {bit:>4s} "
                f"{caps:>24s} {criterion.dissymmetry:>8.2f}"
            )
        return "\n".join(lines)


def _rail_capacitance(netlist: Netlist, net: Net, use_load_cap: bool) -> float:
    """Capacitance of one rail, read from the annotated netlist.

    All criterion evaluations go through the netlist (never through a raw
    extraction-report lookup): ``load_cap_ff`` raises ``NetlistError`` on an
    unknown net, matching the strict
    :meth:`repro.pnr.extraction.ExtractionReport.cap_of` contract — a
    routing/annotation name mismatch fails loudly instead of reporting a
    phantom ``0.0`` capacitance that would understate the dissymmetry.
    """
    if use_load_cap:
        return netlist.load_cap_ff(net.name)
    return net.routing_cap_ff


def _report_from_entries(design_name: str,
                         entries: List[Tuple[str, str, Tuple[float, ...]]]
                         ) -> CriterionReport:
    """Build a report from ``(channel, block, caps)`` rows in one shot.

    The dissymmetries of every channel are computed by one vectorized
    :func:`dissymmetry_vector` call over the packed capacitance matrix; the
    scalar definition stays available as the per-channel oracle.
    """
    report = CriterionReport(design=design_name)
    if not entries:
        return report
    values = dissymmetry_vector(pack_cap_matrix([caps for _, _, caps
                                                 in entries]))
    for (channel_name, block, caps), value in zip(entries, values):
        report.channels.append(ChannelCriterion(
            channel=channel_name,
            block=block,
            bit=_infer_bit(channel_name),
            rail_caps_ff=caps,
            dissymmetry=float(value),
        ))
    return report


def _channel_caps_and_block(netlist: Netlist, rails: Sequence[Net],
                            use_load_cap: bool) -> Tuple[Tuple[float, ...], str]:
    """Rail capacitances and owning block of one channel's nets."""
    caps = tuple(_rail_capacitance(netlist, net, use_load_cap) for net in rails)
    blocks = {net.block for net in rails if net.block}
    return caps, (next(iter(blocks)) if blocks else "")


def evaluate_channel(netlist: Netlist, channel_name: str, rails: Sequence[Net], *,
                     use_load_cap: bool = True) -> ChannelCriterion:
    """Evaluate the criterion of one channel given its rail nets."""
    caps, block = _channel_caps_and_block(netlist, rails, use_load_cap)
    return ChannelCriterion(
        channel=channel_name,
        block=block,
        bit=_infer_bit(channel_name),
        rail_caps_ff=caps,
        dissymmetry=channel_dissymmetry(caps),
    )


def evaluate_netlist_channels(netlist: Netlist, *, use_load_cap: bool = True,
                              design_name: Optional[str] = None) -> CriterionReport:
    """Evaluate the dissymmetry criterion of every channel of a netlist.

    Channels are discovered from the per-net ``channel`` / ``rail``
    annotations; nets without channel annotation are ignored (control and
    acknowledge wires are not data channels).
    """
    entries: List[Tuple[str, str, Tuple[float, ...]]] = []
    for channel_name, rails in sorted(netlist.channels().items()):
        if len(rails) < 2:
            continue
        caps, block = _channel_caps_and_block(netlist, rails, use_load_cap)
        entries.append((channel_name, block, caps))
    return _report_from_entries(design_name or netlist.name, entries)


def evaluate_capacitance_map(rail_caps: Mapping[str, Sequence[float]], *,
                             design_name: str = "design") -> CriterionReport:
    """Evaluate the criterion from a plain ``channel → rail capacitances`` map.

    Useful when capacitances come from an external extraction (or from the
    block-level AES model) rather than from a gate-level netlist.
    """
    entries: List[Tuple[str, str, Tuple[float, ...]]] = []
    for channel_name in sorted(rail_caps):
        caps = tuple(float(c) for c in rail_caps[channel_name])
        if len(caps) < 2:
            continue
        block = channel_name.split("/", 1)[0] if "/" in channel_name else ""
        entries.append((channel_name, block, caps))
    return _report_from_entries(design_name, entries)


def compare_reports(reference: CriterionReport, improved: CriterionReport,
                    *, count: int = 5) -> str:
    """Side-by-side comparison of two flows (the Table 2 of the paper)."""
    lines = [
        f"{'':<28s} {reference.design:>20s} {improved.design:>20s}",
        f"{'channels':<28s} {len(reference):>20d} {len(improved):>20d}",
        f"{'max dA':<28s} {reference.max_dissymmetry:>20.3f} {improved.max_dissymmetry:>20.3f}",
        f"{'mean dA':<28s} {reference.mean_dissymmetry:>20.3f} {improved.mean_dissymmetry:>20.3f}",
        "",
        f"--- worst channels: {reference.design} ---",
        reference.as_table(count),
        "",
        f"--- worst channels: {improved.design} ---",
        improved.as_table(count),
    ]
    return "\n".join(lines)
