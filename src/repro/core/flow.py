"""The secure design flow of Section VI.

The paper derives, from the formal analysis, "a complete design flow ...
to minimize the information leakage":

1. design the logic with balanced 1-of-N encoded data paths (checked with the
   graph symmetry analysis of Section III);
2. place and route **hierarchically**, constraining the cells of every block
   into a fence of the floorplan;
3. extract the net capacitances and evaluate the dissymmetry criterion of
   every channel;
4. iterate (tighter fences, different seed) until every channel satisfies the
   required bound.

:func:`run_secure_flow` executes steps 2–4 on any channel-annotated netlist;
:func:`compare_flat_vs_hierarchical` runs the reference flat flow alongside
for the Table-2 style comparison.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..crypto.keys import PlaintextGenerator
from ..electrical.noise import NoiseModel
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..pnr.flows import PlacedDesign, run_flat_flow, run_hierarchical_flow
from .cpa import (
    AttackKernel,
    CpaKernel,
    DpaKernel,
    SecondOrderKernel,
    run_attack,
)
from .criterion import CriterionReport, evaluate_netlist_channels
from .dpa import DPAResult, TraceSet, messages_to_disclosure
from .metrics import AreaReport, area_overhead
from .power_model import (
    HammingDistanceModel,
    HammingWeightModel,
    SelectionBitModel,
)
from .selection import SelectionFunction


@dataclass
class FlowConfig:
    """Knobs of the secure design flow."""

    criterion_bound: float = 0.15
    use_load_cap: bool = True
    seed: int = 0
    block_utilization: float = 0.78
    channel_margin_um: float = 3.0
    effort: float = 1.0
    max_iterations: int = 3
    utilization_step: float = 0.05
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)


@dataclass
class FlowIteration:
    """Outcome of one place-and-route + criterion evaluation pass."""

    index: int
    seed: int
    block_utilization: float
    max_dissymmetry: float
    violations: int
    design: PlacedDesign
    criterion: CriterionReport


@dataclass
class FlowResult:
    """Final outcome of the secure design flow."""

    design: PlacedDesign
    criterion: CriterionReport
    area: AreaReport
    passed: bool
    iterations: List[FlowIteration] = field(default_factory=list)

    @property
    def max_dissymmetry(self) -> float:
        return self.criterion.max_dissymmetry

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.design.name}: max dA = {self.max_dissymmetry:.3f} "
            f"over {len(self.criterion)} channels after {len(self.iterations)} "
            f"iteration(s); die area {self.area.die_area_um2:.0f} um2"
        )


def run_secure_flow(netlist: Netlist, config: Optional[FlowConfig] = None, *,
                    block_order: Optional[Sequence[str]] = None,
                    design_name: Optional[str] = None) -> FlowResult:
    """Run the hierarchical secure flow until the criterion bound is met.

    Every iteration re-places the design with a tighter block utilization (and
    a fresh seed), mirroring how a designer would constrain the floorplan
    further when a channel still violates the bound.  The best iteration (the
    one with the lowest maximum criterion) is returned even when the bound is
    never met within ``max_iterations``.
    """
    config = config if config is not None else FlowConfig()
    iterations: List[FlowIteration] = []
    best: Optional[FlowIteration] = None

    utilization = config.block_utilization
    for index in range(config.max_iterations):
        seed = config.seed + index
        design = run_hierarchical_flow(
            netlist,
            seed=seed,
            technology=config.technology,
            block_utilization=utilization,
            channel_margin_um=config.channel_margin_um,
            effort=config.effort,
            block_order=block_order,
            design_name=design_name or f"{netlist.name}_secure",
        )
        criterion = evaluate_netlist_channels(
            netlist, use_load_cap=config.use_load_cap,
            design_name=design.name,
        )
        iteration = FlowIteration(
            index=index,
            seed=seed,
            block_utilization=utilization,
            max_dissymmetry=criterion.max_dissymmetry,
            violations=len(criterion.channels_above(config.criterion_bound)),
            design=design,
            criterion=criterion,
        )
        iterations.append(iteration)
        if best is None or iteration.max_dissymmetry < best.max_dissymmetry:
            best = iteration
        if criterion.meets_bound(config.criterion_bound):
            break
        # Constrain harder on the next pass.
        utilization = min(0.95, utilization + config.utilization_step)

    assert best is not None
    return FlowResult(
        design=best.design,
        criterion=best.criterion,
        area=best.design.area_report(),
        passed=best.criterion.meets_bound(config.criterion_bound),
        iterations=iterations,
    )


@dataclass
class FlowComparison:
    """Flat-vs-hierarchical comparison (the substance of Table 2)."""

    flat: FlowResult
    hierarchical: FlowResult

    @property
    def area_overhead(self) -> float:
        """Die-area cost of the hierarchical flow (paper: about +20 %)."""
        return area_overhead(self.flat.area, self.hierarchical.area)

    @property
    def criterion_improvement(self) -> float:
        """Ratio of the flat max criterion to the hierarchical one."""
        hier = self.hierarchical.max_dissymmetry
        if hier == 0:
            return float("inf")
        return self.flat.max_dissymmetry / hier

    def summary(self) -> str:
        return (
            f"flat max dA = {self.flat.max_dissymmetry:.3f}, "
            f"hierarchical max dA = {self.hierarchical.max_dissymmetry:.3f} "
            f"(improvement x{self.criterion_improvement:.1f}), "
            f"area overhead {self.area_overhead:+.1%}"
        )


def compare_flat_vs_hierarchical(netlist_factory, *,
                                 config: Optional[FlowConfig] = None,
                                 flat_seed: int = 0,
                                 design_name: str = "design") -> FlowComparison:
    """Run both flows on freshly built netlists and compare them.

    ``netlist_factory`` is a zero-argument callable returning a new netlist
    each time, so that the two flows annotate independent copies (extraction
    mutates net capacitances in place).
    """
    config = config if config is not None else FlowConfig()

    flat_netlist = netlist_factory()
    flat_design = run_flat_flow(
        flat_netlist, seed=flat_seed, technology=config.technology,
        effort=config.effort, design_name=f"{design_name}_v2_flat",
    )
    flat_criterion = evaluate_netlist_channels(
        flat_netlist, use_load_cap=config.use_load_cap,
        design_name=flat_design.name,
    )
    flat_result = FlowResult(
        design=flat_design,
        criterion=flat_criterion,
        area=flat_design.area_report(),
        passed=flat_criterion.meets_bound(config.criterion_bound),
        iterations=[],
    )

    hier_netlist = netlist_factory()
    hier_result = run_secure_flow(hier_netlist, config,
                                  design_name=f"{design_name}_v1_hier")
    return FlowComparison(flat=flat_result, hierarchical=hier_result)


# ----------------------------------------------------------- attack campaign
#: A callable producing a :class:`TraceSet` for a list of plaintexts under an
#: optional noise model — the generic design entry of :class:`AttackCampaign`
#: (anything that can be traced, not only placed AES netlists).
TraceSource = Callable[[Sequence[Sequence[int]], Optional[NoiseModel]], TraceSet]


@dataclass
class CampaignDesign:
    """One device under attack: a placed netlist or a custom trace source."""

    label: str
    netlist: Optional[Netlist] = None
    trace_source: Optional[TraceSource] = None


@dataclass
class CampaignSelection:
    """One D function to attack with, and (optionally) the true sub-key."""

    selection: SelectionFunction
    correct_guess: Optional[int] = None


# Kernel builders are small frozen dataclasses (not closures) so a campaign
# configured with standard attacks stays picklable across shard boundaries.
def _leakage_model_for(model: str, selection: SelectionFunction,
                       reference: Optional[int]):
    if model == "bit":
        return SelectionBitModel(selection)
    if model == "hw":
        return HammingWeightModel(selection)
    if model == "hd":
        return HammingDistanceModel(selection, reference)
    raise ValueError(f"unknown CPA leakage model {model!r}; "
                     "expected 'bit', 'hw' or 'hd'")


@dataclass(frozen=True)
class _DpaBuilder:
    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return DpaKernel(selection)


@dataclass(frozen=True)
class _CpaBuilder:
    model: str = "bit"
    reference: Optional[int] = 0

    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return CpaKernel(_leakage_model_for(self.model, selection,
                                            self.reference))


@dataclass(frozen=True)
class _SecondOrderBuilder:
    inner: Callable[[SelectionFunction], AttackKernel]
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    window: Optional[int] = None
    region: Optional[Tuple[int, ...]] = None

    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return SecondOrderKernel(self.inner(selection), pairs=self.pairs,
                                 window=self.window, region=self.region)


@dataclass
class CampaignAttack:
    """One attack family of the grid: a label plus a selection → kernel map."""

    label: str
    build: Callable[[SelectionFunction], AttackKernel]


#: Sentinel distinguishing "option not passed" from meaningful values (e.g.
#: ``reference=None`` selects the plaintext-byte Hamming-distance reference).
_UNSET = object()


def standard_attack(kind: str = "dpa", *, label: Optional[str] = None,
                    model=_UNSET, reference=_UNSET, pairs=_UNSET,
                    window=_UNSET, region=_UNSET) -> CampaignAttack:
    """The attack families the campaign provides out of the box.

    ``kind`` is ``"dpa"`` (difference of means, Section IV), ``"cpa"``
    (Pearson correlation against the ``model`` leakage: ``"bit"``, ``"hw"``
    or ``"hd"`` with ``reference``), or their centered-product second-order
    forms ``"dpa2"`` / ``"cpa2"`` (restrict the combined samples with
    ``pairs``/``window``/``region``).  Options that do not apply to the
    chosen kind are rejected rather than silently dropped.
    """
    def reject_unused(**named) -> None:
        for name, value in named.items():
            if value is not _UNSET:
                raise ValueError(
                    f"option {name!r} does not apply to attack kind {kind!r}")

    model_value = "bit" if model is _UNSET else model
    reference_value = 0 if reference is _UNSET else reference
    frozen_pairs = (tuple((int(j), int(k)) for j, k in pairs)
                    if pairs not in (_UNSET, None) else None)
    frozen_window = window if window is not _UNSET else None
    frozen_region = (tuple(int(c) for c in region)
                     if region not in (_UNSET, None) else None)
    if kind == "dpa":
        reject_unused(model=model, reference=reference, pairs=pairs,
                      window=window, region=region)
        return CampaignAttack(label or "dpa", _DpaBuilder())
    if kind == "cpa":
        reject_unused(pairs=pairs, window=window, region=region)
        return CampaignAttack(label or f"cpa-{model_value}",
                              _CpaBuilder(model_value, reference_value))
    if kind in ("dpa2", "cpa2"):
        if kind == "dpa2":
            reject_unused(model=model, reference=reference)
            inner = _DpaBuilder()
            default = "dpa2"
        else:
            inner = _CpaBuilder(model_value, reference_value)
            default = f"cpa2-{model_value}"
        return CampaignAttack(label or default,
                              _SecondOrderBuilder(inner, frozen_pairs,
                                                  frozen_window,
                                                  frozen_region))
    raise ValueError(f"unknown attack kind {kind!r}; "
                     "expected 'dpa', 'cpa', 'dpa2' or 'cpa2'")


@dataclass
class CampaignRow:
    """Outcome of one (design × attack × selection × noise) scenario."""

    design: str
    selection: str
    attack: str
    noise: str
    trace_count: int
    best_guess: int
    best_peak: float
    correct_guess: Optional[int] = None
    rank_of_correct: Optional[int] = None
    discrimination: Optional[float] = None
    disclosure: Optional[int] = None
    result: Optional[DPAResult] = None

    @property
    def disclosed(self) -> bool:
        return self.rank_of_correct == 1


@dataclass
class CampaignResult:
    """All scenario rows of one campaign run, plus the comparison table."""

    rows: List[CampaignRow] = field(default_factory=list)

    def row(self, design: str, *, selection: Optional[str] = None,
            attack: Optional[str] = None,
            noise: Optional[str] = None) -> CampaignRow:
        for row in self.rows:
            if row.design != design:
                continue
            if selection is not None and row.selection != selection:
                continue
            if attack is not None and row.attack != attack:
                continue
            if noise is not None and row.noise != noise:
                continue
            return row
        raise KeyError(f"no campaign row for design={design!r}, "
                       f"selection={selection!r}, attack={attack!r}, "
                       f"noise={noise!r}")

    def table(self) -> str:
        """One comparison table over every scenario of the campaign."""
        header = (f"{'design':<28s} {'selection':<30s} {'attack':<10s} "
                  f"{'noise':<12s} "
                  f"{'traces':>7s} {'peak':>10s} {'best':>6s} {'true':>6s} "
                  f"{'rank':>5s} {'discr':>7s} {'MTD':>6s}")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            true_text = f"{row.correct_guess:#04x}" if row.correct_guess is not None else "-"
            rank_text = str(row.rank_of_correct) if row.rank_of_correct is not None else "-"
            discr_text = (f"{row.discrimination:.2f}"
                          if row.discrimination not in (None, float("inf"))
                          else ("inf" if row.discrimination is not None else "-"))
            mtd_text = str(row.disclosure) if row.disclosure is not None else "-"
            lines.append(
                f"{row.design:<28s} {row.selection:<30s} {row.attack:<10s} "
                f"{row.noise:<12s} "
                f"{row.trace_count:>7d} {row.best_peak:>10.3e} {row.best_guess:>#6x} "
                f"{true_text:>6s} {rank_text:>5s} {discr_text:>7s} {mtd_text:>6s}"
            )
        return "\n".join(lines)


class AttackCampaign:
    """Orchestrates batched DPA attacks over designs × selections × noise.

    The campaign is the single entry point of the end-to-end evaluation: it
    generates each design's traces once per noise level through the batched
    trace engine (:meth:`AesPowerTraceGenerator.trace_batch`), runs the
    vectorized multi-guess attack of :func:`repro.core.dpa.dpa_attack` for
    every selection function, computes messages-to-disclosure incrementally,
    and emits one comparison table — the Table-2-style flat-vs-hierarchical
    statement, extended to arbitrary scenario grids.

    Parameters
    ----------
    key:
        The device key (needed for netlist designs; optional for custom trace
        sources).  When a selection exposes ``byte_index``, the true sub-key
        byte is derived from it automatically.
    architecture, technology, generator_config:
        Forwarded to the AES trace generator for netlist designs.
    guesses:
        Optional common guess subset (default: each selection's full space).
    mtd_start, mtd_step, stable_runs:
        Parameters of the messages-to-disclosure sweep.
    """

    def __init__(self, key: Optional[Sequence[int]] = None, *,
                 architecture=None,
                 technology: Technology = HCMOS9_LIKE,
                 generator_config=None,
                 guesses: Optional[Sequence[int]] = None,
                 mtd_start: int = 16, mtd_step: int = 16,
                 stable_runs: int = 1):
        self.key = list(key) if key is not None else None
        self.architecture = architecture
        self.technology = technology
        self.generator_config = generator_config
        self.guesses = list(guesses) if guesses is not None else None
        self.mtd_start = mtd_start
        self.mtd_step = mtd_step
        self.stable_runs = stable_runs
        self._designs: List[CampaignDesign] = []
        self._selections: List[CampaignSelection] = []
        self._attacks: List[CampaignAttack] = []
        self._noises: List[tuple] = []

    # ------------------------------------------------------------- scenario
    def add_design(self, label: str, netlist: Optional[Netlist] = None, *,
                   trace_source: Optional[TraceSource] = None) -> "AttackCampaign":
        if (netlist is None) == (trace_source is None):
            raise ValueError("a design needs exactly one of netlist / trace_source")
        if netlist is not None and self.key is None:
            raise ValueError("netlist designs need the campaign key to trace")
        self._designs.append(CampaignDesign(label, netlist, trace_source))
        return self

    def add_selection(self, selection: SelectionFunction, *,
                      correct_guess: Optional[int] = None) -> "AttackCampaign":
        if correct_guess is None and self.key is not None:
            byte_index = getattr(selection, "byte_index", None)
            if byte_index is not None:
                correct_guess = self.key[byte_index]
        self._selections.append(CampaignSelection(selection, correct_guess))
        return self

    def add_attack(self, attack="dpa", *, label: Optional[str] = None,
                   **options) -> "AttackCampaign":
        """Register an attack family of the grid.

        ``attack`` is a :class:`CampaignAttack`, a standard kind string
        (``"dpa"``, ``"cpa"``, ``"dpa2"``, ``"cpa2"`` — forwarded to
        :func:`standard_attack` with ``options``), or any callable mapping a
        selection function to an attack kernel (``label`` required).  When no
        attack is registered the campaign defaults to plain DPA, so existing
        single-attack campaigns keep their behaviour.
        """
        if isinstance(attack, CampaignAttack):
            self._attacks.append(attack)
        elif isinstance(attack, str):
            self._attacks.append(standard_attack(attack, label=label, **options))
        elif callable(attack):
            if label is None:
                raise ValueError("custom attack builders need an explicit label")
            self._attacks.append(CampaignAttack(label, attack))
        else:
            raise TypeError(f"cannot register {attack!r} as a campaign attack")
        return self

    def add_noise(self, label: str = "noiseless",
                  factory: Optional[Callable[[], NoiseModel]] = None
                  ) -> "AttackCampaign":
        """Register a noise level; ``factory`` builds a fresh model per design
        so every scenario draws from its own reproducible stream."""
        self._noises.append((label, factory))
        return self

    # ------------------------------------------------------------------ run
    def _traces_for(self, design: CampaignDesign,
                    noise: Optional[NoiseModel],
                    plaintexts: Sequence[Sequence[int]]) -> TraceSet:
        if design.trace_source is not None:
            return design.trace_source(plaintexts, noise)
        # Imported lazily: repro.asyncaes itself builds on repro.core.
        from ..asyncaes.tracegen import AesPowerTraceGenerator

        generator = AesPowerTraceGenerator(
            design.netlist, self.key,
            architecture=self.architecture, technology=self.technology,
            noise=noise, config=self.generator_config,
        )
        return generator.trace_batch(plaintexts)

    def _run_scenario(self, scenario: Tuple[str, Optional[Callable], CampaignDesign],
                      plaintexts: Sequence[Sequence[int]], *,
                      attacks: Sequence[CampaignAttack],
                      compute_disclosure: bool,
                      keep_results: bool) -> List[CampaignRow]:
        """One shard: generate a (noise × design) trace set, run every attack.

        The traces are generated once and shared by every (selection ×
        attack) pair of the shard — the trace set caches its sample matrix,
        so each additional attack costs one hypothesis matrix and one
        matmul.
        """
        noise_label, noise_factory, design = scenario
        noise = noise_factory() if noise_factory is not None else None
        traces = self._traces_for(design, noise, plaintexts)
        rows: List[CampaignRow] = []
        for entry in self._selections:
            for attack_spec in attacks:
                kernel = attack_spec.build(entry.selection)
                attack = run_attack(traces, kernel, guesses=self.guesses)
                row = CampaignRow(
                    design=design.label,
                    selection=entry.selection.name,
                    attack=attack_spec.label,
                    noise=noise_label,
                    trace_count=len(traces),
                    best_guess=attack.best_guess,
                    best_peak=attack.best_peak,
                    correct_guess=entry.correct_guess,
                )
                if entry.correct_guess is not None:
                    row.rank_of_correct = attack.rank_of(entry.correct_guess)
                    row.discrimination = attack.discrimination_ratio(
                        entry.correct_guess)
                    if compute_disclosure:
                        row.disclosure = messages_to_disclosure(
                            traces, kernel, entry.correct_guess,
                            guesses=self.guesses,
                            start=self.mtd_start, step=self.mtd_step,
                            stable_runs=self.stable_runs,
                        )
                if keep_results:
                    row.result = attack
                rows.append(row)
        return rows

    def _run_sharded(self, scenarios: List[tuple],
                     plaintexts: Sequence[Sequence[int]],
                     workers: int, options: Dict[str, bool]
                     ) -> List[List[CampaignRow]]:
        """Fan the scenario list over a forked worker pool, order-preserving.

        Each worker re-generates its own shard's traces (per-shard trace
        generation: nothing but the scenario index crosses the process
        boundary on the way in, so unpicklable netlists, trace sources and
        noise factories all work), and ships back plain result rows.  Falls
        back to the serial path when ``fork`` is unavailable — the results
        are identical either way, only the wall-clock changes.
        """
        if "fork" not in multiprocessing.get_all_start_methods():
            return [self._run_scenario(scenario, plaintexts, **options)
                    for scenario in scenarios]
        global _SHARD_STATE
        context = multiprocessing.get_context("fork")
        _SHARD_STATE = (self, scenarios, plaintexts, options)
        try:
            with context.Pool(processes=min(workers, len(scenarios))) as pool:
                return pool.map(_scenario_shard_worker, range(len(scenarios)),
                                chunksize=1)
        finally:
            _SHARD_STATE = None

    def run(self, trace_count: Optional[int] = None, *,
            plaintexts: Optional[Sequence[Sequence[int]]] = None,
            seed: int = 0, compute_disclosure: bool = True,
            keep_results: bool = False, workers: int = 1) -> CampaignResult:
        """Run every (design × attack × selection × noise) scenario of the grid.

        Traces are generated once per design and noise level and shared by
        all selection functions and attack kernels.  With ``workers > 1`` the
        (noise × design) scenarios — the units that own a trace generation —
        are sharded across a ``fork``-based process pool; every shard
        generates its own traces and the merged table is *identical* to the
        serial one (same plaintexts, same per-scenario noise streams, same
        row order), so sharding is purely a wall-clock knob.
        """
        if not self._designs:
            raise ValueError("campaign has no designs; call add_design first")
        if not self._selections:
            raise ValueError("campaign has no selection functions; "
                             "call add_selection first")
        # Defaults are applied locally so run() never mutates the campaign's
        # configured grid.
        attacks = list(self._attacks) or [standard_attack("dpa")]
        noises = list(self._noises) or [("noiseless", None)]
        if plaintexts is None:
            if trace_count is None:
                raise ValueError("need trace_count or explicit plaintexts")
            plaintexts = PlaintextGenerator(block_size=16, seed=seed).batch(trace_count)
        plaintexts = [list(p) for p in plaintexts]
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

        scenarios = [(noise_label, noise_factory, design)
                     for noise_label, noise_factory in noises
                     for design in self._designs]
        options = dict(attacks=attacks,
                       compute_disclosure=compute_disclosure,
                       keep_results=keep_results)
        if workers > 1 and len(scenarios) > 1:
            shard_rows = self._run_sharded(scenarios, plaintexts, workers,
                                           options)
        else:
            shard_rows = [self._run_scenario(scenario, plaintexts, **options)
                          for scenario in scenarios]

        campaign = CampaignResult()
        for rows in shard_rows:
            campaign.rows.extend(rows)
        return campaign


#: Campaign state inherited by forked shard workers (set around the pool's
#: lifetime only).  Passing the index alone keeps the inbound task payload
#: trivially picklable; the forked child reads everything else from its
#: copy-on-write memory image.
_SHARD_STATE: Optional[tuple] = None


def _scenario_shard_worker(index: int) -> List[CampaignRow]:
    campaign, scenarios, plaintexts, options = _SHARD_STATE
    return campaign._run_scenario(scenarios[index], plaintexts, **options)
