"""The secure design flow of Section VI.

The paper derives, from the formal analysis, "a complete design flow ...
to minimize the information leakage":

1. design the logic with balanced 1-of-N encoded data paths (checked with the
   graph symmetry analysis of Section III);
2. place and route **hierarchically**, constraining the cells of every block
   into a fence of the floorplan;
3. extract the net capacitances and evaluate the dissymmetry criterion of
   every channel;
4. iterate (tighter fences, different seed) until every channel satisfies the
   required bound.

:func:`run_secure_flow` executes steps 2–4 on any channel-annotated netlist;
:func:`compare_flat_vs_hierarchical` runs the reference flat flow alongside
for the Table-2 style comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..pnr.flows import PlacedDesign, run_flat_flow, run_hierarchical_flow
from .criterion import CriterionReport, evaluate_netlist_channels
from .metrics import AreaReport, area_overhead


@dataclass
class FlowConfig:
    """Knobs of the secure design flow."""

    criterion_bound: float = 0.15
    use_load_cap: bool = True
    seed: int = 0
    block_utilization: float = 0.78
    channel_margin_um: float = 3.0
    effort: float = 1.0
    max_iterations: int = 3
    utilization_step: float = 0.05
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)


@dataclass
class FlowIteration:
    """Outcome of one place-and-route + criterion evaluation pass."""

    index: int
    seed: int
    block_utilization: float
    max_dissymmetry: float
    violations: int
    design: PlacedDesign
    criterion: CriterionReport


@dataclass
class FlowResult:
    """Final outcome of the secure design flow."""

    design: PlacedDesign
    criterion: CriterionReport
    area: AreaReport
    passed: bool
    iterations: List[FlowIteration] = field(default_factory=list)

    @property
    def max_dissymmetry(self) -> float:
        return self.criterion.max_dissymmetry

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.design.name}: max dA = {self.max_dissymmetry:.3f} "
            f"over {len(self.criterion)} channels after {len(self.iterations)} "
            f"iteration(s); die area {self.area.die_area_um2:.0f} um2"
        )


def run_secure_flow(netlist: Netlist, config: Optional[FlowConfig] = None, *,
                    block_order: Optional[Sequence[str]] = None,
                    design_name: Optional[str] = None) -> FlowResult:
    """Run the hierarchical secure flow until the criterion bound is met.

    Every iteration re-places the design with a tighter block utilization (and
    a fresh seed), mirroring how a designer would constrain the floorplan
    further when a channel still violates the bound.  The best iteration (the
    one with the lowest maximum criterion) is returned even when the bound is
    never met within ``max_iterations``.
    """
    config = config if config is not None else FlowConfig()
    iterations: List[FlowIteration] = []
    best: Optional[FlowIteration] = None

    utilization = config.block_utilization
    for index in range(config.max_iterations):
        seed = config.seed + index
        design = run_hierarchical_flow(
            netlist,
            seed=seed,
            technology=config.technology,
            block_utilization=utilization,
            channel_margin_um=config.channel_margin_um,
            effort=config.effort,
            block_order=block_order,
            design_name=design_name or f"{netlist.name}_secure",
        )
        criterion = evaluate_netlist_channels(
            netlist, use_load_cap=config.use_load_cap,
            design_name=design.name,
        )
        iteration = FlowIteration(
            index=index,
            seed=seed,
            block_utilization=utilization,
            max_dissymmetry=criterion.max_dissymmetry,
            violations=len(criterion.channels_above(config.criterion_bound)),
            design=design,
            criterion=criterion,
        )
        iterations.append(iteration)
        if best is None or iteration.max_dissymmetry < best.max_dissymmetry:
            best = iteration
        if criterion.meets_bound(config.criterion_bound):
            break
        # Constrain harder on the next pass.
        utilization = min(0.95, utilization + config.utilization_step)

    assert best is not None
    return FlowResult(
        design=best.design,
        criterion=best.criterion,
        area=best.design.area_report(),
        passed=best.criterion.meets_bound(config.criterion_bound),
        iterations=iterations,
    )


@dataclass
class FlowComparison:
    """Flat-vs-hierarchical comparison (the substance of Table 2)."""

    flat: FlowResult
    hierarchical: FlowResult

    @property
    def area_overhead(self) -> float:
        """Die-area cost of the hierarchical flow (paper: about +20 %)."""
        return area_overhead(self.flat.area, self.hierarchical.area)

    @property
    def criterion_improvement(self) -> float:
        """Ratio of the flat max criterion to the hierarchical one."""
        hier = self.hierarchical.max_dissymmetry
        if hier == 0:
            return float("inf")
        return self.flat.max_dissymmetry / hier

    def summary(self) -> str:
        return (
            f"flat max dA = {self.flat.max_dissymmetry:.3f}, "
            f"hierarchical max dA = {self.hierarchical.max_dissymmetry:.3f} "
            f"(improvement x{self.criterion_improvement:.1f}), "
            f"area overhead {self.area_overhead:+.1%}"
        )


def compare_flat_vs_hierarchical(netlist_factory, *,
                                 config: Optional[FlowConfig] = None,
                                 flat_seed: int = 0,
                                 design_name: str = "design") -> FlowComparison:
    """Run both flows on freshly built netlists and compare them.

    ``netlist_factory`` is a zero-argument callable returning a new netlist
    each time, so that the two flows annotate independent copies (extraction
    mutates net capacitances in place).
    """
    config = config if config is not None else FlowConfig()

    flat_netlist = netlist_factory()
    flat_design = run_flat_flow(
        flat_netlist, seed=flat_seed, technology=config.technology,
        effort=config.effort, design_name=f"{design_name}_v2_flat",
    )
    flat_criterion = evaluate_netlist_channels(
        flat_netlist, use_load_cap=config.use_load_cap,
        design_name=flat_design.name,
    )
    flat_result = FlowResult(
        design=flat_design,
        criterion=flat_criterion,
        area=flat_design.area_report(),
        passed=flat_criterion.meets_bound(config.criterion_bound),
        iterations=[],
    )

    hier_netlist = netlist_factory()
    hier_result = run_secure_flow(hier_netlist, config,
                                  design_name=f"{design_name}_v1_hier")
    return FlowComparison(flat=flat_result, hierarchical=hier_result)
