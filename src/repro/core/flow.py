"""The secure design flow of Section VI.

The paper derives, from the formal analysis, "a complete design flow ...
to minimize the information leakage":

1. design the logic with balanced 1-of-N encoded data paths (checked with the
   graph symmetry analysis of Section III);
2. place and route **hierarchically**, constraining the cells of every block
   into a fence of the floorplan;
3. extract the net capacitances and evaluate the dissymmetry criterion of
   every channel;
4. iterate (tighter fences, different seed) until every channel satisfies the
   required bound.

:func:`run_secure_flow` executes steps 2–4 on any channel-annotated netlist;
:func:`compare_flat_vs_hierarchical` runs the reference flat flow alongside
for the Table-2 style comparison.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..obs.telemetry import Telemetry, current, use
from ..crypto.keys import PlaintextGenerator
from ..electrical.noise import NoiseModel, apply_noise_matrix, apply_noise_trace
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..pnr.flows import PlacedDesign, run_flat_flow, run_hierarchical_flow
from .cpa import (
    AttackKernel,
    CpaKernel,
    DpaKernel,
    SecondOrderKernel,
    run_attack,
)
from .criterion import CriterionReport, evaluate_netlist_channels
from .dpa import DPAError, DPAResult, TraceSet, messages_to_disclosure
from .metrics import AreaReport, area_overhead
from .power_model import (
    HammingDistanceModel,
    HammingWeightModel,
    SelectionBitModel,
)
from .selection import SelectionFunction

logger = logging.getLogger(__name__)


@dataclass
class FlowConfig:
    """Knobs of the secure design flow."""

    criterion_bound: float = 0.15
    use_load_cap: bool = True
    seed: int = 0
    block_utilization: float = 0.78
    channel_margin_um: float = 3.0
    effort: float = 1.0
    max_iterations: int = 3
    utilization_step: float = 0.05
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)


@dataclass
class FlowIteration:
    """Outcome of one place-and-route + criterion evaluation pass."""

    index: int
    seed: int
    block_utilization: float
    max_dissymmetry: float
    violations: int
    design: PlacedDesign
    criterion: CriterionReport


@dataclass
class FlowResult:
    """Final outcome of the secure design flow."""

    design: PlacedDesign
    criterion: CriterionReport
    area: AreaReport
    passed: bool
    iterations: List[FlowIteration] = field(default_factory=list)

    @property
    def max_dissymmetry(self) -> float:
        return self.criterion.max_dissymmetry

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.design.name}: max dA = {self.max_dissymmetry:.3f} "
            f"over {len(self.criterion)} channels after {len(self.iterations)} "
            f"iteration(s); die area {self.area.die_area_um2:.0f} um2"
        )


def run_secure_flow(netlist: Netlist, config: Optional[FlowConfig] = None, *,
                    block_order: Optional[Sequence[str]] = None,
                    design_name: Optional[str] = None) -> FlowResult:
    """Run the hierarchical secure flow until the criterion bound is met.

    Every iteration re-places the design with a tighter block utilization (and
    a fresh seed), mirroring how a designer would constrain the floorplan
    further when a channel still violates the bound.  The best iteration (the
    one with the lowest maximum criterion) is returned even when the bound is
    never met within ``max_iterations``.
    """
    config = config if config is not None else FlowConfig()
    iterations: List[FlowIteration] = []
    best: Optional[FlowIteration] = None

    utilization = config.block_utilization
    for index in range(config.max_iterations):
        seed = config.seed + index
        design = run_hierarchical_flow(
            netlist,
            seed=seed,
            technology=config.technology,
            block_utilization=utilization,
            channel_margin_um=config.channel_margin_um,
            effort=config.effort,
            block_order=block_order,
            design_name=design_name or f"{netlist.name}_secure",
        )
        criterion = evaluate_netlist_channels(
            netlist, use_load_cap=config.use_load_cap,
            design_name=design.name,
        )
        iteration = FlowIteration(
            index=index,
            seed=seed,
            block_utilization=utilization,
            max_dissymmetry=criterion.max_dissymmetry,
            violations=len(criterion.channels_above(config.criterion_bound)),
            design=design,
            criterion=criterion,
        )
        iterations.append(iteration)
        if best is None or iteration.max_dissymmetry < best.max_dissymmetry:
            best = iteration
        if criterion.meets_bound(config.criterion_bound):
            break
        # Constrain harder on the next pass.
        utilization = min(0.95, utilization + config.utilization_step)

    assert best is not None
    return FlowResult(
        design=best.design,
        criterion=best.criterion,
        area=best.design.area_report(),
        passed=best.criterion.meets_bound(config.criterion_bound),
        iterations=iterations,
    )


@dataclass
class FlowComparison:
    """Flat-vs-hierarchical comparison (the substance of Table 2)."""

    flat: FlowResult
    hierarchical: FlowResult

    @property
    def area_overhead(self) -> float:
        """Die-area cost of the hierarchical flow (paper: about +20 %)."""
        return area_overhead(self.flat.area, self.hierarchical.area)

    @property
    def criterion_improvement(self) -> float:
        """Ratio of the flat max criterion to the hierarchical one."""
        hier = self.hierarchical.max_dissymmetry
        if hier == 0:
            return float("inf")
        return self.flat.max_dissymmetry / hier

    def summary(self) -> str:
        return (
            f"flat max dA = {self.flat.max_dissymmetry:.3f}, "
            f"hierarchical max dA = {self.hierarchical.max_dissymmetry:.3f} "
            f"(improvement x{self.criterion_improvement:.1f}), "
            f"area overhead {self.area_overhead:+.1%}"
        )


def compare_flat_vs_hierarchical(netlist_factory, *,
                                 config: Optional[FlowConfig] = None,
                                 flat_seed: int = 0,
                                 design_name: str = "design") -> FlowComparison:
    """Run both flows on freshly built netlists and compare them.

    ``netlist_factory`` is a zero-argument callable returning a new netlist
    each time, so that the two flows annotate independent copies (extraction
    mutates net capacitances in place).
    """
    config = config if config is not None else FlowConfig()

    flat_netlist = netlist_factory()
    flat_design = run_flat_flow(
        flat_netlist, seed=flat_seed, technology=config.technology,
        effort=config.effort, design_name=f"{design_name}_v2_flat",
    )
    flat_criterion = evaluate_netlist_channels(
        flat_netlist, use_load_cap=config.use_load_cap,
        design_name=flat_design.name,
    )
    flat_result = FlowResult(
        design=flat_design,
        criterion=flat_criterion,
        area=flat_design.area_report(),
        passed=flat_criterion.meets_bound(config.criterion_bound),
        iterations=[],
    )

    hier_netlist = netlist_factory()
    hier_result = run_secure_flow(hier_netlist, config,
                                  design_name=f"{design_name}_v1_hier")
    return FlowComparison(flat=flat_result, hierarchical=hier_result)


# ----------------------------------------------------------- attack campaign
#: A callable producing a :class:`TraceSet` for a list of plaintexts under an
#: optional noise model — the generic design entry of :class:`AttackCampaign`
#: (anything that can be traced, not only placed AES netlists).
TraceSource = Callable[[Sequence[Sequence[int]], Optional[NoiseModel]], TraceSet]


@dataclass
class CampaignDesign:
    """One device under attack: a placed netlist or a custom trace source.

    ``source`` selects how a netlist design is traced — ``"analytic"`` for
    the charge-model :class:`AesPowerTraceGenerator`, ``"simulator"`` for the
    event-engine :class:`~repro.asyncaes.simtrace.AesSimulatorTraceGenerator`
    (transfer-schedule replay through committed simulator transitions).
    Custom ``trace_source`` designs ignore it.
    """

    label: str
    netlist: Optional[Netlist] = None
    trace_source: Optional[TraceSource] = None
    source: str = "analytic"


@dataclass
class CampaignSelection:
    """One D function to attack with, and (optionally) the true sub-key."""

    selection: SelectionFunction
    correct_guess: Optional[int] = None


# Kernel builders are small frozen dataclasses (not closures) so a campaign
# configured with standard attacks stays picklable across shard boundaries.
def _leakage_model_for(model: str, selection: SelectionFunction,
                       reference: Optional[int]):
    if model == "bit":
        return SelectionBitModel(selection)
    if model == "hw":
        return HammingWeightModel(selection)
    if model == "hd":
        return HammingDistanceModel(selection, reference)
    raise ValueError(f"unknown CPA leakage model {model!r}; "
                     "expected 'bit', 'hw' or 'hd'")


@dataclass(frozen=True)
class _DpaBuilder:
    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return DpaKernel(selection)


@dataclass(frozen=True)
class _CpaBuilder:
    model: str = "bit"
    reference: Optional[int] = 0

    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return CpaKernel(_leakage_model_for(self.model, selection,
                                            self.reference))


@dataclass(frozen=True)
class _SecondOrderBuilder:
    inner: Callable[[SelectionFunction], AttackKernel]
    pairs: Optional[Tuple[Tuple[int, int], ...]] = None
    window: Optional[int] = None
    region: Optional[Tuple[int, ...]] = None

    def __call__(self, selection: SelectionFunction) -> AttackKernel:
        return SecondOrderKernel(self.inner(selection), pairs=self.pairs,
                                 window=self.window, region=self.region)


@dataclass
class CampaignAttack:
    """One attack family of the grid: a label plus a selection → kernel map."""

    label: str
    build: Callable[[SelectionFunction], AttackKernel]


#: The TVLA detection threshold (|t| > 4.5, see :mod:`repro.assess.tvla`).
_TVLA_THRESHOLD = 4.5

#: Offset applied to the campaign seed to derive the independent plaintext
#: stream of the fixed-vs-random (TVLA) acquisition.
_TVLA_SEED_OFFSET = 0x7F4A


@dataclass
class CampaignAssessment:
    """One leakage-assessment family of the grid (attack-independent).

    ``kind`` is ``"tvla"`` (non-specific fixed-vs-random Welch t-test),
    ``"tvla-specific"`` (t-test partitioned by a known-key intermediate bit)
    or ``"snr"`` (per-sample SNR partitioned by the intermediate value);
    the specific kinds carry the selection function naming the intermediate
    and the true key value it is evaluated at.
    """

    label: str
    kind: str
    selection: Optional[SelectionFunction] = None
    key_value: Optional[int] = None
    threshold: float = _TVLA_THRESHOLD
    classes: str = "value"
    fixed_plaintext: Optional[Tuple[int, ...]] = None


@dataclass
class AssessmentRow:
    """Outcome of one (design × assessment × noise) scenario."""

    design: str
    assessment: str
    noise: str
    trace_count: int
    statistic: str
    peak: float
    threshold: Optional[float] = None
    flagged: Optional[bool] = None
    n0: Optional[int] = None
    n1: Optional[int] = None
    result: Optional[object] = None

    @property
    def leaks(self) -> Optional[bool]:
        return self.flagged


@dataclass
class _OffsetNoise(NoiseModel):
    """Shift a noise model's stream indices by a fixed offset.

    Handed to custom trace sources by the chunked campaign paths so that the
    noise of chunk row ``i`` is the global-stream draw ``offset + i`` — the
    property that makes streaming runs sample-identical to in-memory ones.
    """

    inner: NoiseModel
    offset: int

    def __post_init__(self) -> None:
        self._counter = 0

    def apply(self, waveform) -> "object":
        index = self.offset + self._counter
        self._counter += 1
        return apply_noise_trace(self.inner, waveform, index)

    def apply_matrix(self, matrix, dt: float = 1.0, t0: float = 0.0,
                     start_index: int = 0):
        return apply_noise_matrix(self.inner, matrix, dt, t0,
                                  self.offset + start_index)


#: Sentinel distinguishing "option not passed" from meaningful values (e.g.
#: ``reference=None`` selects the plaintext-byte Hamming-distance reference).
_UNSET = object()


def standard_attack(kind: str = "dpa", *, label: Optional[str] = None,
                    model=_UNSET, reference=_UNSET, pairs=_UNSET,
                    window=_UNSET, region=_UNSET) -> CampaignAttack:
    """The attack families the campaign provides out of the box.

    ``kind`` is ``"dpa"`` (difference of means, Section IV), ``"cpa"``
    (Pearson correlation against the ``model`` leakage: ``"bit"``, ``"hw"``
    or ``"hd"`` with ``reference``), or their centered-product second-order
    forms ``"dpa2"`` / ``"cpa2"`` (restrict the combined samples with
    ``pairs``/``window``/``region``).  Options that do not apply to the
    chosen kind are rejected rather than silently dropped.
    """
    def reject_unused(**named) -> None:
        for name, value in named.items():
            if value is not _UNSET:
                raise ValueError(
                    f"option {name!r} does not apply to attack kind {kind!r}")

    model_value = "bit" if model is _UNSET else model
    reference_value = 0 if reference is _UNSET else reference
    frozen_pairs = (tuple((int(j), int(k)) for j, k in pairs)
                    if pairs not in (_UNSET, None) else None)
    frozen_window = window if window is not _UNSET else None
    frozen_region = (tuple(int(c) for c in region)
                     if region not in (_UNSET, None) else None)
    if kind == "dpa":
        reject_unused(model=model, reference=reference, pairs=pairs,
                      window=window, region=region)
        return CampaignAttack(label or "dpa", _DpaBuilder())
    if kind == "cpa":
        reject_unused(pairs=pairs, window=window, region=region)
        return CampaignAttack(label or f"cpa-{model_value}",
                              _CpaBuilder(model_value, reference_value))
    if kind in ("dpa2", "cpa2"):
        if kind == "dpa2":
            reject_unused(model=model, reference=reference)
            inner = _DpaBuilder()
            default = "dpa2"
        else:
            inner = _CpaBuilder(model_value, reference_value)
            default = f"cpa2-{model_value}"
        return CampaignAttack(label or default,
                              _SecondOrderBuilder(inner, frozen_pairs,
                                                  frozen_window,
                                                  frozen_region))
    raise ValueError(f"unknown attack kind {kind!r}; "
                     "expected 'dpa', 'cpa', 'dpa2' or 'cpa2'")


@dataclass
class CampaignRow:
    """Outcome of one (design × attack × selection × noise) scenario."""

    design: str
    selection: str
    attack: str
    noise: str
    trace_count: int
    best_guess: int
    best_peak: float
    correct_guess: Optional[int] = None
    rank_of_correct: Optional[int] = None
    discrimination: Optional[float] = None
    disclosure: Optional[int] = None
    result: Optional[DPAResult] = None

    @property
    def disclosed(self) -> bool:
        return self.rank_of_correct == 1


def _format_metric(value: Optional[float], spec: str = ".2f") -> str:
    """One table cell for a possibly-absent metric.

    The scenario grid produces every degenerate float the attacks can:
    ``None`` (metric does not apply), ``inf`` (runner-up peak exactly zero),
    ``-inf`` (inverted discrimination) and ``NaN`` (0/0 peaks).  All of them
    must render as a short token rather than slip through a numeric format —
    a NaN passing a ``not in (None, inf)`` identity guard is how the old
    formatter printed garbage columns.
    """
    if value is None:
        return "-"
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return format(value, spec)


@dataclass
class CampaignResult:
    """All scenario rows of one campaign run, plus the comparison table.

    Row lookup goes through the columnar query layer of :mod:`repro.store`:
    :meth:`row`/:meth:`assessment_row` accept a partial key but insist it be
    *unique* — several matches raise
    :class:`~repro.store.query.AmbiguousQueryError` naming the candidates
    (the old first-match behaviour silently picked whichever scenario ran
    first).  :meth:`frame`/:meth:`assessment_frame` expose the full frames
    for filtering, aggregation and persistence.
    """

    rows: List[CampaignRow] = field(default_factory=list)
    assessments: List[AssessmentRow] = field(default_factory=list)

    def frame(self):
        """The rows as a columnar :class:`~repro.store.frame.CampaignFrame`
        (rebuilt when the row list grows; ``result`` payloads not included)."""
        from ..store import CampaignFrame

        cached = getattr(self, "_frame_cache", None)
        if cached is None or cached[0] != len(self.rows):
            cached = (len(self.rows),
                      CampaignFrame.from_rows(self.rows, kind="campaign"))
            self._frame_cache = cached
        return cached[1]

    def assessment_frame(self):
        """The assessment rows as a columnar frame (see :meth:`frame`)."""
        from ..store import CampaignFrame

        cached = getattr(self, "_assessment_frame_cache", None)
        if cached is None or cached[0] != len(self.assessments):
            cached = (len(self.assessments),
                      CampaignFrame.from_rows(self.assessments,
                                              kind="assessment"))
            self._assessment_frame_cache = cached
        return cached[1]

    def assessment_row(self, design: str, *,
                       assessment: Optional[str] = None,
                       noise: Optional[str] = None) -> AssessmentRow:
        """The unique assessment row matching the (partial) key.

        Raises ``KeyError`` when nothing matches and
        :class:`~repro.store.query.AmbiguousQueryError` when the key matches
        several rows (the message lists them).
        """
        from ..store import single_row

        criteria = {"design": design}
        if assessment is not None:
            criteria["assessment"] = assessment
        if noise is not None:
            criteria["noise"] = noise
        index = single_row(self.assessment_frame(),
                           ("design", "assessment", "noise"), **criteria)
        return self.assessments[index]

    def assessment_table(self) -> str:
        """One leakage-assessment table over every scenario of the campaign."""
        header = (f"{'design':<28s} {'assessment':<34s} {'noise':<12s} "
                  f"{'traces':>7s} {'statistic':>10s} {'peak':>10s} "
                  f"{'thresh':>7s} {'verdict':>8s}")
        lines = [header, "-" * len(header)]
        for row in self.assessments:
            peak_text = _format_metric(row.peak, ".3e")
            threshold_text = _format_metric(row.threshold)
            if row.flagged is None:
                verdict = "-"
            else:
                verdict = "LEAKS" if row.flagged else "clear"
            lines.append(
                f"{row.design:<28s} {row.assessment:<34s} {row.noise:<12s} "
                f"{row.trace_count:>7d} {row.statistic:>10s} "
                f"{peak_text:>10s} {threshold_text:>7s} {verdict:>8s}"
            )
        return "\n".join(lines)

    def row(self, design: str, *, selection: Optional[str] = None,
            attack: Optional[str] = None,
            noise: Optional[str] = None) -> CampaignRow:
        """The unique campaign row matching the (partial) key.

        Raises ``KeyError`` when nothing matches and
        :class:`~repro.store.query.AmbiguousQueryError` when the key matches
        several rows — e.g. ``row("aes", noise="none")`` on a grid with two
        attacks; the old behaviour returned whichever ran first, which made
        partial-key analyses silently wrong.
        """
        from ..store import single_row

        criteria = {"design": design}
        if selection is not None:
            criteria["selection"] = selection
        if attack is not None:
            criteria["attack"] = attack
        if noise is not None:
            criteria["noise"] = noise
        index = single_row(self.frame(),
                           ("design", "selection", "attack", "noise"),
                           **criteria)
        return self.rows[index]

    def table(self) -> str:
        """One comparison table over every scenario of the campaign."""
        header = (f"{'design':<28s} {'selection':<30s} {'attack':<10s} "
                  f"{'noise':<12s} "
                  f"{'traces':>7s} {'peak':>10s} {'best':>6s} {'true':>6s} "
                  f"{'rank':>5s} {'discr':>7s} {'MTD':>6s}")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            true_text = f"{row.correct_guess:#04x}" if row.correct_guess is not None else "-"
            rank_text = str(row.rank_of_correct) if row.rank_of_correct is not None else "-"
            peak_text = _format_metric(row.best_peak, ".3e")
            discr_text = _format_metric(row.discrimination)
            mtd_text = str(row.disclosure) if row.disclosure is not None else "-"
            lines.append(
                f"{row.design:<28s} {row.selection:<30s} {row.attack:<10s} "
                f"{row.noise:<12s} "
                f"{row.trace_count:>7d} {peak_text:>10s} {row.best_guess:>#6x} "
                f"{true_text:>6s} {rank_text:>5s} {discr_text:>7s} {mtd_text:>6s}"
            )
        return "\n".join(lines)


class AttackCampaign:
    """Orchestrates batched DPA attacks over designs × selections × noise.

    The campaign is the single entry point of the end-to-end evaluation: it
    generates each design's traces once per noise level through the batched
    trace engine (:meth:`AesPowerTraceGenerator.trace_batch`), runs the
    vectorized multi-guess attack of :func:`repro.core.dpa.dpa_attack` for
    every selection function, computes messages-to-disclosure incrementally,
    and emits one comparison table — the Table-2-style flat-vs-hierarchical
    statement, extended to arbitrary scenario grids.

    The **trace source** is a grid dimension of its own: every netlist design
    registers with ``add_design(..., source="analytic")`` (the charge-model
    scatter) or ``source="simulator"`` (transfer-schedule replay through the
    event engine, traces synthesized from committed transitions — see
    :mod:`repro.asyncaes.simtrace`), so the same placed netlist can be
    evaluated under both generation models side by side in one table.

    The **countermeasure layer** is a dimension too:
    :meth:`add_hardening` runs the criterion-driven repair pipeline of
    :mod:`repro.harden` on a netlist and registers the hardened design, so
    the campaign table directly shows what the paper's measure→improve loop
    buys — flat vs hierarchical vs hardened MTD/TVLA rows in one grid.

    Parameters
    ----------
    key:
        The device key (needed for netlist designs; optional for custom trace
        sources).  When a selection exposes ``byte_index``, the true sub-key
        byte is derived from it automatically.
    architecture, technology, generator_config:
        Forwarded to the AES trace generator for netlist designs.
    guesses:
        Optional common guess subset (default: each selection's full space).
    mtd_start, mtd_step, stable_runs:
        Parameters of the messages-to-disclosure sweep.
    """

    def __init__(self, key: Optional[Sequence[int]] = None, *,
                 architecture=None,
                 technology: Technology = HCMOS9_LIKE,
                 generator_config=None,
                 guesses: Optional[Sequence[int]] = None,
                 mtd_start: int = 16, mtd_step: int = 16,
                 stable_runs: int = 1):
        self.key = list(key) if key is not None else None
        self.architecture = architecture
        self.technology = technology
        self.generator_config = generator_config
        self.guesses = list(guesses) if guesses is not None else None
        self.mtd_start = mtd_start
        self.mtd_step = mtd_step
        self.stable_runs = stable_runs
        self._designs: List[CampaignDesign] = []
        self._selections: List[CampaignSelection] = []
        self._attacks: List[CampaignAttack] = []
        self._assessments: List[CampaignAssessment] = []
        self._noises: List[tuple] = []
        self._hardenings: Dict[str, object] = {}

    # ------------------------------------------------------------- scenario
    def add_design(self, label: str, netlist: Optional[Netlist] = None, *,
                   trace_source: Optional[TraceSource] = None,
                   source: str = "analytic") -> "AttackCampaign":
        """Register one device under attack.

        ``source`` is the trace-source dimension of the grid for netlist
        designs: ``"analytic"`` (default) scatters the charge model straight
        from the transfer schedule; ``"simulator"`` replays the schedule as
        rail events through the event simulator and synthesizes the trace
        from committed transitions, so the same netlist can be attacked under
        both generation models in one campaign (add it twice with different
        labels and sources).  Custom ``trace_source`` callables bypass the
        dimension entirely.
        """
        if (netlist is None) == (trace_source is None):
            raise ValueError("a design needs exactly one of netlist / trace_source")
        if netlist is not None and self.key is None:
            raise ValueError("netlist designs need the campaign key to trace")
        if source not in ("analytic", "simulator"):
            raise ValueError(f"unknown trace source {source!r}; "
                             "expected 'analytic' or 'simulator'")
        if trace_source is not None and source != "analytic":
            raise ValueError("source only applies to netlist designs; "
                             "custom trace_source callables are already "
                             "their own source")
        self._designs.append(CampaignDesign(label, netlist, trace_source,
                                            source))
        return self

    def add_hardening(self, label: str, netlist: Netlist, *,
                      base: str = "hierarchical", bound: float = 0.15,
                      seed: int = 0, pipeline=None,
                      source="analytic",
                      **pipeline_options) -> "AttackCampaign":
        """Run the hardening pass pipeline on a netlist and register the
        hardened design as a grid entry — the countermeasure dimension.

        The pipeline (default: the ``base`` flow of
        :func:`repro.harden.pipeline.hardening_pipeline` followed by the
        fence-resize → reposition → dummy-load repair loop, ``bound`` as the
        ``repair-until`` criterion) runs immediately and **in place**: the
        registered design *is* the hardened netlist, traced by the same
        engines as any other design, so one campaign table shows flat vs
        hierarchical vs hardened side by side across attacks, noise levels,
        assessments and trace sources.

        ``source`` is either one trace source (``"analytic"`` /
        ``"simulator"``) or a sequence of them — with several, each source
        becomes its own design row labelled ``label[source]``.  The
        :class:`~repro.harden.pipeline.HardeningResult` provenance is kept
        and returned by :meth:`hardening_result`; extra keyword options are
        forwarded to :func:`~repro.harden.pipeline.hardening_pipeline`.
        """
        # Imported lazily: repro.harden builds on repro.core.criterion.
        from ..harden.pipeline import hardening_pipeline

        if self.key is None:
            raise ValueError("hardened designs need the campaign key to trace")
        if label in self._hardenings:
            raise ValueError(f"duplicate hardening label {label!r}")
        # Validate the whole source list before the (expensive, in-place)
        # pipeline runs, so a typo cannot leave the campaign half-registered
        # with an already-mutated netlist.
        sources = [source] if isinstance(source, str) else list(source)
        if not sources:
            raise ValueError("need at least one trace source")
        for entry in sources:
            if entry not in ("analytic", "simulator"):
                raise ValueError(f"unknown trace source {entry!r}; "
                                 "expected 'analytic' or 'simulator'")
        if pipeline is None:
            pipeline = hardening_pipeline(base, bound=bound,
                                          **pipeline_options)
        elif pipeline_options:
            raise ValueError("pass pipeline options either as an explicit "
                             "pipeline or as keyword options, not both")
        result = pipeline.run(netlist, seed=seed, technology=self.technology,
                              design_name=label)
        self._hardenings[label] = result
        for entry in sources:
            design_label = label if len(sources) == 1 else f"{label}[{entry}]"
            self.add_design(design_label, netlist, source=entry)
        return self

    def hardening_result(self, label: str):
        """The :class:`~repro.harden.pipeline.HardeningResult` of a design."""
        try:
            return self._hardenings[label]
        except KeyError:
            raise KeyError(f"no hardening registered under {label!r}; "
                           f"known: {sorted(self._hardenings)}") from None

    def add_selection(self, selection: SelectionFunction, *,
                      correct_guess: Optional[int] = None) -> "AttackCampaign":
        if correct_guess is None and self.key is not None:
            byte_index = getattr(selection, "byte_index", None)
            if byte_index is not None:
                correct_guess = self.key[byte_index]
        self._selections.append(CampaignSelection(selection, correct_guess))
        return self

    def add_attack(self, attack="dpa", *, label: Optional[str] = None,
                   **options) -> "AttackCampaign":
        """Register an attack family of the grid.

        ``attack`` is a :class:`CampaignAttack`, a standard kind string
        (``"dpa"``, ``"cpa"``, ``"dpa2"``, ``"cpa2"`` — forwarded to
        :func:`standard_attack` with ``options``), or any callable mapping a
        selection function to an attack kernel (``label`` required).  When no
        attack is registered the campaign defaults to plain DPA, so existing
        single-attack campaigns keep their behaviour.
        """
        if isinstance(attack, CampaignAttack):
            self._attacks.append(attack)
        elif isinstance(attack, str):
            self._attacks.append(standard_attack(attack, label=label, **options))
        elif callable(attack):
            if label is None:
                raise ValueError("custom attack builders need an explicit label")
            self._attacks.append(CampaignAttack(label, attack))
        else:
            raise TypeError(f"cannot register {attack!r} as a campaign attack")
        return self

    def add_assessment(self, kind: str = "tvla", *,
                       label: Optional[str] = None,
                       selection: Optional[SelectionFunction] = None,
                       key_value: Optional[int] = None,
                       threshold: float = _TVLA_THRESHOLD,
                       classes: str = "value",
                       fixed_plaintext: Optional[Sequence[int]] = None
                       ) -> "AttackCampaign":
        """Register a leakage-assessment family of the grid.

        ``kind`` is ``"tvla"`` (non-specific fixed-vs-random t-test over its
        own interleaved acquisition), ``"tvla-specific"`` (t-test over the
        attack traces, partitioned by ``selection``'s D bit at the true key)
        or ``"snr"`` (per-sample SNR partitioned by ``selection``'s
        intermediate — raw ``classes="value"`` or Hamming-weight
        ``classes="hw"``).  The specific kinds derive the true sub-key from
        the campaign key via the selection's ``byte_index`` unless
        ``key_value`` is given; ``fixed_plaintext`` pins the non-specific
        fixed class (default: one reproducible draw from the run seed).
        """
        if kind == "tvla":
            if selection is not None or key_value is not None:
                raise ValueError(
                    "the non-specific 'tvla' assessment takes no selection; "
                    "use kind='tvla-specific' to partition by an intermediate"
                )
            self._assessments.append(CampaignAssessment(
                label or "tvla", kind, threshold=threshold,
                fixed_plaintext=(tuple(int(b) for b in fixed_plaintext)
                                 if fixed_plaintext is not None else None),
            ))
            return self
        if kind not in ("tvla-specific", "snr"):
            raise ValueError(f"unknown assessment kind {kind!r}; expected "
                             "'tvla', 'tvla-specific' or 'snr'")
        if fixed_plaintext is not None:
            raise ValueError(f"fixed_plaintext does not apply to {kind!r}")
        if selection is None:
            raise ValueError(f"assessment kind {kind!r} needs a selection "
                             "function naming the intermediate")
        if key_value is None and self.key is not None:
            byte_index = getattr(selection, "byte_index", None)
            if byte_index is not None:
                key_value = self.key[byte_index]
        if key_value is None:
            raise ValueError(
                f"assessment kind {kind!r} needs the true key value of the "
                "intermediate (pass key_value, or give the campaign a key "
                "and a selection exposing byte_index)"
            )
        if kind == "snr":
            default = f"snr[{selection.name},{classes}]"
        else:
            default = f"tvla-specific[{selection.name}]"
        self._assessments.append(CampaignAssessment(
            label or default, kind, selection=selection, key_value=key_value,
            threshold=threshold, classes=classes,
        ))
        return self

    def add_noise(self, label: str = "noiseless",
                  factory: Optional[Callable[[], NoiseModel]] = None
                  ) -> "AttackCampaign":
        """Register a noise level; ``factory`` builds a fresh model per design
        so every scenario draws from its own reproducible stream."""
        self._noises.append((label, factory))
        return self

    # ------------------------------------------------------------------ run
    def _traces_for(self, design: CampaignDesign,
                    noise: Optional[NoiseModel],
                    plaintexts: Sequence[Sequence[int]],
                    noise_start: int = 0) -> TraceSet:
        if design.trace_source is not None:
            if noise is not None and noise_start:
                noise = _OffsetNoise(noise, noise_start)
            return design.trace_source(plaintexts, noise)
        generator = self._generator_for(design, noise)
        return generator.trace_batch(plaintexts, noise_start_index=noise_start)

    def _generator_for(self, design: CampaignDesign,
                       noise: Optional[NoiseModel]):
        """Build the trace generator a netlist design's ``source`` selects."""
        # Imported lazily: repro.asyncaes itself builds on repro.core.
        if design.source == "simulator":
            from ..asyncaes.simtrace import AesSimulatorTraceGenerator

            return AesSimulatorTraceGenerator(
                design.netlist, self.key,
                architecture=self.architecture, technology=self.technology,
                noise=noise, config=self.generator_config,
            )
        from ..asyncaes.tracegen import AesPowerTraceGenerator

        return AesPowerTraceGenerator(
            design.netlist, self.key,
            architecture=self.architecture, technology=self.technology,
            noise=noise, config=self.generator_config,
        )

    def _trace_chunks_for(self, design: CampaignDesign,
                          noise: Optional[NoiseModel],
                          plaintexts: Sequence[Sequence[int]],
                          chunk_size: int, noise_start: int = 0):
        """Bounded-memory chunk stream of one scenario's traces.

        Netlist designs stream through the generator's chunked engine;
        custom trace sources are called once per plaintext block with an
        offset-pinned noise model, so both paths produce exactly the rows of
        the corresponding in-memory :meth:`_traces_for` call.
        """
        if design.trace_source is not None:
            for start in range(0, len(plaintexts), chunk_size):
                block = plaintexts[start:start + chunk_size]
                chunk_noise = (_OffsetNoise(noise, noise_start + start)
                               if noise is not None else None)
                yield design.trace_source(block, chunk_noise)
            return
        generator = self._generator_for(design, noise)
        yield from generator.trace_chunks(plaintexts, chunk_size,
                                          noise_start_index=noise_start)

    # ------------------------------------------------- assessment machinery
    def _value_assessment_states(self, assessments):
        """States of the assessments that ride on the all-random attack pass."""
        from ..assess.snr import StreamingSnr, class_count_for
        from ..assess.tvla import StreamingTTest

        states = []
        for assessment in assessments:
            if assessment.kind == "tvla-specific":
                states.append((assessment, StreamingTTest(
                    threshold=assessment.threshold,
                    partition=f"specific[{assessment.selection.name}]",
                )))
            elif assessment.kind == "snr":
                states.append((assessment, StreamingSnr(
                    class_count_for(assessment.selection, assessment.classes),
                    partition=assessment.label,
                )))
        return states

    @staticmethod
    def _update_value_assessment(assessment, state, matrix, plaintexts):
        from ..assess.snr import intermediate_labels
        from ..assess.tvla import specific_labels

        if assessment.kind == "tvla-specific":
            labels = specific_labels(assessment.selection, plaintexts,
                                     assessment.key_value)
        else:
            labels = intermediate_labels(assessment.selection, plaintexts,
                                         assessment.key_value,
                                         classes=assessment.classes)
        state.update(matrix, labels)

    @staticmethod
    def _assessment_row(design_label, noise_label, assessment, state
                        ) -> AssessmentRow:
        result = state.result()
        if assessment.kind == "snr":
            return AssessmentRow(
                design=design_label, assessment=assessment.label,
                noise=noise_label, trace_count=result.trace_count,
                statistic="max SNR", peak=result.max_snr,
                threshold=None, flagged=None, result=result,
            )
        return AssessmentRow(
            design=design_label, assessment=assessment.label,
            noise=noise_label, trace_count=result.trace_count,
            statistic="max|t|", peak=result.max_abs_t,
            threshold=result.threshold, flagged=result.leaks,
            n0=result.n0, n1=result.n1, result=result,
        )

    def _run_scenario(self, scenario: Tuple[str, Optional[Callable], CampaignDesign],
                      plaintexts: Sequence[Sequence[int]], *,
                      attacks: Sequence[CampaignAttack],
                      assessments: Sequence[CampaignAssessment],
                      tvla_schedule: Optional[tuple],
                      compute_disclosure: bool,
                      keep_results: bool,
                      streaming: bool,
                      chunk_size: Optional[int]
                      ) -> Tuple[List[CampaignRow], List[AssessmentRow]]:
        """One shard: generate a (noise × design) trace set, run every attack
        and assessment.

        The traces are generated once and shared by every (selection ×
        attack × assessment) entry of the shard — the trace set caches its
        sample matrix, so each additional attack costs one hypothesis matrix
        and one matmul.  Non-specific TVLA assessments add one further
        fixed-vs-random acquisition per scenario (their schedule is
        incompatible with the all-random attack traces by construction).
        """
        if streaming:
            telemetry = current()
            with telemetry.span("campaign.scenario", noise=scenario[0],
                                design=scenario[2].label, streaming=True):
                result = self._run_scenario_streaming(
                    scenario, plaintexts, attacks=attacks,
                    assessments=assessments, tvla_schedule=tvla_schedule,
                    compute_disclosure=compute_disclosure,
                    keep_results=keep_results, chunk_size=chunk_size,
                )
                telemetry.record_rss()
                return result
        noise_label, noise_factory, design = scenario
        noise = noise_factory() if noise_factory is not None else None
        value_assessments = [a for a in assessments
                             if a.kind in ("tvla-specific", "snr")]
        fr_assessments = [a for a in assessments if a.kind == "tvla"]
        rows: List[CampaignRow] = []
        assessment_rows: List[AssessmentRow] = []
        telemetry = current()

        with telemetry.span("campaign.scenario", noise=noise_label,
                            design=design.label):
            if self._selections or value_assessments:
                with telemetry.span("campaign.generate"):
                    traces = self._traces_for(design, noise, plaintexts)
                    telemetry.count("traces", len(traces))
                for entry in self._selections:
                    for attack_spec in attacks:
                        with telemetry.span(
                                "campaign.attack",
                                selection=entry.selection.name,
                                attack=attack_spec.label):
                            telemetry.count("attacks")
                            kernel = attack_spec.build(entry.selection)
                            attack = run_attack(traces, kernel,
                                                guesses=self.guesses)
                            row = CampaignRow(
                                design=design.label,
                                selection=entry.selection.name,
                                attack=attack_spec.label,
                                noise=noise_label,
                                trace_count=len(traces),
                                best_guess=attack.best_guess,
                                best_peak=attack.best_peak,
                                correct_guess=entry.correct_guess,
                            )
                            if entry.correct_guess is not None:
                                row.rank_of_correct = attack.rank_of(
                                    entry.correct_guess)
                                row.discrimination = \
                                    attack.discrimination_ratio(
                                        entry.correct_guess)
                                if compute_disclosure:
                                    row.disclosure = messages_to_disclosure(
                                        traces, kernel, entry.correct_guess,
                                        guesses=self.guesses,
                                        start=self.mtd_start,
                                        step=self.mtd_step,
                                        stable_runs=self.stable_runs,
                                    )
                            if keep_results:
                                row.result = attack
                            rows.append(row)
                if value_assessments:
                    with telemetry.span("campaign.assess", kind="value",
                                        assessments=len(value_assessments)):
                        matrix = traces.matrix()
                        trace_plaintexts = traces.plaintexts()
                        for assessment, state in self._value_assessment_states(
                                value_assessments):
                            self._update_value_assessment(
                                assessment, state, matrix, trace_plaintexts)
                            assessment_rows.append(self._assessment_row(
                                design.label, noise_label, assessment, state))

            if fr_assessments:
                from ..assess.tvla import StreamingTTest

                with telemetry.span("campaign.assess", kind="tvla",
                                    assessments=len(fr_assessments)):
                    tvla_plaintexts, labels = tvla_schedule
                    tvla_traces = self._traces_for(
                        design, noise, tvla_plaintexts,
                        noise_start=len(plaintexts))
                    telemetry.count("traces", len(tvla_traces))
                    matrix = tvla_traces.matrix()
                    for assessment in fr_assessments:
                        state = StreamingTTest(threshold=assessment.threshold)
                        state.update(matrix, labels)
                        assessment_rows.append(self._assessment_row(
                            design.label, noise_label, assessment, state))
            telemetry.record_rss()
        return rows, assessment_rows

    def _run_scenario_streaming(self, scenario, plaintexts, *,
                                attacks, assessments, tvla_schedule,
                                compute_disclosure, keep_results, chunk_size
                                ) -> Tuple[List[CampaignRow], List[AssessmentRow]]:
        """The bounded-memory counterpart of :meth:`_run_scenario`.

        Traces are consumed as ``chunk_size`` blocks that feed the streaming
        state machine of :class:`_StreamingScenarioState`; at no point does
        more than one chunk of traces exist.  Disclosure sweeps segment each
        chunk at the prefix boundaries, so the rows match the in-memory run
        to floating-point reordering.
        """
        noise_label, noise_factory, design = scenario
        noise = noise_factory() if noise_factory is not None else None
        rows: List[CampaignRow] = []
        assessment_rows: List[AssessmentRow] = []
        telemetry = current()
        state = _StreamingScenarioState(
            self, scenario, plaintexts, attacks=attacks,
            assessments=assessments, tvla_schedule=tvla_schedule,
            compute_disclosure=compute_disclosure, keep_results=keep_results)

        if state.needs_attack_stream:
            with telemetry.span("campaign.stream", chunk_size=chunk_size):
                for chunk in self._trace_chunks_for(design, noise, plaintexts,
                                                    chunk_size):
                    matrix = chunk.matrix()
                    telemetry.count("chunks")
                    telemetry.count("traces", matrix.shape[0])
                    dt, t0 = chunk._time_params()
                    state.apply_attack_chunk(matrix, chunk.plaintexts(),
                                             dt, t0)

            for row in state.attack_rows():
                telemetry.count("attacks")
                rows.append(row)
            if state.assessment_states:
                with telemetry.span("campaign.assess", kind="value",
                                    assessments=len(state.assessment_states)):
                    assessment_rows.extend(state.value_assessment_rows())

        if state.needs_tvla_stream:
            with telemetry.span("campaign.assess", kind="tvla",
                                assessments=len(state.fr_states)):
                tvla_plaintexts, _labels = tvla_schedule
                for chunk in self._trace_chunks_for(
                        design, noise, tvla_plaintexts, chunk_size,
                        noise_start=len(plaintexts)):
                    matrix = chunk.matrix()
                    telemetry.count("chunks")
                    telemetry.count("traces", matrix.shape[0])
                    state.apply_tvla_chunk(matrix)
                assessment_rows.extend(state.fr_assessment_rows())
        return rows, assessment_rows

    def _stream_chunk(self, scenario: tuple,
                      stream_plaintexts: Sequence[Sequence[int]],
                      start: int, stop: int,
                      noise_base: int = 0) -> Tuple["object", float, float]:
        """Rows ``[start, stop)`` of one scenario's trace stream, as
        ``(matrix, dt, t0)``.

        A pure function of the scenario and the range: noise draws are
        pinned to the *global* trace index (``noise_base + start + i``) and
        trace synthesis is row-independent, so any process can generate any
        chunk on its own and the bytes match the corresponding slice of a
        sequential :meth:`_trace_chunks_for` sweep exactly.  This is the
        work unit :mod:`repro.serve` dispatches to its worker pool; the
        TVLA stream passes its own plaintext schedule with
        ``noise_base=len(attack_plaintexts)``.
        """
        _noise_label, noise_factory, design = scenario
        noise = noise_factory() if noise_factory is not None else None
        block = stream_plaintexts[start:stop]
        traces = self._traces_for(design, noise, block,
                                  noise_start=noise_base + start)
        matrix = traces.matrix()
        dt, t0 = traces._time_params()
        return matrix, dt, t0

    def _run_sharded(self, scenarios: List[tuple],
                     plaintexts: Sequence[Sequence[int]],
                     workers: int, options: Dict[str, bool]
                     ) -> List[List[CampaignRow]]:
        """Fan the scenario list over a forked worker pool, order-preserving.

        Each worker re-generates its own shard's traces (per-shard trace
        generation: nothing but the scenario index crosses the process
        boundary on the way in, so unpicklable netlists, trace sources and
        noise factories all work), and ships back plain result rows.  Falls
        back to the serial path when ``fork`` is unavailable — the results
        are identical either way, only the wall-clock changes.
        """
        return list(self._run_sharded_iter(scenarios, plaintexts, workers,
                                           options))

    def _run_sharded_iter(self, scenarios: List[tuple],
                          plaintexts: Sequence[Sequence[int]],
                          workers: int, options: Dict[str, bool]
                          ) -> Iterator[Tuple[List[CampaignRow],
                                              List[AssessmentRow]]]:
        """Scenario results in scenario order, yielded as they complete.

        The lazy (``imap``) form of :meth:`_run_sharded`: the store spill
        path consumes it so every finished scenario is persisted as soon as
        its result (and those of the scenarios before it) arrive, instead
        of only after the whole pool drains.
        """
        if not scenarios:
            # Pool(processes=0) raises ValueError; an empty grid (e.g. a
            # fully-resumed store run) is simply an empty result.
            return
        if "fork" not in multiprocessing.get_all_start_methods():
            logger.info("fork unavailable on this platform; campaign runs "
                        "%d scenario(s) serially", len(scenarios))
            for scenario in scenarios:
                yield self._run_scenario(scenario, plaintexts, **options)
            return
        telemetry = current()
        global _SHARD_STATE
        context = multiprocessing.get_context("fork")
        _SHARD_STATE = (self, scenarios, plaintexts, options)
        try:
            with context.Pool(processes=min(workers, len(scenarios))) as pool:
                for index, (rows, assessment_rows, shard_tree) in enumerate(
                        pool.imap(_scenario_shard_worker,
                                  range(len(scenarios)), chunksize=1)):
                    # Adopted in scenario order (imap preserves it), so the
                    # merged span tree is deterministic: same shape as the
                    # serial run, with the shard index as attribution.
                    if shard_tree is not None:
                        telemetry.adopt(shard_tree, shard=index)
                    yield rows, assessment_rows
        finally:
            _SHARD_STATE = None

    def _tvla_schedule_for(self, count: int, seed: int) -> Optional[tuple]:
        """The shared fixed-vs-random acquisition of the non-specific TVLAs."""
        fr_assessments = [a for a in self._assessments if a.kind == "tvla"]
        if not fr_assessments:
            return None
        fixed_choices = {a.fixed_plaintext for a in fr_assessments
                         if a.fixed_plaintext is not None}
        if len(fixed_choices) > 1:
            raise ValueError(
                "non-specific TVLA assessments disagree on the fixed "
                "plaintext; the campaign shares one fixed-vs-random "
                "acquisition per scenario"
            )
        fixed = list(fixed_choices.pop()) if fixed_choices else None
        # Imported lazily: repro.asyncaes itself builds on repro.core.
        from ..asyncaes.tracegen import fixed_vs_random_plaintexts

        return fixed_vs_random_plaintexts(
            count, fixed=fixed, block_size=16,
            seed=seed + _TVLA_SEED_OFFSET,
        )

    def _plan_run(self, plaintexts: Sequence[Sequence[int]], seed: int, *,
                  compute_disclosure: bool, keep_results: bool,
                  streaming: bool, chunk_size: Optional[int]
                  ) -> Tuple[List[tuple], Dict[str, object]]:
        """The deterministic (scenarios, options) plan of one run.

        Defaults are applied locally so planning never mutates the
        campaign's configured grid.  Any process holding the same campaign
        object — e.g. a forked :mod:`repro.serve` worker — rebuilds the
        identical plan from the same arguments, so only a tiny run spec
        ever crosses a process boundary.
        """
        attacks = list(self._attacks) or [standard_attack("dpa")]
        noises = list(self._noises) or [("noiseless", None)]
        scenarios = [(noise_label, noise_factory, design)
                     for noise_label, noise_factory in noises
                     for design in self._designs]
        options = dict(attacks=attacks,
                       assessments=list(self._assessments),
                       tvla_schedule=self._tvla_schedule_for(len(plaintexts),
                                                             seed),
                       compute_disclosure=compute_disclosure,
                       keep_results=keep_results,
                       streaming=streaming,
                       chunk_size=chunk_size)
        return scenarios, options

    def run(self, trace_count: Optional[int] = None, *,
            plaintexts: Optional[Sequence[Sequence[int]]] = None,
            seed: int = 0, compute_disclosure: bool = True,
            keep_results: bool = False, workers: int = 1,
            streaming: bool = False,
            chunk_size: Optional[int] = None,
            store: Optional[object] = None,
            telemetry: Optional[object] = None,
            drc: str = "warn",
            service: Optional[object] = None) -> CampaignResult:
        """Run every (design × attack × selection × noise) scenario of the
        grid, plus every registered leakage assessment.

        Traces are generated once per design and noise level and shared by
        all selection functions, attack kernels and value-partitioned
        assessments (non-specific TVLA adds one fixed-vs-random acquisition
        per scenario).  With ``workers > 1`` the (noise × design) scenarios —
        the units that own a trace generation — are sharded across a
        ``fork``-based process pool; every shard generates its own traces and
        the merged table is *identical* to the serial one (same plaintexts,
        same per-scenario noise streams, same row order), so sharding is
        purely a wall-clock knob.

        With ``streaming=True`` each scenario consumes its traces as
        ``chunk_size`` blocks through the accumulator pipelines of
        :mod:`repro.assess` — never materializing more than one chunk — and
        produces the same rows as the in-memory run (to floating-point
        reordering, ≲ 1e-9) for every chunk size.  Streaming composes with
        ``workers``: shards stream independently.

        With ``store=path`` every completed (noise × design) scenario is
        spilled to a columnar shard under ``path`` (npz frames behind a JSON
        manifest — see :mod:`repro.store`) the moment it finishes, and a
        re-invocation with the same ``store`` **resumes from the manifest**:
        completed scenarios are skipped, only the missing ones re-run, and
        the merged table is byte-identical to an uninterrupted serial run
        (scenarios own their noise streams, so completion order cannot leak
        into the rows).  The finished store carries the merged ``frame.npz``
        / ``assessments.npz`` for :func:`repro.store.load_campaign_result`
        and the query layer.  ``store`` composes with ``workers`` and
        ``streaming``; it rejects ``keep_results=True`` (attack result
        objects are not columnar).

        With ``telemetry=`` a :class:`repro.obs.Telemetry` collector, the
        run records a hierarchical span tree — one ``campaign.scenario``
        span per (noise × design) scenario with nested generation, attack
        and assessment phases, plus the store spill/merge spans — with
        counters (traces, chunks, attacks) and peak-RSS gauges.  Sharded
        workers record locally and the parent merges their trees in
        scenario order, so serial and ``workers=N`` runs produce the same
        tree shape (sharded spans carry a deterministic ``shard`` index)
        and the result rows are byte-identical either way.  Render the tree
        with :class:`repro.obs.RunReport` or export it via
        :mod:`repro.obs`.  Telemetry defaults to the ambient collector —
        the zero-cost no-op unless :func:`repro.obs.use` installed one.

        ``drc`` gates the run on the static campaign pre-flight of
        :func:`repro.drc.run_campaign_preflight` — the ``CAM`` rules that
        re-express the classic mid-run failures (mis-labelled grids,
        unpicklable sources under sharding, second-order kernels under
        streaming, store manifest mismatches) as diagnostics *before* any
        trace is generated.  ``"error"`` raises
        :class:`repro.drc.DrcError` on error-severity findings, ``"warn"``
        (the default) logs them and proceeds — the legacy runtime error
        still occurs where it used to — and ``"off"`` skips the
        pre-flight entirely.

        ``service`` hands scheduling to a running
        :class:`repro.serve.CampaignService`: scenarios decompose into
        chunk-level jobs balanced across the service's persistent worker
        pool, with trace matrices returned over shared memory and all
        accumulator updates applied here in deterministic chunk order —
        the merged table (and any ``store`` frames) are byte-identical to
        the serial run.  The campaign must have been registered with the
        service before it started; ``service`` composes with
        ``streaming``/``store`` but rejects ``workers > 1`` (the service
        owns the pool) and ``keep_results`` (result objects are not
        transportable).
        """
        if drc not in ("error", "warn", "off"):
            raise ValueError(f"drc must be 'error', 'warn' or 'off', "
                             f"got {drc!r}")
        if not self._designs:
            raise ValueError("campaign has no designs; call add_design first")
        if not self._selections and not self._assessments:
            raise ValueError("campaign has no selection functions; "
                             "call add_selection (or add_assessment) first")
        if streaming:
            if chunk_size is None:
                raise ValueError("streaming mode needs a chunk_size")
            if chunk_size < 1:
                raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
        elif chunk_size is not None:
            raise ValueError("chunk_size only applies to streaming=True runs")
        if plaintexts is None:
            if trace_count is None:
                raise ValueError("need trace_count or explicit plaintexts")
            plaintexts = PlaintextGenerator(block_size=16, seed=seed).batch(trace_count)
        plaintexts = [list(p) for p in plaintexts]
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if service is not None:
            if workers > 1:
                raise ValueError(
                    "workers does not compose with service=: the service "
                    "owns the worker pool (configure it there)")
            if keep_results:
                raise ValueError(
                    "keep_results does not compose with service=: attack "
                    "result objects do not cross the service transport — "
                    "re-run the scenario of interest in memory")

        telemetry = current() if telemetry is None else telemetry

        scenarios, options = self._plan_run(
            plaintexts, seed, compute_disclosure=compute_disclosure,
            keep_results=keep_results, streaming=streaming,
            chunk_size=chunk_size)
        with use(telemetry):
            if drc != "off":
                # Imported lazily: repro.drc's campaign rules import flow
                # internals, so the gate must not create an import cycle.
                # Runs once, in the parent, on the run's collector — before
                # any dispatch, so forked children never re-evaluate it.
                from ..drc import DrcError, run_campaign_preflight

                preflight = run_campaign_preflight(
                    self, workers=workers, streaming=streaming,
                    chunk_size=chunk_size, store=store, seed=seed,
                    plaintexts=plaintexts, options=options)
                if drc == "error" and preflight.has_errors:
                    raise DrcError(preflight, subject="campaign")
                for diagnostic in preflight.diagnostics:
                    logger.warning("campaign DRC: %s", diagnostic.render())
            with telemetry.span(
                    "campaign", scenarios=len(scenarios),
                    traces=len(plaintexts), workers=workers,
                    streaming=streaming):
                if service is not None:
                    return service._execute_campaign(
                        self, scenarios, plaintexts, seed, options,
                        store=store)
                if store is not None:
                    return self._run_with_store(store, scenarios, plaintexts,
                                                seed, workers, options)
                if workers > 1 and len(scenarios) > 1:
                    shard_rows = self._run_sharded(scenarios, plaintexts,
                                                   workers, options)
                else:
                    shard_rows = [self._run_scenario(scenario, plaintexts,
                                                     **options)
                                  for scenario in scenarios]

                campaign = CampaignResult()
                for rows, assessment_rows in shard_rows:
                    campaign.rows.extend(rows)
                    campaign.assessments.extend(assessment_rows)
                telemetry.record_rss()
                return campaign

    # ---------------------------------------------------------------- store
    @staticmethod
    def _scenario_keys(scenarios: List[tuple]) -> List[str]:
        """One stable manifest key per (noise × design) scenario."""
        keys = [f"{noise_label}/{design.label}"
                for noise_label, _factory, design in scenarios]
        duplicates = sorted({key for key in keys if keys.count(key) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate scenario keys {duplicates}: every "
                "(noise, design) pair must be unique to spill to a store")
        return keys

    def _grid_fingerprint(self, keys: List[str],
                          plaintexts: Sequence[Sequence[int]], seed: int,
                          options: Dict[str, object]) -> str:
        """Digest of everything that shapes the result table.

        Callables (noise factories, custom trace sources) cannot be hashed;
        their labels stand in for them, which is as much as equality can
        promise without executing them.
        """
        from ..store import grid_fingerprint

        payload = {
            "scenario_keys": list(keys),
            "plaintexts": [[int(byte) for byte in block]
                           for block in plaintexts],
            "seed": seed,
            "selections": [[entry.selection.name, entry.correct_guess]
                           for entry in self._selections],
            "attacks": [spec.label for spec in options["attacks"]],
            "assessments": [[spec.label, spec.kind, spec.threshold,
                             spec.classes, spec.key_value,
                             list(spec.fixed_plaintext)
                             if spec.fixed_plaintext is not None else None]
                            for spec in options["assessments"]],
            "designs": [[design.label, design.source,
                         design.trace_source is not None]
                        for design in self._designs],
            "compute_disclosure": options["compute_disclosure"],
            "streaming": options["streaming"],
            "chunk_size": options["chunk_size"],
            "guesses": self.guesses,
            "mtd": [self.mtd_start, self.mtd_step, self.stable_runs],
        }
        return grid_fingerprint(payload)

    def _run_with_store(self, store, scenarios: List[tuple],
                        plaintexts: Sequence[Sequence[int]], seed: int,
                        workers: int,
                        options: Dict[str, object]) -> CampaignResult:
        """The spill-and-resume form of :meth:`run`.

        Completed scenarios are read back from their shards instead of
        re-running; missing ones run (sharded or serial) and are persisted
        in scenario order the moment they — and their predecessors — finish.
        The merged result always round-trips through the columnar frames,
        so a resumed run and a fresh run produce byte-identical tables.
        """
        from ..store import CampaignFrame, CampaignStore

        if options["keep_results"]:
            raise ValueError(
                "keep_results does not compose with store=: attack result "
                "objects are not columnar — re-run the scenario of interest "
                "in memory to inspect full DPAResult objects")
        keys = self._scenario_keys(scenarios)
        fingerprint = self._grid_fingerprint(keys, plaintexts, seed, options)
        campaign_store = CampaignStore.open(
            store, kind="campaign", scenario_keys=keys,
            fingerprint=fingerprint)
        done = set(campaign_store.completed_keys())
        pending_keys = [key for key in keys if key not in done]
        pending_scenarios = [scenario for key, scenario
                             in zip(keys, scenarios) if key not in done]
        if done:
            logger.info("campaign store resume: %d/%d scenarios already "
                        "complete, %d to run", len(done), len(keys),
                        len(pending_keys))
        if workers > 1 and len(pending_scenarios) > 1:
            results = self._run_sharded_iter(pending_scenarios, plaintexts,
                                             workers, options)
        else:
            results = (self._run_scenario(scenario, plaintexts, **options)
                       for scenario in pending_scenarios)
        written = {}
        for key, (rows, assessment_rows) in zip(pending_keys, results):
            tables = {
                "rows": CampaignFrame.from_rows(rows, kind="campaign"),
                "assessments": CampaignFrame.from_rows(assessment_rows,
                                                       kind="assessment"),
            }
            campaign_store.write_shard(key, tables)
            written[key] = tables
        merged = campaign_store.merge_tables(
            {"rows": "campaign", "assessments": "assessment"}, keys=keys,
            cache=written)
        telemetry = current()
        telemetry.record_rss()
        tables = dict(merged)
        if telemetry.enabled:
            # Persist the (still-open) run's span tree next to the shard
            # manifest so the metrics are queryable like any campaign table.
            from ..obs.export import telemetry_frame

            tables["telemetry"] = telemetry_frame(telemetry.snapshot())
        campaign_store.finalize(tables)
        return CampaignResult(rows=merged["rows"].to_rows(),
                              assessments=merged["assessments"].to_rows())


class _StreamingScenarioState:
    """The accumulation half of one streaming (noise × design) scenario.

    Owns every streaming accumulator of the scenario — attack statistics,
    disclosure trackers, value assessments, fixed-vs-random t-tests — and
    consumes trace chunks strictly in stream order.  Orchestration (who
    generates the chunks, and where) lives outside: the serial path feeds
    it from :meth:`AttackCampaign._trace_chunks_for`, while
    :mod:`repro.serve` feeds it matrices generated by pool workers.  All
    updates happen here, in one process, in deterministic chunk order, so
    chunk-parallel runs produce bit-identical rows.
    """

    def __init__(self, campaign: "AttackCampaign", scenario: tuple,
                 plaintexts: Sequence[Sequence[int]], *, attacks,
                 assessments, tvla_schedule, compute_disclosure,
                 keep_results):
        from ..assess.streaming import (
            DisclosureTracker,
            disclosure_boundaries,
            streaming_state,
        )
        from ..assess.tvla import BoundarySweep, StreamingTTest

        self.campaign = campaign
        self.tvla_schedule = tvla_schedule
        self.keep_results = keep_results
        noise_label, _noise_factory, design = scenario
        self.noise_label = noise_label
        self.design = design
        value_assessments = [a for a in assessments
                             if a.kind in ("tvla-specific", "snr")]
        fr_assessments = [a for a in assessments if a.kind == "tvla"]

        self.attack_states = []
        for entry in campaign._selections:
            for attack_spec in attacks:
                kernel = attack_spec.build(entry.selection)
                guess_space = (list(campaign.guesses)
                               if campaign.guesses is not None
                               else list(kernel.guesses()))
                state = streaming_state(kernel, guess_space)
                tracker = None
                if compute_disclosure and entry.correct_guess is not None:
                    try:
                        correct_index = guess_space.index(entry.correct_guess)
                    except ValueError:
                        raise DPAError(
                            f"guess {entry.correct_guess:#x} was not part of "
                            "the attack") from None
                    tracker = DisclosureTracker(
                        correct_index, stable_runs=campaign.stable_runs)
                self.attack_states.append(
                    (entry, attack_spec, kernel, guess_space, state, tracker))
        self.assessment_states = campaign._value_assessment_states(
            value_assessments)
        boundaries = (disclosure_boundaries(len(plaintexts),
                                            start=campaign.mtd_start,
                                            step=campaign.mtd_step)
                      if any(tracker is not None
                             for *_, tracker in self.attack_states) else [])
        self.sweep = BoundarySweep(boundaries)
        self.position = 0
        self.dt: Optional[float] = None
        self.t0: Optional[float] = None
        self.fr_states = [(assessment,
                           StreamingTTest(threshold=assessment.threshold))
                          for assessment in fr_assessments]
        self.tvla_position = 0

    @property
    def needs_attack_stream(self) -> bool:
        """Whether the all-random attack stream has any consumer."""
        return bool(self.attack_states or self.assessment_states)

    @property
    def needs_tvla_stream(self) -> bool:
        """Whether the scenario needs the fixed-vs-random acquisition."""
        return bool(self.fr_states)

    def apply_attack_chunk(self, matrix, chunk_plaintexts,
                           dt: float, t0: float) -> None:
        """Fold the next chunk of the attack stream into every accumulator.

        Chunks must arrive in stream order — the disclosure sweep segments
        them at the global prefix boundaries, so ``position`` is part of
        the state machine.
        """
        if self.dt is None:
            self.dt, self.t0 = dt, t0
        position = self.position
        for start, stop in self.sweep.segments(position, matrix.shape[0]):
            segment = slice(start - position, stop - position)
            for *_, state, _tracker in self.attack_states:
                state.update(matrix[segment], chunk_plaintexts[segment])
            if self.sweep.at_boundary(stop):
                for *_, state, tracker in self.attack_states:
                    if tracker is not None:
                        tracker.observe(stop, state.peaks())
        for assessment, state in self.assessment_states:
            self.campaign._update_value_assessment(assessment, state, matrix,
                                                   chunk_plaintexts)
        self.position += matrix.shape[0]

    def apply_tvla_chunk(self, matrix) -> None:
        """Fold the next chunk of the fixed-vs-random acquisition."""
        _tvla_plaintexts, labels = self.tvla_schedule
        chunk_labels = labels[self.tvla_position:
                              self.tvla_position + matrix.shape[0]]
        for _assessment, state in self.fr_states:
            state.update(matrix, chunk_labels)
        self.tvla_position += matrix.shape[0]

    def attack_rows(self) -> List[CampaignRow]:
        """One finished campaign row per (selection × attack) entry."""
        from .cpa import result_from_statistic

        rows: List[CampaignRow] = []
        for entry, attack_spec, kernel, guess_space, state, tracker \
                in self.attack_states:
            attack = result_from_statistic(
                state.statistics(), guess_space, kernel.name, self.position,
                self.dt, self.t0)
            row = CampaignRow(
                design=self.design.label,
                selection=entry.selection.name,
                attack=attack_spec.label,
                noise=self.noise_label,
                trace_count=self.position,
                best_guess=attack.best_guess,
                best_peak=attack.best_peak,
                correct_guess=entry.correct_guess,
            )
            if entry.correct_guess is not None:
                row.rank_of_correct = attack.rank_of(entry.correct_guess)
                row.discrimination = attack.discrimination_ratio(
                    entry.correct_guess)
                if tracker is not None:
                    row.disclosure = tracker.disclosure
            if self.keep_results:
                row.result = attack
            rows.append(row)
        return rows

    def value_assessment_rows(self) -> List[AssessmentRow]:
        """Rows of the assessments that rode on the attack stream."""
        return [self.campaign._assessment_row(self.design.label,
                                              self.noise_label,
                                              assessment, state)
                for assessment, state in self.assessment_states]

    def fr_assessment_rows(self) -> List[AssessmentRow]:
        """Rows of the non-specific (fixed-vs-random) TVLA assessments."""
        return [self.campaign._assessment_row(self.design.label,
                                              self.noise_label,
                                              assessment, state)
                for assessment, state in self.fr_states]


#: Campaign state inherited by forked shard workers (set around the pool's
#: lifetime only).  Passing the index alone keeps the inbound task payload
#: trivially picklable; the forked child reads everything else from its
#: copy-on-write memory image.
_SHARD_STATE: Optional[tuple] = None


def _scenario_shard_worker(index: int) -> tuple:
    """Run one scenario in the forked child; returns (rows, assessments,
    telemetry tree or None).

    The child inherits the parent's ambient collector through the fork;
    when it is enabled, the worker records into its own fresh collector and
    ships the snapshot back for the parent to adopt — worker identity never
    enters the tree, only the deterministic scenario index does.
    """
    campaign, scenarios, plaintexts, options = _SHARD_STATE
    if not current().enabled:
        rows, assessment_rows = campaign._run_scenario(
            scenarios[index], plaintexts, **options)
        return rows, assessment_rows, None
    local = Telemetry(name="shard")
    with use(local):
        rows, assessment_rows = campaign._run_scenario(
            scenarios[index], plaintexts, **options)
    return rows, assessment_rows, local.snapshot()
