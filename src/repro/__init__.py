"""Reproduction of Bouesse et al., "DPA on Quasi Delay Insensitive
Asynchronous Circuits: Formalization and Improvement" (DATE 2005).

The package is organised as:

* :mod:`repro.circuits`   — gate-level QDI substrate (cells, netlists, channels,
  event-driven simulation, handshake environments);
* :mod:`repro.graph`      — the annotated directed-graph formalism of Section III;
* :mod:`repro.electrical` — the electrical/current model replacing the paper's
  analogue simulations;
* :mod:`repro.crypto`     — software AES and DES reference implementations;
* :mod:`repro.asyncaes`   — the QDI asynchronous AES crypto-processor of Fig. 8;
* :mod:`repro.pnr`        — the place-and-route substrate (flat vs hierarchical);
* :mod:`repro.core`       — the paper's contribution: the formal power/current
  model, the DPA formalisation, the dissymmetry criterion and the secure
  design flow;
* :mod:`repro.assess`     — streaming leakage assessment (TVLA t-tests, SNR)
  over bounded-memory trace pipelines;
* :mod:`repro.harden`     — the criterion-driven hardening pass pipeline;
* :mod:`repro.store`      — the columnar campaign store and query layer;
* :mod:`repro.obs`        — telemetry: hierarchical spans, counters and run
  reports.
"""

import logging

# Library convention: the root "repro" logger stays silent unless the
# application installs a handler (logging.basicConfig or similar); every
# module logs through a child of this logger.
logging.getLogger(__name__).addHandler(logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "circuits",
    "graph",
    "electrical",
    "crypto",
    "asyncaes",
    "pnr",
    "core",
    "assess",
    "harden",
    "store",
    "obs",
]
