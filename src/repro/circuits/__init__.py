"""Gate-level QDI asynchronous circuit substrate.

This subpackage provides everything needed to describe, simulate and validate
the secured Quasi Delay Insensitive blocks the paper analyses: logic values
and transitions, the cell library (including Muller C-elements), structural
netlists, 1-of-N channels with the four-phase protocol, an event-driven
simulator whose gate delays depend on node capacitances, handshake
environment processes and the builders for the paper's dual-rail cells.
"""

from .builder import BlockBuilder, QDIBlock
from .engine import (
    BatchSimulationResult,
    CompiledNetlist,
    EngineError,
    compile_netlist,
    simulate_batch,
)
from .channels import (
    BusSpec,
    ChannelNets,
    ChannelSpec,
    ChannelState,
    EncodingError,
    dual_rail,
    one_of_n,
)
from .gates import CellLibrary, DEFAULT_LIBRARY, GateType, default_library
from .handshake import (
    ChannelMonitor,
    FourPhaseConsumer,
    FourPhaseProducer,
    HandshakeTestbench,
    ProtocolError,
    ResetPulse,
)
from .library import (
    DEFAULT_NET_CAP_FF,
    CompletionTree,
    XorBank,
    build_completion_tree,
    build_dual_rail_and2,
    build_dual_rail_or2,
    build_dual_rail_xor,
    build_half_buffer,
    build_xor_bank,
)
from .netlist import Instance, Net, Netlist, NetlistError, Pin, Port, PortDirection
from .signals import Logic, TraceRecord, Transition, TransitionKind
from .simulator import (
    DelayModel,
    Process,
    ReferenceSimulator,
    SimulationError,
    Simulator,
    settle_combinational,
)
from .validate import (
    BalanceError,
    ComputationResult,
    check_constant_transition_count,
    check_one_hot_discipline,
    check_structural_balance,
    count_valid_phases,
    simulate_two_operand_block,
    verify_netlist,
)

__all__ = [
    "BlockBuilder",
    "QDIBlock",
    "BatchSimulationResult",
    "CompiledNetlist",
    "EngineError",
    "compile_netlist",
    "simulate_batch",
    "BusSpec",
    "ChannelNets",
    "ChannelSpec",
    "ChannelState",
    "EncodingError",
    "dual_rail",
    "one_of_n",
    "CellLibrary",
    "DEFAULT_LIBRARY",
    "GateType",
    "default_library",
    "ChannelMonitor",
    "FourPhaseConsumer",
    "FourPhaseProducer",
    "HandshakeTestbench",
    "ProtocolError",
    "ResetPulse",
    "DEFAULT_NET_CAP_FF",
    "CompletionTree",
    "XorBank",
    "build_completion_tree",
    "build_dual_rail_and2",
    "build_dual_rail_or2",
    "build_dual_rail_xor",
    "build_half_buffer",
    "build_xor_bank",
    "Instance",
    "Net",
    "Netlist",
    "NetlistError",
    "Pin",
    "Port",
    "PortDirection",
    "Logic",
    "TraceRecord",
    "Transition",
    "TransitionKind",
    "DelayModel",
    "Process",
    "ReferenceSimulator",
    "SimulationError",
    "Simulator",
    "settle_combinational",
    "BalanceError",
    "ComputationResult",
    "check_constant_transition_count",
    "check_one_hot_discipline",
    "check_structural_balance",
    "count_valid_phases",
    "simulate_two_operand_block",
    "verify_netlist",
]
