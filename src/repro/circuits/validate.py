"""Validation of QDI blocks: protocol, balance and structural checks.

The security argument of Section II rests on two properties that this module
makes checkable:

* **one-hot / return-to-zero discipline** — a 1-of-N channel never shows more
  than one rail high, and alternates between NULL and valid states;
* **balance** — every computation of a secured block involves the same number
  of logical transitions regardless of the data, and the cones of logic
  feeding the rails of an output channel are structurally symmetric.

It also provides a small single-computation testbench harness reused by the
electrical model and the DPA experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .builder import QDIBlock
from .channels import ChannelNets, ChannelState
from .handshake import FourPhaseConsumer, FourPhaseProducer, ResetPulse
from .netlist import Netlist
from .signals import Logic, TraceRecord
from .simulator import DelayModel, Simulator


class BalanceError(Exception):
    """Raised when a block that should be balanced is not."""


# --------------------------------------------------------------------- checks
def check_one_hot_discipline(trace: TraceRecord, channel: ChannelNets) -> List[str]:
    """Replay a trace and report every instant the channel shows an illegal code.

    Returns a list of human-readable violations (empty when the channel obeys
    the 1-of-N discipline for the whole trace).
    """
    values: Dict[str, Logic] = {rail: Logic.LOW for rail in channel.rails}
    violations: List[str] = []
    for transition in sorted(trace.transitions, key=lambda t: t.time):
        if transition.net not in values:
            continue
        values[transition.net] = transition.value
        state = channel.spec.state([values[r] for r in channel.rails])
        if state is ChannelState.ILLEGAL:
            violations.append(
                f"channel {channel.name!r} illegal at t={transition.time:.3e}s "
                f"after {transition.net!r} -> {transition.value.name}"
            )
    return violations


def count_valid_phases(trace: TraceRecord, channel: ChannelNets) -> int:
    """Number of NULL→VALID excursions the channel makes during the trace."""
    values: Dict[str, Logic] = {rail: Logic.LOW for rail in channel.rails}
    count = 0
    was_null = True
    for transition in sorted(trace.transitions, key=lambda t: t.time):
        if transition.net not in values:
            continue
        values[transition.net] = transition.value
        state = channel.spec.state([values[r] for r in channel.rails])
        if state is ChannelState.VALID and was_null:
            count += 1
            was_null = False
        elif state is ChannelState.NULL:
            was_null = True
    return count


def check_structural_balance(block: QDIBlock) -> List[str]:
    """Compare the logic cones of the output rails of a block.

    For every output channel, the cones driving each rail must contain the
    same number of gates per logical level; otherwise the number of
    transitions could depend on the data, which is the first-order leak the
    secured design style removes.
    """
    problems: List[str] = []
    for channel in block.outputs:
        per_rail_profile: List[Tuple[str, Dict[int, int]]] = []
        for rail in channel.rails:
            cone = block.rail_cones.get(rail, [])
            profile: Dict[int, int] = {}
            for instance in cone:
                level = block.level_of_instance.get(instance, 0)
                profile[level] = profile.get(level, 0) + 1
            per_rail_profile.append((rail, profile))
        reference_rail, reference = per_rail_profile[0]
        for rail, profile in per_rail_profile[1:]:
            if set(profile) != set(reference):
                problems.append(
                    f"channel {channel.name!r}: rails {reference_rail!r} and {rail!r} "
                    f"span different levels ({sorted(reference)} vs {sorted(profile)})"
                )
                continue
            for level in sorted(reference):
                if profile[level] != reference[level]:
                    problems.append(
                        f"channel {channel.name!r}: level {level} has "
                        f"{reference[level]} gate(s) on rail {reference_rail!r} but "
                        f"{profile[level]} on rail {rail!r}"
                    )
    return problems


def verify_netlist(netlist: Netlist) -> None:
    """Raise :class:`BalanceError` when the netlist has structural problems."""
    problems = netlist.validate()
    if problems:
        raise BalanceError("; ".join(problems))


# ----------------------------------------------------------------- testbench
@dataclass
class ComputationResult:
    """Outcome of a single-block, multi-computation simulation."""

    trace: TraceRecord
    outputs: List[List[int]]
    block_transition_count: int
    per_computation_counts: List[int] = field(default_factory=list)

    @property
    def first_output(self) -> Optional[int]:
        if self.outputs and self.outputs[0]:
            return self.outputs[0][0]
        return None


def simulate_two_operand_block(block: QDIBlock, operand_pairs: Sequence[Tuple[int, int]],
                               *, delay_model: Optional[DelayModel] = None,
                               env_delay: float = 20e-12) -> ComputationResult:
    """Drive a two-input/one-output QDI block through a list of computations.

    The block is expected to follow the convention of the library builders:
    two input channels (``a``, ``b``) acknowledged by ``block.ack_out`` and
    one output channel acknowledged (active low) through ``block.ack_in``.
    """
    if len(block.inputs) != 2 or len(block.outputs) != 1:
        raise ValueError(
            f"simulate_two_operand_block expects 2 inputs / 1 output, block "
            f"{block.name!r} has {len(block.inputs)} / {len(block.outputs)}"
        )
    sim = Simulator(block.netlist, delay_model=delay_model)
    sim.set_levels(block.level_of_instance)

    a_values = [pair[0] for pair in operand_pairs]
    b_values = [pair[1] for pair in operand_pairs]
    producer_a = FourPhaseProducer(block.inputs[0], block.ack_out, a_values,
                                   env_delay=env_delay, start_time=200e-12)
    producer_b = FourPhaseProducer(block.inputs[1], block.ack_out, b_values,
                                   env_delay=env_delay, start_time=200e-12)
    consumer = FourPhaseConsumer(block.outputs[0], ack_net=block.ack_in,
                                 ack_active_high=False, env_delay=env_delay)
    sim.add_process(producer_a)
    sim.add_process(producer_b)
    sim.add_process(consumer)
    if block.reset is not None:
        sim.add_process(ResetPulse(block.reset, duration=100e-12))

    trace = sim.settle()

    block_nets = set(block.internal_nets())
    block_transitions = [t for t in trace.transitions if t.net in block_nets]

    # Split the block transitions into per-computation groups using the
    # acknowledge falling edges as separators.
    boundaries = [t.time for t in trace.transitions
                  if t.net == block.ack_out and t.is_falling]
    per_computation: List[int] = []
    previous = 0.0
    for boundary in boundaries:
        per_computation.append(
            sum(1 for t in block_transitions if previous < t.time <= boundary)
        )
        previous = boundary

    return ComputationResult(
        trace=trace,
        outputs=[consumer.received],
        block_transition_count=len(block_transitions),
        per_computation_counts=per_computation,
    )


def check_constant_transition_count(block: QDIBlock,
                                    operand_pairs: Sequence[Tuple[int, int]],
                                    **kwargs) -> int:
    """Verify that every computation toggles the same number of block nets.

    Returns the (constant) per-computation transition count, or raises
    :class:`BalanceError` if the count varies with the data — i.e. the block
    is not balanced in the sense of Section II of the paper.
    """
    result = simulate_two_operand_block(block, operand_pairs, **kwargs)
    counts = result.per_computation_counts
    if not counts:
        raise BalanceError(f"block {block.name!r}: no computation observed")
    if len(set(counts)) != 1:
        raise BalanceError(
            f"block {block.name!r} is unbalanced: per-computation transition "
            f"counts {counts} for operands {list(operand_pairs)}"
        )
    return counts[0]
