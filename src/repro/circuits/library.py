"""Builders for the secured QDI cells used throughout the paper.

The central cell is the **dual-rail XOR with four-phase handshake** of Fig. 4
/ Fig. 5: four Muller gates (level 1) detect the four input minterms, two OR
gates (level 2) gather the minterms of each output rail, two resettable Muller
gates (level 3, the ``Cr`` cells) synchronise the output rails with the
downstream acknowledge, and one OR gate (level 4) produces the completion /
acknowledge signal sent back to the input producers.  Every computation fires
exactly one gate per level regardless of the data (``Nt = Nc = 4``,
``N_ij = 1``), which is the balance property exploited in Section III.

The module also provides balanced dual-rail AND/OR cells, the half-buffer
(``HB`` in Fig. 8/9), completion-detection trees and a word-wide XOR bank used
for the AddRoundKey-style DPA experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .builder import BlockBuilder, QDIBlock
from .channels import ChannelNets, ChannelSpec
from .netlist import Netlist

#: Default net (routing) capacitance, matching the paper's ``Cd`` = 8 fF.
DEFAULT_NET_CAP_FF = 8.0


def _apply_default_caps(block: QDIBlock, cap_ff: float) -> None:
    """Give every gate-output net of the block the default routing capacitance."""
    for net_name in block.internal_nets():
        block.netlist.set_routing_cap(net_name, cap_ff)


def _declare_boundary_channel(netlist: Netlist, name: str, radix: int = 2) -> ChannelNets:
    spec = ChannelSpec(name=name, radix=radix)
    return spec.declare(netlist)


def build_dual_rail_xor(name: str = "xor", netlist: Optional[Netlist] = None, *,
                        block: str = "", default_net_cap_ff: float = DEFAULT_NET_CAP_FF,
                        with_ports: bool = True) -> QDIBlock:
    """Build the dual-rail XOR gate of Fig. 4 of the paper.

    Parameters
    ----------
    name:
        Base name of the block; boundary nets are named ``<name>_a_r0`` etc.
    netlist:
        Netlist to build into (a new one is created when omitted).
    block:
        Block annotation used by the hierarchical place-and-route flow.
    default_net_cap_ff:
        Routing capacitance assigned to every internal net (the paper's
        default ``Cd`` = 8 fF).
    with_ports:
        Declare top-level ports for the boundary nets (disable when embedding
        the cell inside a larger netlist).

    Returns
    -------
    QDIBlock
        Handle exposing the gate grid ``(level, j)`` so that experiments can
        modify individual ``Cl_ij`` values exactly as in Fig. 7.
    """
    netlist = netlist if netlist is not None else Netlist(name)
    builder = BlockBuilder(netlist, block or name)

    a = _declare_boundary_channel(netlist, f"{name}_a")
    b = _declare_boundary_channel(netlist, f"{name}_b")
    c = _declare_boundary_channel(netlist, f"{name}_c")
    ack_in = netlist.add_net(f"{name}_c_ack_n").name      # active-low downstream ack
    ack_out = netlist.add_net(f"{name}_ack").name          # completion to producers
    reset = netlist.add_net(f"{name}_reset").name

    if with_ports:
        for rail in (*a.rails, *b.rails):
            netlist.add_input(rail)
        netlist.add_input(ack_in)
        netlist.add_input(reset)
        for rail in c.rails:
            netlist.add_output(rail)
        netlist.add_output(ack_out)

    # Level 1: the four minterm Muller gates (M1..M4 of Fig. 5).
    m_same_00 = builder.net("m_a0b0")
    m_same_11 = builder.net("m_a1b1")
    m_diff_10 = builder.net("m_a1b0")
    m_diff_01 = builder.net("m_a0b1")
    g_m1 = builder.gate("MULLER2", {"A": a.rails[0], "B": b.rails[0], "Z": m_same_00},
                        name="M1")
    g_m2 = builder.gate("MULLER2", {"A": a.rails[1], "B": b.rails[1], "Z": m_same_11},
                        name="M2")
    g_m3 = builder.gate("MULLER2", {"A": a.rails[1], "B": b.rails[0], "Z": m_diff_10},
                        name="M3")
    g_m4 = builder.gate("MULLER2", {"A": a.rails[0], "B": b.rails[1], "Z": m_diff_01},
                        name="M4")

    # Level 2: one OR gate per output rail (O1, O2).
    pre_c0 = builder.net("pre_c0")
    pre_c1 = builder.net("pre_c1")
    g_o1 = builder.gate("OR2", {"A": m_same_00, "B": m_same_11, "Z": pre_c0}, name="O1")
    g_o2 = builder.gate("OR2", {"A": m_diff_10, "B": m_diff_01, "Z": pre_c1}, name="O2")

    # Level 3: the resettable Muller output stages (H1, H2 — the Cr cells).
    g_h1 = builder.gate("MULLER2_R", {"A": pre_c0, "B": ack_in, "RST": reset,
                                      "Z": c.rails[0]}, name="H1")
    g_h2 = builder.gate("MULLER2_R", {"A": pre_c1, "B": ack_in, "RST": reset,
                                      "Z": c.rails[1]}, name="H2")

    # Level 4: completion detection of the output channel (N1).
    g_n1 = builder.gate("OR2", {"A": c.rails[0], "B": c.rails[1], "Z": ack_out},
                        name="N1")

    level_of_instance = {
        g_m1.name: 1, g_m2.name: 1, g_m3.name: 1, g_m4.name: 1,
        g_o1.name: 2, g_o2.name: 2,
        g_h1.name: 3, g_h2.name: 3,
        g_n1.name: 4,
    }
    gate_grid = {
        (1, 1): g_m1.name, (1, 2): g_m2.name, (1, 3): g_m3.name, (1, 4): g_m4.name,
        (2, 1): g_o1.name, (2, 2): g_o2.name,
        (3, 1): g_h1.name, (3, 2): g_h2.name,
        (4, 1): g_n1.name,
    }
    rail_cones = {
        c.rails[0]: [g_m1.name, g_m2.name, g_o1.name, g_h1.name],
        c.rails[1]: [g_m3.name, g_m4.name, g_o2.name, g_h2.name],
    }

    handle = QDIBlock(
        name=name, netlist=netlist, inputs=[a, b], outputs=[c],
        ack_out=ack_out, ack_in=ack_in, reset=reset,
        level_of_instance=level_of_instance, gate_grid=gate_grid,
        rail_cones=rail_cones,
    )
    _apply_default_caps(handle, default_net_cap_ff)
    return handle


def _build_dual_rail_minterm_cell(name: str, minterms_rail1: Sequence[Tuple[int, int]],
                                  netlist: Optional[Netlist], block: str,
                                  default_net_cap_ff: float,
                                  with_ports: bool) -> QDIBlock:
    """Common structure of balanced dual-rail two-input cells.

    ``minterms_rail1`` lists the ``(a, b)`` input pairs for which the output
    is 1; the remaining pairs drive rail 0.  Both rails get a gathering gate at
    level 2 so the transition count per computation is constant.
    """
    netlist = netlist if netlist is not None else Netlist(name)
    builder = BlockBuilder(netlist, block or name)

    a = _declare_boundary_channel(netlist, f"{name}_a")
    b = _declare_boundary_channel(netlist, f"{name}_b")
    c = _declare_boundary_channel(netlist, f"{name}_c")
    ack_in = netlist.add_net(f"{name}_c_ack_n").name
    ack_out = netlist.add_net(f"{name}_ack").name
    reset = netlist.add_net(f"{name}_reset").name

    if with_ports:
        for rail in (*a.rails, *b.rails):
            netlist.add_input(rail)
        netlist.add_input(ack_in)
        netlist.add_input(reset)
        for rail in c.rails:
            netlist.add_output(rail)
        netlist.add_output(ack_out)

    all_minterms = [(0, 0), (0, 1), (1, 0), (1, 1)]
    minterms_rail1 = list(minterms_rail1)
    minterms_rail0 = [m for m in all_minterms if m not in minterms_rail1]

    level_of_instance: Dict[str, int] = {}
    gate_grid: Dict[Tuple[int, int], str] = {}
    rail_cones: Dict[str, List[str]] = {c.rails[0]: [], c.rails[1]: []}

    minterm_nets: Dict[Tuple[int, int], str] = {}
    position = 1
    for rail_value, minterms in ((0, minterms_rail0), (1, minterms_rail1)):
        for (va, vb) in minterms:
            net = builder.net(f"m_a{va}b{vb}")
            gate = builder.gate(
                "MULLER2",
                {"A": a.rails[va], "B": b.rails[vb], "Z": net},
                name=f"M_a{va}b{vb}",
            )
            minterm_nets[(va, vb)] = net
            level_of_instance[gate.name] = 1
            gate_grid[(1, position)] = gate.name
            rail_cones[c.rails[rail_value]].append(gate.name)
            position += 1

    def gather(rail_value: int, minterms: Sequence[Tuple[int, int]], position: int) -> str:
        nets = [minterm_nets[m] for m in minterms]
        out = builder.net(f"pre_c{rail_value}")
        if len(nets) == 1:
            gate = builder.gate("BUF", {"A": nets[0], "Z": out}, name=f"O_c{rail_value}")
        elif len(nets) == 2:
            gate = builder.gate("OR2", {"A": nets[0], "B": nets[1], "Z": out},
                                name=f"O_c{rail_value}")
        elif len(nets) == 3:
            gate = builder.gate("OR3", {"A": nets[0], "B": nets[1], "C": nets[2],
                                        "Z": out}, name=f"O_c{rail_value}")
        else:
            gate = builder.gate("OR4", {"A": nets[0], "B": nets[1], "C": nets[2],
                                        "D": nets[3], "Z": out},
                                name=f"O_c{rail_value}")
        level_of_instance[gate.name] = 2
        gate_grid[(2, position)] = gate.name
        rail_cones[c.rails[rail_value]].append(gate.name)
        return out

    pre_c0 = gather(0, minterms_rail0, 1)
    pre_c1 = gather(1, minterms_rail1, 2)

    g_h1 = builder.gate("MULLER2_R", {"A": pre_c0, "B": ack_in, "RST": reset,
                                      "Z": c.rails[0]}, name="H_c0")
    g_h2 = builder.gate("MULLER2_R", {"A": pre_c1, "B": ack_in, "RST": reset,
                                      "Z": c.rails[1]}, name="H_c1")
    level_of_instance[g_h1.name] = 3
    level_of_instance[g_h2.name] = 3
    gate_grid[(3, 1)] = g_h1.name
    gate_grid[(3, 2)] = g_h2.name
    rail_cones[c.rails[0]].append(g_h1.name)
    rail_cones[c.rails[1]].append(g_h2.name)

    g_n1 = builder.gate("OR2", {"A": c.rails[0], "B": c.rails[1], "Z": ack_out},
                        name="N1")
    level_of_instance[g_n1.name] = 4
    gate_grid[(4, 1)] = g_n1.name

    handle = QDIBlock(
        name=name, netlist=netlist, inputs=[a, b], outputs=[c],
        ack_out=ack_out, ack_in=ack_in, reset=reset,
        level_of_instance=level_of_instance, gate_grid=gate_grid,
        rail_cones=rail_cones,
    )
    _apply_default_caps(handle, default_net_cap_ff)
    return handle


def build_dual_rail_and2(name: str = "and2", netlist: Optional[Netlist] = None, *,
                         block: str = "", default_net_cap_ff: float = DEFAULT_NET_CAP_FF,
                         with_ports: bool = True) -> QDIBlock:
    """Balanced dual-rail AND gate (rail 1 fires only on the ``(1, 1)`` minterm)."""
    return _build_dual_rail_minterm_cell(
        name, [(1, 1)], netlist, block, default_net_cap_ff, with_ports
    )


def build_dual_rail_or2(name: str = "or2", netlist: Optional[Netlist] = None, *,
                        block: str = "", default_net_cap_ff: float = DEFAULT_NET_CAP_FF,
                        with_ports: bool = True) -> QDIBlock:
    """Balanced dual-rail OR gate (rail 0 fires only on the ``(0, 0)`` minterm)."""
    return _build_dual_rail_minterm_cell(
        name, [(0, 1), (1, 0), (1, 1)], netlist, block, default_net_cap_ff, with_ports
    )


def build_half_buffer(name: str = "hb", netlist: Optional[Netlist] = None, *,
                      block: str = "", radix: int = 2,
                      default_net_cap_ff: float = DEFAULT_NET_CAP_FF,
                      with_ports: bool = True) -> QDIBlock:
    """Build a 1-of-N half buffer (the ``HB`` cells of Fig. 8 / Fig. 9).

    Each output rail is a resettable Muller gate combining the corresponding
    input rail with the downstream acknowledge; an OR over the output rails
    produces the completion signal returned to the producer.
    """
    netlist = netlist if netlist is not None else Netlist(name)
    builder = BlockBuilder(netlist, block or name)

    d = _declare_boundary_channel(netlist, f"{name}_d", radix)
    q = _declare_boundary_channel(netlist, f"{name}_q", radix)
    ack_in = netlist.add_net(f"{name}_q_ack_n").name
    ack_out = netlist.add_net(f"{name}_ack").name
    reset = netlist.add_net(f"{name}_reset").name

    if with_ports:
        for rail in d.rails:
            netlist.add_input(rail)
        netlist.add_input(ack_in)
        netlist.add_input(reset)
        for rail in q.rails:
            netlist.add_output(rail)
        netlist.add_output(ack_out)

    level_of_instance: Dict[str, int] = {}
    gate_grid: Dict[Tuple[int, int], str] = {}
    rail_cones: Dict[str, List[str]] = {}

    for index in range(radix):
        gate = builder.gate(
            "MULLER2_R",
            {"A": d.rails[index], "B": ack_in, "RST": reset, "Z": q.rails[index]},
            name=f"H{index}",
        )
        level_of_instance[gate.name] = 1
        gate_grid[(1, index + 1)] = gate.name
        rail_cones[q.rails[index]] = [gate.name]

    if radix == 2:
        completion = builder.gate("OR2", {"A": q.rails[0], "B": q.rails[1],
                                          "Z": ack_out}, name="N1")
    elif radix == 3:
        completion = builder.gate("OR3", {"A": q.rails[0], "B": q.rails[1],
                                          "C": q.rails[2], "Z": ack_out}, name="N1")
    elif radix == 4:
        completion = builder.gate("OR4", {"A": q.rails[0], "B": q.rails[1],
                                          "C": q.rails[2], "D": q.rails[3],
                                          "Z": ack_out}, name="N1")
    else:
        raise ValueError(f"half buffer supports radix 2..4, got {radix}")
    level_of_instance[completion.name] = 2
    gate_grid[(2, 1)] = completion.name

    handle = QDIBlock(
        name=name, netlist=netlist, inputs=[d], outputs=[q],
        ack_out=ack_out, ack_in=ack_in, reset=reset,
        level_of_instance=level_of_instance, gate_grid=gate_grid,
        rail_cones=rail_cones,
    )
    _apply_default_caps(handle, default_net_cap_ff)
    return handle


@dataclass
class CompletionTree:
    """Result of :func:`build_completion_tree`: the combined completion net."""

    output: str
    instances: List[str] = field(default_factory=list)
    depth: int = 0


def build_completion_tree(builder: BlockBuilder, valid_nets: Sequence[str], *,
                          stem: str = "cd") -> CompletionTree:
    """Combine per-channel completion signals into one with a Muller-gate tree.

    The resulting signal rises once *all* channels are valid and falls once
    all have returned to zero — the standard QDI completion detection used to
    acknowledge a whole data word.
    """
    if not valid_nets:
        raise ValueError("completion tree needs at least one input")
    current = list(valid_nets)
    instances: List[str] = []
    depth = 0
    while len(current) > 1:
        depth += 1
        next_level: List[str] = []
        for pair_index in range(0, len(current) - 1, 2):
            out = builder.net(f"{stem}_l{depth}_{pair_index // 2}")
            gate = builder.gate(
                "MULLER2",
                {"A": current[pair_index], "B": current[pair_index + 1], "Z": out},
            )
            instances.append(gate.name)
            next_level.append(out)
        if len(current) % 2 == 1:
            next_level.append(current[-1])
        current = next_level
    return CompletionTree(output=current[0], instances=instances, depth=depth)


@dataclass
class XorBank:
    """A word-wide dual-rail XOR: one :class:`QDIBlock` per bit plus a shared
    completion tree.  This is the gate-level model used for the
    AddRoundKey-style DPA experiments (Section IV of the paper uses an 8-bit
    XOR as the AES selection function)."""

    name: str
    netlist: Netlist
    bits: List[QDIBlock]
    completion: CompletionTree

    @property
    def width(self) -> int:
        return len(self.bits)

    def bit(self, index: int) -> QDIBlock:
        return self.bits[index]

    def input_channels(self, operand: int) -> List[ChannelNets]:
        """Channels of operand 0 (``a``) or 1 (``b``), LSB first."""
        return [block.inputs[operand] for block in self.bits]

    def output_channels(self) -> List[ChannelNets]:
        return [block.outputs[0] for block in self.bits]


def build_xor_bank(width: int, name: str = "xorw", *,
                   default_net_cap_ff: float = DEFAULT_NET_CAP_FF) -> XorBank:
    """Build ``width`` dual-rail XOR cells sharing one netlist and one
    word-level completion detector."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    netlist = Netlist(name)
    bits: List[QDIBlock] = []
    for index in range(width):
        block = build_dual_rail_xor(
            f"{name}_bit{index}", netlist=netlist, block=f"{name}_bit{index}",
            default_net_cap_ff=default_net_cap_ff, with_ports=False,
        )
        bits.append(block)
    builder = BlockBuilder(netlist, f"{name}_cd")
    tree = build_completion_tree(builder, [b.ack_out for b in bits])
    for instance in tree.instances:
        cell = netlist.cell_of(instance)
        out_net = netlist.instance(instance).net_of(cell.output)
        netlist.set_routing_cap(out_net, default_net_cap_ff)
    return XorBank(name=name, netlist=netlist, bits=bits, completion=tree)
