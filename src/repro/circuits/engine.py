"""Compiled evaluation tables and the levelized batch simulation engine.

The event-driven :class:`~repro.circuits.simulator.Simulator` and the
levelized :func:`simulate_batch` sweep both run on the same compiled view of
a netlist: every gate's behavioural closure is flattened into an int-coded
truth table (:meth:`~repro.circuits.gates.GateType.truth_table`), every net
gets a dense integer id, and the pin → net indirection of the structural
netlist is resolved once into flat index arrays.  Evaluating a gate then
costs one table lookup instead of a dict build plus a Python closure call,
and whole instance batches evaluate in single vectorized numpy expressions.

Two consumers:

* the reworked event simulator keeps its per-event semantics but commits
  same-timestamp event batches against the array-backed net state and sweeps
  their merged fan-out once (deduplicated, vectorized above a small batch
  size);
* :func:`simulate_batch` runs **many input vectors at once** through a
  levelized fixpoint sweep — the settled-state answer of
  :func:`~repro.circuits.simulator.settle_combinational` for a whole stimulus
  matrix, at a fraction of the per-vector event-loop cost.
"""

from __future__ import annotations

import heapq
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.telemetry import current
from .gates import GateType
from .netlist import Netlist
from .signals import Logic

#: Stimulus value accepted by :func:`simulate_batch`: a :class:`Logic`, a
#: plain 0/1 int or a bool.
LogicLike = Union[Logic, int, bool]


class EngineError(Exception):
    """Raised when a netlist cannot be compiled or a batch cannot settle."""


#: Truth tables cached per :class:`GateType` object.  Weakly keyed: a
#: collected cell's entry dies with it, so a recycled object id can never
#: serve a stale table (and throwaway libraries do not grow the cache).
_TABLE_CACHE: "weakref.WeakKeyDictionary[GateType, np.ndarray]" = (
    weakref.WeakKeyDictionary())


def _cached_truth_table(cell: GateType) -> np.ndarray:
    table = _TABLE_CACHE.get(cell)
    if table is None:
        table = cell.truth_table()
        _TABLE_CACHE[cell] = table
    return table


@dataclass
class CompiledNetlist:
    """Per-netlist evaluation tables resolved from the structural view.

    All per-instance sequences are aligned by dense instance index; nets are
    addressed by dense net index.  ``table`` concatenates the truth tables of
    every instance (``table_offset[i]`` is instance ``i``'s base), so a gate
    evaluates as ``table[table_offset[i] + (packed_inputs << 1) | previous]``
    — and a whole batch of gates evaluates with one fancy-indexing
    expression over the padded ``input_matrix`` / ``weight_matrix`` pair.
    """

    net_index: Dict[str, int]
    net_names: List[str]
    inst_index: Dict[str, int]
    inst_names: List[str]
    inst_cells: List[GateType]
    #: Per instance: ((net id, weight), ...) of its input pins, in pin order.
    scalar_pins: List[Tuple[Tuple[int, int], ...]]
    out_ids: np.ndarray
    out_names: List[str]
    table: np.ndarray
    table_offset: np.ndarray
    #: net id -> instance ids whose inputs the net feeds (sink order of the
    #: netlist, duplicates removed).
    net_sinks: List[List[int]]
    #: Instance evaluation order of the levelized sweep (feedback broken).
    order: List[int]
    #: (n_instances, max_pins) input net ids, padded with net 0 / weight 0.
    input_matrix: np.ndarray = field(repr=False, default=None)
    weight_matrix: np.ndarray = field(repr=False, default=None)

    @property
    def net_count(self) -> int:
        return len(self.net_names)

    @property
    def instance_count(self) -> int:
        return len(self.inst_names)


def _levelize(instance_count: int,
              preds: List[List[int]]) -> List[int]:
    """Topological instance order; cycles broken at the lowest-index gate.

    QDI netlists contain feedback (acknowledge loops, Muller-gate state);
    the order only has to be a good *sweep schedule* — forward paths settle
    in one pass, feedback converges over repeated sweeps — so breaking each
    cycle deterministically at its smallest remaining instance id is enough.
    """
    indegree = [0] * instance_count
    succs: List[List[int]] = [[] for _ in range(instance_count)]
    for target, sources in enumerate(preds):
        for source in sources:
            succs[source].append(target)
            indegree[target] += 1
    ready = [index for index in range(instance_count) if indegree[index] == 0]
    heapq.heapify(ready)
    done = [False] * instance_count
    order: List[int] = []
    scan = 0
    while len(order) < instance_count:
        if not ready:
            # Cycle: force the smallest not-yet-ordered instance.
            while done[scan]:
                scan += 1
            heapq.heappush(ready, scan)
            indegree[scan] = 0
        index = heapq.heappop(ready)
        if done[index]:
            continue
        done[index] = True
        order.append(index)
        for succ in succs[index]:
            indegree[succ] -= 1
            if indegree[succ] == 0 and not done[succ]:
                heapq.heappush(ready, succ)
    return order


def _compile(netlist: Netlist) -> CompiledNetlist:
    net_names = netlist.net_names()
    net_index = {name: index for index, name in enumerate(net_names)}

    inst_names: List[str] = []
    inst_cells: List[GateType] = []
    scalar_pins: List[Tuple[Tuple[int, int], ...]] = []
    out_ids: List[int] = []
    out_names: List[str] = []
    tables: List[np.ndarray] = []
    for inst in netlist.instances():
        cell = netlist.library.get(inst.cell)
        inst_names.append(inst.name)
        inst_cells.append(cell)
        pins = tuple(
            (net_index[inst.net_of(pin)], 1 << position)
            for position, pin in enumerate(cell.inputs)
        )
        scalar_pins.append(pins)
        out_net = inst.net_of(cell.output)
        out_ids.append(net_index[out_net])
        out_names.append(out_net)
        tables.append(_cached_truth_table(cell))
    inst_index = {name: index for index, name in enumerate(inst_names)}

    instance_count = len(inst_names)
    table_offset = np.zeros(instance_count, dtype=np.int64)
    position = 0
    for index, table in enumerate(tables):
        table_offset[index] = position
        position += len(table)
    flat_table = (np.concatenate(tables) if tables
                  else np.zeros(0, dtype=np.uint8))

    net_sinks: List[List[int]] = [[] for _ in net_names]
    for net in netlist.nets():
        sinks = net_sinks[net_index[net.name]]
        seen = set()
        for sink in net.sinks:
            inst_id = inst_index.get(sink.instance)
            if inst_id is not None and inst_id not in seen:
                seen.add(inst_id)
                sinks.append(inst_id)

    driver_of_net: Dict[int, int] = {}
    for index, out_id in enumerate(out_ids):
        driver_of_net[out_id] = index
    preds: List[List[int]] = []
    for index in range(instance_count):
        sources = set()
        for net_id, _weight in scalar_pins[index]:
            driver = driver_of_net.get(net_id)
            if driver is not None and driver != index:
                sources.add(driver)
        preds.append(sorted(sources))
    order = _levelize(instance_count, preds)

    max_pins = max((len(pins) for pins in scalar_pins), default=1)
    input_matrix = np.zeros((instance_count, max_pins), dtype=np.int64)
    weight_matrix = np.zeros((instance_count, max_pins), dtype=np.int64)
    for index, pins in enumerate(scalar_pins):
        for position, (net_id, weight) in enumerate(pins):
            input_matrix[index, position] = net_id
            weight_matrix[index, position] = weight

    return CompiledNetlist(
        net_index=net_index,
        net_names=net_names,
        inst_index=inst_index,
        inst_names=inst_names,
        inst_cells=inst_cells,
        scalar_pins=scalar_pins,
        out_ids=np.asarray(out_ids, dtype=np.int64),
        out_names=out_names,
        table=flat_table,
        table_offset=table_offset,
        net_sinks=net_sinks,
        order=order,
        input_matrix=input_matrix,
        weight_matrix=weight_matrix,
    )


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compile (or fetch the cached) evaluation tables of a netlist.

    The result is cached on the netlist keyed by its
    :attr:`~repro.circuits.netlist.Netlist.topology_version`, so repeated
    simulator constructions over the same structure compile exactly once and
    structural edits recompile transparently.
    """
    cached = getattr(netlist, "_engine_cache", None)
    version = netlist.topology_version
    if cached is not None and cached[0] == version:
        return cached[1]
    compiled = _compile(netlist)
    netlist._engine_cache = (version, compiled)
    return compiled


@dataclass
class BatchSimulationResult:
    """Settled net values of a whole stimulus batch.

    ``values`` is the ``(n_stimuli, n_nets)`` 0/1 matrix; rows follow the
    stimulus order, columns the compiled net indexing.  The accessors return
    :class:`Logic` (or numpy columns) so batch results drop into code written
    against the scalar simulator.
    """

    values: np.ndarray
    net_index: Dict[str, int]
    net_names: List[str]
    sweeps: int

    def __len__(self) -> int:
        return self.values.shape[0]

    def _column_of(self, net: str) -> int:
        try:
            return self.net_index[net]
        except KeyError:
            raise EngineError(f"net {net!r} does not exist") from None

    def value(self, row: int, net: str) -> Logic:
        return Logic(int(self.values[row, self._column_of(net)]))

    def column(self, net: str) -> np.ndarray:
        """All stimuli's settled values of one net (0/1 vector)."""
        return self.values[:, self._column_of(net)]

    def row(self, index: int) -> Dict[str, Logic]:
        """Settled values of one stimulus, as ``settle_combinational`` returns."""
        row = self.values[index]
        return {name: Logic(int(row[column]))
                for column, name in enumerate(self.net_names)}


def simulate_batch(netlist: Netlist,
                   stimuli: Sequence[Mapping[str, LogicLike]], *,
                   max_sweeps: Optional[int] = None) -> BatchSimulationResult:
    """Settle many input vectors through one levelized vectorized sweep.

    Each stimulus is a ``net name → value`` mapping applied to the all-low
    reset state; the settled result of row ``i`` is value-identical to
    ``settle_combinational(netlist, stimuli[i])`` — the per-vector event loop
    — but the whole batch is computed by sweeping the compiled gate tables in
    levelized order, each gate evaluating **all stimuli at once**.  Sweeps
    repeat until a fixpoint (feedback gates such as Muller C-elements settle
    over a few passes); a batch that cannot settle within ``max_sweeps``
    (default ``2 · n_instances + 4``) raises :class:`EngineError`, mirroring
    the event budget of the scalar loop.

    This is the engine behind the settled-state queries of the trace
    pipelines: functional checks over stimulus matrices, balance sweeps over
    operand spaces, and the ``bench_sim_engine`` reference workload.
    """
    compiled = compile_netlist(netlist)
    n_stimuli = len(stimuli)
    values = np.zeros((n_stimuli, compiled.net_count), dtype=np.uint8)
    for row, stimulus in enumerate(stimuli):
        for net, value in stimulus.items():
            column = compiled.net_index.get(net)
            if column is None:
                raise EngineError(f"cannot drive unknown net {net!r}")
            values[row, column] = 1 if value else 0

    if n_stimuli == 0 or not compiled.order:
        return BatchSimulationResult(values, compiled.net_index,
                                     compiled.net_names, sweeps=0)

    if max_sweeps is None:
        max_sweeps = 2 * compiled.instance_count + 4
    table = compiled.table
    offsets = compiled.table_offset
    out_ids = compiled.out_ids
    input_matrix = compiled.input_matrix
    weight_matrix = compiled.weight_matrix
    telemetry = current()
    with telemetry.span("sim.batch", stimuli=n_stimuli,
                        gates=compiled.instance_count):
        for sweep in range(1, max_sweeps + 1):
            changed = False
            for index in compiled.order:
                packed = values[:, input_matrix[index]] @ weight_matrix[index]
                out_id = out_ids[index]
                previous = values[:, out_id]
                new = table[offsets[index] + (packed << 1) + previous]
                if not np.array_equal(new, previous):
                    values[:, out_id] = new
                    changed = True
            if not changed:
                telemetry.count("stimuli", n_stimuli)
                telemetry.count("sweeps", sweep)
                return BatchSimulationResult(values, compiled.net_index,
                                             compiled.net_names, sweeps=sweep)
    raise EngineError(
        f"batch did not settle within {max_sweeps} sweeps; "
        "the circuit is probably oscillating"
    )
