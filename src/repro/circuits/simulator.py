"""Event-driven simulator for QDI gate-level netlists.

The simulator propagates logic transitions through a
:class:`~repro.circuits.netlist.Netlist` with **capacitance-dependent gate
delays**: the time a gate takes to switch its output is an RC product of its
drive resistance and the total capacitance of its output node
(``C = Cl + Cpar + Csc``).  This is the mechanism by which an unbalanced
routing capacitance shifts all downstream transitions in time — exactly the
effect equation (12) of the paper formalises and Fig. 7 illustrates.

Environment behaviour (four-phase producers and consumers, reset generators)
is modelled with :class:`Process` objects that react to net changes and
schedule new stimuli.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from .gates import GateType
from .netlist import Netlist
from .signals import Event, Logic, TraceRecord, Transition, TransitionKind


class SimulationError(Exception):
    """Raised when the simulation cannot proceed (deadlock, runaway, ...)."""


@dataclass
class DelayModel:
    """Gate delay as an affine function of the output node capacitance.

    ``delay = intrinsic_s + drive_ohm * C_total`` where ``C_total`` is the
    femtofarad node capacitance converted to farads.  The same ``Δt`` is the
    charge/discharge time that enters the electrical signature of
    equation (12).
    """

    intrinsic_s: float = 10e-12
    resistance_scale: float = 1.0

    def gate_delay(self, netlist: Netlist, cell: GateType, output_net: str) -> float:
        cap_farad = netlist.total_cap_ff(output_net) * 1e-15
        return self.intrinsic_s + self.resistance_scale * cell.drive_ohm * cap_farad

    def transition_time(self, netlist: Netlist, output_net: str) -> float:
        """Charge/discharge time Δt of a net (used by the electrical model)."""
        cell = netlist.driver_cell(output_net)
        drive = cell.drive_ohm if cell is not None else 5000.0
        cap_farad = netlist.total_cap_ff(output_net) * 1e-15
        return self.resistance_scale * drive * cap_farad


class Process:
    """Base class for environment processes attached to the simulator.

    Subclasses override :meth:`start` (called once before the run) and
    :meth:`on_change` (called after every committed net transition the process
    is sensitive to).  Processes drive nets with
    :meth:`Simulator.schedule_drive`.
    """

    name: str = "process"

    def sensitivity(self) -> Sequence[str]:
        """Nets whose transitions should wake this process."""
        return ()

    def start(self, sim: "Simulator") -> None:  # pragma: no cover - default no-op
        """Called once when the simulation starts."""

    def on_change(self, sim: "Simulator", net: str, value: Logic, time: float) -> None:
        """Called after a sensitive net committed a new value."""


class Simulator:
    """Discrete-event simulator over a gate-level netlist."""

    def __init__(self, netlist: Netlist, delay_model: Optional[DelayModel] = None):
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self._values: Dict[str, Logic] = {}
        self._events: List[Event] = []
        self._sequence = 0
        self._time = 0.0
        self.trace = TraceRecord()
        self._processes: List[Process] = []
        self._watchers: Dict[str, List[Process]] = {}
        self._levels: Dict[str, int] = {}
        self.record_trace = True
        self._started = False
        # Static per-instance evaluation info, resolved once: the cell, the
        # (input pin, input net) pairs and the output net.  The hot loops
        # (_commit / _evaluate_fanout) would otherwise chase the
        # instance → cell → pin → net indirection on every event.
        self._inst_info: Dict[str, Tuple[GateType, List[Tuple[str, str]], str]] = {}
        for inst in netlist.instances():
            cell = netlist.library.get(inst.cell)
            input_nets = [(pin, inst.net_of(pin)) for pin in cell.inputs]
            self._inst_info[inst.name] = (cell, input_nets, inst.net_of(cell.output))
        self._net_sinks: Dict[str, List[str]] = {
            net.name: [sink.instance for sink in net.sinks] for net in netlist.nets()
        }
        self.reset_all_low()

    # --------------------------------------------------------------- set-up
    def reset_all_low(self) -> None:
        """Force every net to the all-low (NULL) state without recording it.

        QDI circuits are reset to the invalid state before any computation
        (four-phase protocol, phase 3/4); this models the power-on reset.
        """
        for net in self.netlist.nets():
            self._values[net.name] = Logic.LOW

    def set_levels(self, levels: Mapping[str, int]) -> None:
        """Attach logical-level annotations (instance name → level).

        Levels come from :mod:`repro.graph.levels`; they are copied onto the
        recorded transitions so the electrical model can attribute current
        pulses to logical levels, as in equation (5) of the paper.
        """
        self._levels = dict(levels)

    def add_process(self, process: Process) -> None:
        self._processes.append(process)
        for net in process.sensitivity():
            self._watchers.setdefault(net, []).append(process)

    # -------------------------------------------------------------- queries
    @property
    def time(self) -> float:
        return self._time

    def value(self, net: str) -> Logic:
        try:
            return self._values[net]
        except KeyError:
            raise SimulationError(f"net {net!r} does not exist") from None

    def values(self, nets: Iterable[str]) -> List[Logic]:
        return [self.value(n) for n in nets]

    def pending_events(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------ scheduling
    def schedule_drive(self, net: str, value: Logic, time: Optional[float] = None,
                       cause: Optional[str] = None) -> None:
        """Schedule a net to take ``value`` at ``time`` (default: now)."""
        if net not in self._values:
            raise SimulationError(f"cannot drive unknown net {net!r}")
        when = self._time if time is None else time
        if when < self._time:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self._time}"
            )
        heapq.heappush(self._events, Event(when, self._sequence, net, value, cause))
        self._sequence += 1

    def drive_input(self, net: str, value: Logic, time: Optional[float] = None) -> None:
        """Drive a primary-input net from the environment."""
        self.schedule_drive(net, value, time, cause=None)

    # ---------------------------------------------------------------- engine
    def _commit(self, event: Event) -> bool:
        """Apply an event; return True when the net actually changed.

        Events caused by a gate are re-evaluated against the gate's *current*
        inputs before being applied (inertial-delay behaviour): if the inputs
        changed again while the output event was in flight, the stale value is
        discarded and the fan-out evaluation triggered by the newer input
        change produces the correct output instead.
        """
        value = event.value
        if event.cause is not None:
            info = self._inst_info.get(event.cause)
            if info is not None:
                cell, input_nets, _ = info
                inputs = {pin: self._values[net] for pin, net in input_nets}
                value = cell.compute(inputs, self._values[event.net])
        old = self._values[event.net]
        if old is value:
            return False
        self._values[event.net] = value
        event = Event(event.time, event.sequence, event.net, value, event.cause)
        if self.record_trace:
            level = 0
            if event.cause is not None:
                level = self._levels.get(event.cause, 0)
            self.trace.add(
                Transition(
                    net=event.net,
                    time=event.time,
                    value=event.value,
                    kind=TransitionKind.from_values(old, event.value),
                    cause=event.cause,
                    level=level,
                )
            )
        return True

    def _evaluate_fanout(self, net: str, time: float) -> None:
        """Re-evaluate every gate whose inputs include ``net``."""
        for sink_name in self._net_sinks.get(net, ()):
            cell, input_nets, out_net = self._inst_info[sink_name]
            input_values = {pin: self._values[in_net] for pin, in_net in input_nets}
            previous = self._values[out_net]
            new_value = cell.compute(input_values, previous)
            if new_value is not previous:
                delay = self.delay_model.gate_delay(self.netlist, cell, out_net)
                self.schedule_drive(out_net, new_value, time + delay, cause=sink_name)

    def _notify(self, net: str, value: Logic, time: float) -> None:
        for process in self._watchers.get(net, ()):  # processes see committed values
            process.on_change(self, net, value, time)

    def _evaluate_all_gates(self, time: float) -> None:
        """Schedule the outputs of gates whose current output is inconsistent.

        QDI blocks reset to the all-low state, which is self-consistent for
        the monotonic cells they are built from; cells such as inverters,
        however, must produce their true output at start-up.  This pass makes
        the simulator equally usable for ordinary combinational netlists.
        """
        for inst_name, (cell, input_nets, out_net) in self._inst_info.items():
            input_values = {pin: self._values[in_net] for pin, in_net in input_nets}
            previous = self._values[out_net]
            new_value = cell.compute(input_values, previous)
            if new_value is not previous:
                delay = self.delay_model.gate_delay(self.netlist, cell, out_net)
                self.schedule_drive(out_net, new_value, time + delay, cause=inst_name)

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> TraceRecord:
        """Run until the event queue drains, ``until`` is reached, or the
        event budget is exhausted (which raises, as it indicates a livelock).
        """
        if not self._started:
            self._evaluate_all_gates(self._time)
            for process in self._processes:
                process.start(self)
            self._started = True
        processed = 0
        while self._events:
            if until is not None and self._events[0].time > until:
                self._time = until
                break
            event = heapq.heappop(self._events)
            self._time = max(self._time, event.time)
            changed = self._commit(event)
            if changed:
                self._evaluate_fanout(event.net, event.time)
                self._notify(event.net, event.value, event.time)
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded at t={self._time:.3e}s; "
                    "the circuit is probably oscillating"
                )
        self.trace.end_time = max(self.trace.end_time, self._time)
        return self.trace

    def run_for(self, duration: float, **kwargs) -> TraceRecord:
        """Run for ``duration`` seconds beyond the current time."""
        return self.run(until=self._time + duration, **kwargs)

    def settle(self, max_events: int = 2_000_000) -> TraceRecord:
        """Run until no events remain (the circuit is quiescent)."""
        return self.run(until=None, max_events=max_events)

    def is_quiescent(self) -> bool:
        return not self._events


def settle_combinational(netlist: Netlist, inputs: Mapping[str, Logic],
                         delay_model: Optional[DelayModel] = None) -> Dict[str, Logic]:
    """Convenience helper: apply ``inputs``, settle, and return all net values.

    Useful for functionally checking small QDI blocks without setting up
    handshake processes.
    """
    sim = Simulator(netlist, delay_model=delay_model)
    for net, value in inputs.items():
        sim.drive_input(net, value)
    sim.settle()
    return {net.name: sim.value(net.name) for net in netlist.nets()}
