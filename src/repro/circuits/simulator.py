"""Event-driven simulator for QDI gate-level netlists.

The simulator propagates logic transitions through a
:class:`~repro.circuits.netlist.Netlist` with **capacitance-dependent gate
delays**: the time a gate takes to switch its output is an RC product of its
drive resistance and the total capacitance of its output node
(``C = Cl + Cpar + Csc``).  This is the mechanism by which an unbalanced
routing capacitance shifts all downstream transitions in time — exactly the
effect equation (12) of the paper formalises and Fig. 7 illustrates.

Environment behaviour (four-phase producers and consumers, reset generators)
is modelled with :class:`Process` objects that react to net changes and
schedule new stimuli.

Engine
------
:class:`Simulator` runs on the compiled view of the netlist
(:mod:`repro.circuits.engine`): net values live in one array indexed by dense
net ids, every gate evaluates through an int-coded truth table, per-gate
delays are resolved once at construction, and all events sharing a timestamp
are committed as a batch whose merged fan-out is swept once — deduplicated,
and vectorized over the affected gates when the batch is wide (the word-wide
rail flips of a QDI handshake).  :class:`ReferenceSimulator` preserves the
original per-event scalar loop (dict-backed state, behavioural closures) as
the oracle the compiled engine is validated against, mirroring how
``dpa_attack_reference`` anchors the batched attack engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs.telemetry import current
from .engine import compile_netlist
from .gates import GateType
from .netlist import Netlist
from .signals import Event, Logic, TraceRecord, Transition, TransitionKind


class SimulationError(Exception):
    """Raised when the simulation cannot proceed (deadlock, runaway, ...)."""


@dataclass
class DelayModel:
    """Gate delay as an affine function of the output node capacitance.

    ``delay = intrinsic_s + drive_ohm * C_total`` where ``C_total`` is the
    femtofarad node capacitance converted to farads.  The same ``Δt`` is the
    charge/discharge time that enters the electrical signature of
    equation (12).
    """

    intrinsic_s: float = 10e-12
    resistance_scale: float = 1.0

    def gate_delay(self, netlist: Netlist, cell: GateType, output_net: str) -> float:
        cap_farad = netlist.total_cap_ff(output_net) * 1e-15
        return self.intrinsic_s + self.resistance_scale * cell.drive_ohm * cap_farad

    def transition_time(self, netlist: Netlist, output_net: str) -> float:
        """Charge/discharge time Δt of a net (used by the electrical model)."""
        cell = netlist.driver_cell(output_net)
        drive = cell.drive_ohm if cell is not None else 5000.0
        cap_farad = netlist.total_cap_ff(output_net) * 1e-15
        return self.resistance_scale * drive * cap_farad


class Process:
    """Base class for environment processes attached to the simulator.

    Subclasses override :meth:`start` (called once before the run) and
    :meth:`on_change` (called after every committed net transition the process
    is sensitive to).  Processes drive nets with
    :meth:`Simulator.schedule_drive`.
    """

    name: str = "process"

    def sensitivity(self) -> Sequence[str]:
        """Nets whose transitions should wake this process."""
        return ()

    def start(self, sim: "Simulator") -> None:  # pragma: no cover - default no-op
        """Called once when the simulation starts."""

    def on_change(self, sim: "Simulator", net: str, value: Logic, time: float) -> None:
        """Called after a sensitive net committed a new value."""


#: Batch width above which the fan-out sweep switches from the scalar
#: table-lookup loop to one vectorized numpy evaluation of all affected gates.
_VECTOR_SWEEP_THRESHOLD = 8


class Simulator:
    """Discrete-event simulator over a gate-level netlist.

    Per-gate delays are resolved once at construction from the current net
    capacitances (they are static during a run); rebuild the simulator — or
    call :meth:`refresh_delays` — after changing routing capacitances.
    """

    def __init__(self, netlist: Netlist, delay_model: Optional[DelayModel] = None):
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self._compiled = compile_netlist(netlist)
        self._net_index = self._compiled.net_index
        # Array-backed net state: one 0/1 cell per dense net id.
        self._state = np.zeros(self._compiled.net_count, dtype=np.uint8)
        self._events: List[Event] = []
        self._sequence = 0
        self._time = 0.0
        self.trace = TraceRecord()
        self._processes: List[Process] = []
        self._watchers: Dict[str, List[Process]] = {}
        self._levels: Dict[str, int] = {}
        self.record_trace = True
        #: When false, committed events do not propagate into gate fan-out
        #: (and gates are not start-up evaluated): the simulator becomes a
        #: pure stimulus-replay timeline.  Used by the simulator-backed trace
        #: generators to replay channel schedules on structural netlists.
        self.propagate_gates = True
        self._started = False
        self.refresh_delays()
        self.reset_all_low()

    # --------------------------------------------------------------- set-up
    def refresh_delays(self) -> None:
        """Re-resolve every gate's delay from the current net capacitances."""
        compiled = self._compiled
        self._delays = [
            self.delay_model.gate_delay(self.netlist, compiled.inst_cells[index],
                                        compiled.out_names[index])
            for index in range(compiled.instance_count)
        ]

    def reset_all_low(self) -> None:
        """Force every net to the all-low (NULL) state without recording it.

        QDI circuits are reset to the invalid state before any computation
        (four-phase protocol, phase 3/4); this models the power-on reset.
        """
        self._state[:] = 0

    def set_levels(self, levels: Mapping[str, int]) -> None:
        """Attach logical-level annotations (instance name → level).

        Levels come from :mod:`repro.graph.levels`; they are copied onto the
        recorded transitions so the electrical model can attribute current
        pulses to logical levels, as in equation (5) of the paper.
        """
        self._levels = dict(levels)

    def add_process(self, process: Process) -> None:
        self._processes.append(process)
        for net in process.sensitivity():
            self._watchers.setdefault(net, []).append(process)

    # -------------------------------------------------------------- queries
    @property
    def time(self) -> float:
        return self._time

    def value(self, net: str) -> Logic:
        try:
            return Logic(int(self._state[self._net_index[net]]))
        except KeyError:
            raise SimulationError(f"net {net!r} does not exist") from None

    def values(self, nets: Iterable[str]) -> List[Logic]:
        return [self.value(n) for n in nets]

    def pending_events(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------ scheduling
    def schedule_drive(self, net: str, value: Logic, time: Optional[float] = None,
                       cause: Optional[str] = None) -> None:
        """Schedule a net to take ``value`` at ``time`` (default: now)."""
        if net not in self._net_index:
            raise SimulationError(f"cannot drive unknown net {net!r}")
        when = self._time if time is None else time
        if when < self._time:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self._time}"
            )
        heapq.heappush(self._events, Event(when, self._sequence, net, value, cause))
        self._sequence += 1

    def drive_input(self, net: str, value: Logic, time: Optional[float] = None) -> None:
        """Drive a primary-input net from the environment."""
        self.schedule_drive(net, value, time, cause=None)

    # ---------------------------------------------------------------- engine
    def _eval_instance(self, index: int) -> int:
        """Table evaluation of one gate against the current net state."""
        compiled = self._compiled
        state = self._state
        packed = 0
        for net_id, weight in compiled.scalar_pins[index]:
            if state[net_id]:
                packed += weight
        return int(compiled.table[compiled.table_offset[index] + (packed << 1)
                                  + state[compiled.out_ids[index]]])

    def _commit(self, event: Event) -> Optional[int]:
        """Apply an event; return the committed value, or ``None`` when the
        net did not change.

        Events caused by a gate are re-evaluated against the gate's *current*
        inputs before being applied (inertial-delay behaviour): if the inputs
        changed again while the output event was in flight, the stale value is
        discarded and the fan-out evaluation triggered by the newer input
        change produces the correct output instead.
        """
        net_id = self._net_index[event.net]
        value = int(event.value)
        if event.cause is not None:
            cause_index = self._compiled.inst_index.get(event.cause)
            if cause_index is not None:
                value = self._eval_instance(cause_index)
        old = int(self._state[net_id])
        if old == value:
            return None
        self._state[net_id] = value
        if self.record_trace:
            level = 0
            if event.cause is not None:
                level = self._levels.get(event.cause, 0)
            self.trace.add(
                Transition(
                    net=event.net,
                    time=event.time,
                    value=Logic(value),
                    kind=TransitionKind.from_values(Logic(old), Logic(value)),
                    cause=event.cause,
                    level=level,
                )
            )
        return value

    def _schedule_gate_output(self, index: int, value: int, time: float) -> None:
        compiled = self._compiled
        heapq.heappush(self._events, Event(
            time + self._delays[index], self._sequence,
            compiled.out_names[index], Logic(value), compiled.inst_names[index],
        ))
        self._sequence += 1

    def _sweep_fanout(self, changed_net_ids: List[int], time: float) -> None:
        """Evaluate the merged fan-out of a same-timestamp commit batch.

        Every affected gate is evaluated exactly once against the fully
        committed batch state — the scalar loop's per-event evaluations of a
        shared sink collapse into one, which both removes redundant work and
        keeps zero-width same-instant input glitches from spawning phantom
        output events.  Gate order preserves the scalar loop's discovery
        order (commit order, then sink order), so schedules stay
        deterministic.
        """
        compiled = self._compiled
        affected: List[int] = []
        seen = set()
        for net_id in changed_net_ids:
            for inst_id in compiled.net_sinks[net_id]:
                if inst_id not in seen:
                    seen.add(inst_id)
                    affected.append(inst_id)
        if not affected:
            return
        if len(affected) < _VECTOR_SWEEP_THRESHOLD:
            state = self._state
            for index in affected:
                previous = int(state[compiled.out_ids[index]])
                new_value = self._eval_instance(index)
                if new_value != previous:
                    self._schedule_gate_output(index, new_value, time)
            return
        ids = np.asarray(affected, dtype=np.int64)
        packed = (self._state[compiled.input_matrix[ids]]
                  * compiled.weight_matrix[ids]).sum(axis=1)
        previous = self._state[compiled.out_ids[ids]]
        new_values = compiled.table[compiled.table_offset[ids] + (packed << 1)
                                    + previous]
        for position in np.nonzero(new_values != previous)[0]:
            self._schedule_gate_output(affected[position],
                                       int(new_values[position]), time)

    def _notify(self, net: str, value: Logic, time: float) -> None:
        for process in self._watchers.get(net, ()):  # processes see committed values
            process.on_change(self, net, value, time)

    def _evaluate_all_gates(self, time: float) -> None:
        """Schedule the outputs of gates whose current output is inconsistent.

        QDI blocks reset to the all-low state, which is self-consistent for
        the monotonic cells they are built from; cells such as inverters,
        however, must produce their true output at start-up.  This pass makes
        the simulator equally usable for ordinary combinational netlists.
        """
        compiled = self._compiled
        if not compiled.instance_count:
            return
        packed = (self._state[compiled.input_matrix]
                  * compiled.weight_matrix).sum(axis=1)
        previous = self._state[compiled.out_ids]
        new_values = compiled.table[compiled.table_offset + (packed << 1) + previous]
        for index in np.nonzero(new_values != previous)[0]:
            self._schedule_gate_output(int(index), int(new_values[index]), time)

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> TraceRecord:
        """Run until the event queue drains, ``until`` is reached, or the
        event budget is exhausted (which raises, as it indicates a livelock).

        The clock always ends at ``until`` when one is given — including when
        the queue drains early — so back-to-back :meth:`run_for` calls on a
        quiescent circuit keep real-time pacing instead of compressing the
        timeline.  At most ``max_events`` events are committed; the event
        that would exceed the budget raises *before* being applied.
        """
        if not self._started:
            if self.propagate_gates:
                self._evaluate_all_gates(self._time)
            for process in self._processes:
                process.start(self)
            self._started = True
        processed = 0
        committed = 0
        events = self._events
        while events:
            batch_time = events[0].time
            if until is not None and batch_time > until:
                self._time = until
                break
            self._time = max(self._time, batch_time)
            changed_net_ids: List[int] = []
            while events and events[0].time == batch_time:
                event = heapq.heappop(events)
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exceeded at "
                        f"t={self._time:.3e}s; the circuit is probably oscillating"
                    )
                value = self._commit(event)
                if value is not None:
                    committed += 1
                    changed_net_ids.append(self._net_index[event.net])
                    self._notify(event.net, Logic(value), batch_time)
            if changed_net_ids and self.propagate_gates:
                self._sweep_fanout(changed_net_ids, batch_time)
        if not events and until is not None and until > self._time:
            # Queue drained before the horizon: advance the clock to it so
            # durations compose (the run_for timebase fix).
            self._time = until
        if processed:
            telemetry = current()
            telemetry.count("sim_events", processed)
            telemetry.count("sim_events_committed", committed)
        self.trace.end_time = max(self.trace.end_time, self._time)
        return self.trace

    def run_for(self, duration: float, **kwargs) -> TraceRecord:
        """Run for ``duration`` seconds beyond the current time."""
        return self.run(until=self._time + duration, **kwargs)

    def settle(self, max_events: int = 2_000_000) -> TraceRecord:
        """Run until no events remain (the circuit is quiescent)."""
        return self.run(until=None, max_events=max_events)

    def is_quiescent(self) -> bool:
        return not self._events


class ReferenceSimulator(Simulator):
    """The original scalar event loop, kept as the equivalence oracle.

    State lives in a plain ``net name → Logic`` dict, gates evaluate through
    their behavioural closures (:meth:`GateType.compute`) and every event's
    fan-out is walked sink by sink — the literal textbook loop the compiled
    engine replaces.  Tests assert the compiled :class:`Simulator` is value-
    and time-identical to this loop across the QDI block library.
    """

    def __init__(self, netlist: Netlist, delay_model: Optional[DelayModel] = None):
        self._dict_values: Dict[str, Logic] = {}
        super().__init__(netlist, delay_model)
        self._inst_info: Dict[str, Tuple[GateType, List[Tuple[str, str]], str]] = {}
        for inst in netlist.instances():
            cell = netlist.library.get(inst.cell)
            input_nets = [(pin, inst.net_of(pin)) for pin in cell.inputs]
            self._inst_info[inst.name] = (cell, input_nets, inst.net_of(cell.output))
        self._name_sinks: Dict[str, List[str]] = {
            net.name: [sink.instance for sink in net.sinks] for net in netlist.nets()
        }

    def reset_all_low(self) -> None:
        super().reset_all_low()
        for net in self.netlist.nets():
            self._dict_values[net.name] = Logic.LOW

    def value(self, net: str) -> Logic:
        try:
            return self._dict_values[net]
        except KeyError:
            raise SimulationError(f"net {net!r} does not exist") from None

    def _commit_scalar(self, event: Event) -> Optional[Logic]:
        value = event.value
        if event.cause is not None:
            info = self._inst_info.get(event.cause)
            if info is not None:
                cell, input_nets, _ = info
                inputs = {pin: self._dict_values[net] for pin, net in input_nets}
                value = cell.compute(inputs, self._dict_values[event.net])
        old = self._dict_values[event.net]
        if old is value:
            return None
        self._dict_values[event.net] = value
        if self.record_trace:
            level = 0
            if event.cause is not None:
                level = self._levels.get(event.cause, 0)
            self.trace.add(
                Transition(
                    net=event.net,
                    time=event.time,
                    value=value,
                    kind=TransitionKind.from_values(old, value),
                    cause=event.cause,
                    level=level,
                )
            )
        return value

    def _evaluate_fanout(self, net: str, time: float) -> None:
        """Re-evaluate every gate whose inputs include ``net``."""
        for sink_name in self._name_sinks.get(net, ()):
            cell, input_nets, out_net = self._inst_info[sink_name]
            input_values = {pin: self._dict_values[in_net] for pin, in_net in input_nets}
            previous = self._dict_values[out_net]
            new_value = cell.compute(input_values, previous)
            if new_value is not previous:
                delay = self.delay_model.gate_delay(self.netlist, cell, out_net)
                self.schedule_drive(out_net, new_value, time + delay, cause=sink_name)

    def _evaluate_all_gates(self, time: float) -> None:
        for inst_name, (cell, input_nets, out_net) in self._inst_info.items():
            input_values = {pin: self._dict_values[in_net] for pin, in_net in input_nets}
            previous = self._dict_values[out_net]
            new_value = cell.compute(input_values, previous)
            if new_value is not previous:
                delay = self.delay_model.gate_delay(self.netlist, cell, out_net)
                self.schedule_drive(out_net, new_value, time + delay, cause=inst_name)

    def run(self, until: Optional[float] = None, max_events: int = 2_000_000) -> TraceRecord:
        """The per-event scalar loop (same contract as :meth:`Simulator.run`)."""
        if not self._started:
            if self.propagate_gates:
                self._evaluate_all_gates(self._time)
            for process in self._processes:
                process.start(self)
            self._started = True
        processed = 0
        while self._events:
            if until is not None and self._events[0].time > until:
                self._time = until
                break
            event = heapq.heappop(self._events)
            self._time = max(self._time, event.time)
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exceeded at "
                    f"t={self._time:.3e}s; the circuit is probably oscillating"
                )
            value = self._commit_scalar(event)
            if value is not None:
                if self.propagate_gates:
                    self._evaluate_fanout(event.net, event.time)
                self._notify(event.net, value, event.time)
        if not self._events and until is not None and until > self._time:
            self._time = until
        self.trace.end_time = max(self.trace.end_time, self._time)
        return self.trace


def settle_combinational(netlist: Netlist, inputs: Mapping[str, Logic],
                         delay_model: Optional[DelayModel] = None) -> Dict[str, Logic]:
    """Convenience helper: apply ``inputs``, settle, and return all net values.

    Useful for functionally checking small QDI blocks without setting up
    handshake processes.  For whole stimulus batches,
    :func:`repro.circuits.engine.simulate_batch` computes the same settled
    values vectorized.
    """
    sim = Simulator(netlist, delay_model=delay_model)
    for net, value in inputs.items():
        sim.drive_input(net, value)
    sim.settle()
    return {net.name: sim.value(net.name) for net in netlist.nets()}
