"""Dual-rail and 1-of-N channel abstractions with the four-phase protocol.

Section II of the paper describes the encoding used by secured QDI circuits:
one bit is carried by two wires (dual rail), and more generally a digit of
radix N is carried by N wires of which exactly one is high in the *valid*
state and none is high in the *invalid* (NULL / return-to-zero) state.  The
acknowledgement wire travels in the opposite direction and implements the
four-phase handshake of Fig. 2:

1. the sender raises exactly one rail (invalid → valid),
2. the receiver raises the acknowledgement,
3. the sender lowers the rail (valid → invalid, return to zero),
4. the receiver lowers the acknowledgement.

This module provides the value-level view of channels (encoding, decoding,
state classification) and the structural helper that declares a channel's nets
inside a :class:`~repro.circuits.netlist.Netlist`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .netlist import Netlist
from .signals import Logic


class ChannelState(enum.Enum):
    """Protocol state of a 1-of-N channel, derived from its rail values."""

    NULL = "null"          #: all rails low (invalid data / return-to-zero)
    VALID = "valid"        #: exactly one rail high
    ILLEGAL = "illegal"    #: more than one rail high — forbidden by the code


class EncodingError(Exception):
    """Raised when a value cannot be represented on a channel."""


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of a 1-of-N channel.

    Attributes
    ----------
    name:
        Channel name; rails are conventionally named ``<name>_r<i>`` and the
        acknowledgement ``<name>_ack``.
    radix:
        Number of rails (N of the 1-of-N code).  ``radix == 2`` is the
        dual-rail case of Table 1 of the paper.
    """

    name: str
    radix: int = 2

    def __post_init__(self) -> None:
        if self.radix < 2:
            raise ValueError(f"1-of-N channel needs N >= 2, got {self.radix}")

    @property
    def rail_names(self) -> Tuple[str, ...]:
        return tuple(f"{self.name}_r{i}" for i in range(self.radix))

    @property
    def ack_name(self) -> str:
        return f"{self.name}_ack"

    def rail_name(self, index: int) -> str:
        if not 0 <= index < self.radix:
            raise IndexError(f"rail index {index} out of range for radix {self.radix}")
        return self.rail_names[index]

    # ---------------------------------------------------------------- coding
    def encode(self, value: Optional[int]) -> Tuple[Logic, ...]:
        """Encode ``value`` as rail levels; ``None`` encodes the NULL state."""
        if value is None:
            return tuple(Logic.LOW for _ in range(self.radix))
        if not 0 <= value < self.radix:
            raise EncodingError(
                f"value {value} not representable on 1-of-{self.radix} channel {self.name!r}"
            )
        return tuple(Logic.HIGH if i == value else Logic.LOW for i in range(self.radix))

    def decode(self, rails: Sequence[Logic]) -> Optional[int]:
        """Decode rail levels into a value; NULL decodes to ``None``.

        Raises :class:`EncodingError` on illegal (multi-hot) codewords, which
        never occur in a correct QDI circuit.
        """
        if len(rails) != self.radix:
            raise EncodingError(
                f"expected {self.radix} rails for channel {self.name!r}, got {len(rails)}"
            )
        high = [i for i, level in enumerate(rails) if level is Logic.HIGH]
        if not high:
            return None
        if len(high) > 1:
            raise EncodingError(
                f"illegal codeword on channel {self.name!r}: rails {high} simultaneously high"
            )
        return high[0]

    def state(self, rails: Sequence[Logic]) -> ChannelState:
        """Classify the rail levels into NULL / VALID / ILLEGAL."""
        high = sum(1 for level in rails if level is Logic.HIGH)
        if high == 0:
            return ChannelState.NULL
        if high == 1:
            return ChannelState.VALID
        return ChannelState.ILLEGAL

    def transitions_per_handshake(self) -> int:
        """Rail transitions per complete four-phase handshake (always 2).

        Regardless of the transmitted value, one rail rises during the
        evaluation phase and the same rail falls during the return-to-zero
        phase — this constancy is the basis of the DPA resistance claimed in
        Section II of the paper.
        """
        return 2

    # ------------------------------------------------------------- structure
    def declare(self, netlist: Netlist, *, block: str = "") -> "ChannelNets":
        """Declare the channel's rail and acknowledge nets in ``netlist``."""
        rails = []
        for index, rail in enumerate(self.rail_names):
            net = netlist.add_net(rail, block=block, channel=self.name, rail=index)
            rails.append(net.name)
        ack = netlist.add_net(self.ack_name, block=block).name
        return ChannelNets(spec=self, rails=tuple(rails), ack=ack)


@dataclass(frozen=True)
class ChannelNets:
    """The net names materialising a channel inside a particular netlist."""

    spec: ChannelSpec
    rails: Tuple[str, ...]
    ack: str

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def radix(self) -> int:
        return self.spec.radix


def dual_rail(name: str) -> ChannelSpec:
    """Convenience constructor for a dual-rail (1-of-2) channel."""
    return ChannelSpec(name=name, radix=2)


def one_of_n(name: str, radix: int) -> ChannelSpec:
    """Convenience constructor for a 1-of-N channel."""
    return ChannelSpec(name=name, radix=radix)


@dataclass
class BusSpec:
    """A bus of identically-sized 1-of-N channels (e.g. a 32-bit datapath).

    The asynchronous AES of Fig. 8 moves 32-bit words encoded as 32 dual-rail
    channels; :class:`BusSpec` groups those channels so that higher layers can
    encode integers and iterate over per-bit channels conveniently.
    """

    name: str
    width: int
    radix: int = 2
    channels: List[ChannelSpec] = field(init=False)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"bus width must be >= 1, got {self.width}")
        self.channels = [
            ChannelSpec(name=f"{self.name}_b{i}", radix=self.radix)
            for i in range(self.width)
        ]

    def __iter__(self):
        return iter(self.channels)

    def __len__(self) -> int:
        return self.width

    def channel(self, bit: int) -> ChannelSpec:
        if not 0 <= bit < self.width:
            raise IndexError(f"bit {bit} out of range for {self.width}-bit bus {self.name!r}")
        return self.channels[bit]

    def encode_word(self, value: Optional[int]) -> List[Tuple[Logic, ...]]:
        """Encode an integer onto the bus, LSB first; ``None`` encodes NULL."""
        if value is None:
            return [spec.encode(None) for spec in self.channels]
        if self.radix != 2:
            raise EncodingError("encode_word with integers requires dual-rail channels")
        if value < 0 or value >= (1 << self.width):
            raise EncodingError(
                f"value {value} does not fit in {self.width}-bit bus {self.name!r}"
            )
        return [spec.encode((value >> bit) & 1) for bit, spec in enumerate(self.channels)]

    def decode_word(self, rails_per_channel: Sequence[Sequence[Logic]]) -> Optional[int]:
        """Decode per-channel rails back into an integer (None when all NULL).

        A mixture of NULL and valid channels raises :class:`EncodingError`
        because a QDI bus is only observed in the all-NULL or all-valid state
        by a correct completion detector.
        """
        digits = [spec.decode(rails) for spec, rails in zip(self.channels, rails_per_channel)]
        if all(d is None for d in digits):
            return None
        if any(d is None for d in digits):
            raise EncodingError(f"bus {self.name!r} observed partially valid")
        value = 0
        for bit, digit in enumerate(digits):
            value |= (digit & 1) << bit
        return value

    def declare(self, netlist: Netlist, *, block: str = "") -> List[ChannelNets]:
        """Declare every per-bit channel of the bus in ``netlist``."""
        return [spec.declare(netlist, block=block) for spec in self.channels]
