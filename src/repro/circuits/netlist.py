"""Structural netlist representation.

A :class:`Netlist` is the common currency of the reproduction: the QDI cell
builders (:mod:`repro.circuits.library`) produce netlists, the graph analysis
(:mod:`repro.graph`) consumes them, the place-and-route substrate
(:mod:`repro.pnr`) annotates their nets with extracted capacitances, and the
electrical model (:mod:`repro.electrical`) turns simulated transitions on
their nets into current waveforms.

The capacitance decomposition follows Section III of the paper:

    ``C = Cl + Cpar + Csc``

where ``Cl`` is the load (gate + routing) capacitance, ``Cpar`` the parasitic
capacitance of the driving gate and ``Csc`` its equivalent short-circuit
capacitance.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .gates import CellLibrary, DEFAULT_LIBRARY, GateType


class PortDirection(enum.Enum):
    """Direction of a top-level netlist port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Port:
    """A top-level port of a netlist, bound to one net."""

    name: str
    direction: PortDirection
    net: str


@dataclass
class Pin:
    """A connection point ``instance.pin`` on a net."""

    instance: str
    pin: str

    def key(self) -> Tuple[str, str]:
        return (self.instance, self.pin)


@dataclass
class Net:
    """A single wire (rail) of the design.

    Attributes
    ----------
    name:
        Unique net name.
    routing_cap_ff:
        Interconnect (routing) capacitance in femtofarads.  This is the value
        the place-and-route substrate controls and the value the paper's
        dissymmetry criterion compares between the two rails of a channel.
    dummy_cap_ff:
        Extra trimming capacitance deliberately attached to the net by a
        hardening pass (dummy gate loads / metal fill used to equalize the
        rails of a channel).  Counted into the load capacitance ``Cl`` but
        kept separate from ``routing_cap_ff`` so a re-extraction of the
        routing never erases an applied countermeasure.
    driver:
        The pin that drives the net (``None`` for primary inputs).
    sinks:
        Pins that load the net.
    block:
        Name of the architectural block the net belongs to (used by the
        hierarchical floorplan); empty string for inter-block channel nets.
    channel:
        Optional name of the dual-rail / 1-of-N channel this net is a rail of.
    rail:
        Rail index within the channel (0..N-1) or ``None``.
    """

    name: str
    routing_cap_ff: float = 0.0
    dummy_cap_ff: float = 0.0
    driver: Optional[Pin] = None
    sinks: List[Pin] = field(default_factory=list)
    block: str = ""
    channel: Optional[str] = None
    rail: Optional[int] = None

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def connections(self) -> Iterator[Pin]:
        if self.driver is not None:
            yield self.driver
        yield from self.sinks


@dataclass
class Instance:
    """A gate instance: a named occurrence of a library cell.

    ``connections`` maps cell pin names to net names.  ``block`` records which
    architectural block (Fig. 8 of the paper) the instance belongs to; it is
    the handle the hierarchical place-and-route flow uses to fence cells.
    """

    name: str
    cell: str
    connections: Dict[str, str] = field(default_factory=dict)
    block: str = ""

    def net_of(self, pin: str) -> str:
        try:
            return self.connections[pin]
        except KeyError:
            raise KeyError(f"instance {self.name!r} has no pin {pin!r}") from None


class NetlistError(Exception):
    """Raised for structural inconsistencies in a netlist."""


class Netlist:
    """A flat gate-level netlist with optional block annotations.

    The netlist is *structural*: it records instances, nets and connectivity.
    Behaviour comes from the cell library; electrical values come from the
    extraction step of the place-and-route substrate.
    """

    def __init__(self, name: str, library: Optional[CellLibrary] = None):
        self.name = name
        self.library = library if library is not None else DEFAULT_LIBRARY
        self._nets: Dict[str, Net] = {}
        self._instances: Dict[str, Instance] = {}
        self._ports: Dict[str, Port] = {}
        self._topology_version = 0
        self._cap_version = 0

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped on every structural change.

        Structural means nets or instances added — electrical annotations
        (routing capacitances) do not count.  The compiled simulation engine
        (:mod:`repro.circuits.engine`) keys its per-netlist evaluation tables
        on this counter, so structural edits transparently invalidate them.
        """
        return self._topology_version

    @property
    def cap_version(self) -> int:
        """Monotonic counter bumped on every capacitance change.

        Electrical annotations (routing capacitances written back by the
        extraction step, dummy loads inserted by a hardening pass) bump this
        counter without touching :attr:`topology_version`.  Consumers that
        cache capacitance-derived state — the trace generators of
        :mod:`repro.asyncaes` cache per-rail load-capacitance matrices —
        key their caches on :attr:`state_version` so a hardening mutation
        transparently invalidates them.
        """
        return self._cap_version

    @property
    def state_version(self) -> Tuple[int, int]:
        """``(topology_version, cap_version)`` — the full cache key."""
        return (self._topology_version, self._cap_version)

    def touch_caps(self) -> None:
        """Record a capacitance change made directly on :class:`Net` objects.

        The extraction back-annotation writes ``routing_cap_ff`` on many nets
        and then calls this once; passes that go through
        :meth:`set_routing_cap` / :meth:`add_dummy_load` never need it.
        """
        self._cap_version += 1

    # ------------------------------------------------------------------ nets
    def add_net(self, name: str, *, block: str = "", channel: Optional[str] = None,
                rail: Optional[int] = None) -> Net:
        """Create a net; returns the existing one if already present."""
        if name in self._nets:
            net = self._nets[name]
            if block and not net.block:
                net.block = block
            if channel is not None and net.channel is None:
                net.channel = channel
                net.rail = rail
            return net
        net = Net(name=name, block=block, channel=channel, rail=rail)
        self._nets[name] = net
        self._topology_version += 1
        return net

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"unknown net {name!r} in netlist {self.name!r}") from None

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def nets(self) -> Iterator[Net]:
        return iter(self._nets.values())

    def net_names(self) -> List[str]:
        return list(self._nets)

    @property
    def net_count(self) -> int:
        return len(self._nets)

    # ------------------------------------------------------------- instances
    def add_instance(self, name: str, cell: str,
                     connections: Mapping[str, str], *, block: str = "") -> Instance:
        """Instantiate a library cell and hook up its pins.

        Every referenced net is created on demand.  Output pins become net
        drivers; a net with two drivers raises :class:`NetlistError` (QDI
        circuits in this study never share drivers).
        """
        if name in self._instances:
            raise NetlistError(f"duplicate instance name {name!r}")
        cell_type = self.library.get(cell)
        missing = set(cell_type.pin_names) - set(connections)
        if missing:
            raise NetlistError(
                f"instance {name!r} of cell {cell!r} is missing pins {sorted(missing)}"
            )
        extra = set(connections) - set(cell_type.pin_names)
        if extra:
            raise NetlistError(
                f"instance {name!r} of cell {cell!r} has unknown pins {sorted(extra)}"
            )
        inst = Instance(name=name, cell=cell, connections=dict(connections), block=block)
        self._instances[name] = inst
        self._topology_version += 1
        for pin, net_name in connections.items():
            net = self.add_net(net_name, block=block)
            pin_ref = Pin(instance=name, pin=pin)
            if pin == cell_type.output:
                if net.driver is not None:
                    raise NetlistError(
                        f"net {net_name!r} has two drivers: {net.driver.instance!r} "
                        f"and {name!r}"
                    )
                net.driver = pin_ref
            else:
                net.sinks.append(pin_ref)
        return inst

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(
                f"unknown instance {name!r} in netlist {self.name!r}"
            ) from None

    def has_instance(self, name: str) -> bool:
        return name in self._instances

    def instances(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def instance_names(self) -> List[str]:
        return list(self._instances)

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    def cell_of(self, instance_name: str) -> GateType:
        return self.library.get(self.instance(instance_name).cell)

    # ----------------------------------------------------------------- ports
    def add_port(self, name: str, direction: PortDirection, net: Optional[str] = None) -> Port:
        if name in self._ports:
            raise NetlistError(f"duplicate port {name!r}")
        net_name = net if net is not None else name
        self.add_net(net_name)
        port = Port(name=name, direction=direction, net=net_name)
        self._ports[name] = port
        return port

    def add_input(self, name: str, net: Optional[str] = None) -> Port:
        return self.add_port(name, PortDirection.INPUT, net)

    def add_output(self, name: str, net: Optional[str] = None) -> Port:
        return self.add_port(name, PortDirection.OUTPUT, net)

    def ports(self) -> Iterator[Port]:
        return iter(self._ports.values())

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise NetlistError(f"unknown port {name!r}") from None

    def input_nets(self) -> List[str]:
        return [p.net for p in self._ports.values() if p.direction is PortDirection.INPUT]

    def output_nets(self) -> List[str]:
        return [p.net for p in self._ports.values() if p.direction is PortDirection.OUTPUT]

    # ----------------------------------------------------------- electricals
    def pin_cap_ff(self, net_name: str) -> float:
        """Total gate (pin) capacitance loading a net, in femtofarads."""
        net = self.net(net_name)
        total = 0.0
        for sink in net.sinks:
            cell = self.cell_of(sink.instance)
            total += cell.input_cap_ff
        return total

    def driver_cell(self, net_name: str) -> Optional[GateType]:
        net = self.net(net_name)
        if net.driver is None:
            return None
        return self.cell_of(net.driver.instance)

    def total_cap_ff(self, net_name: str) -> float:
        """Total node capacitance ``C = Cl + Cpar + Csc`` (Section III).

        ``Cl`` is the routing capacitance plus the input capacitance of the
        fanout pins; ``Cpar`` and ``Csc`` come from the driving cell.  Nets
        driven by primary inputs only contribute their load part.
        """
        net = self.net(net_name)
        load = net.routing_cap_ff + net.dummy_cap_ff + self.pin_cap_ff(net_name)
        driver = self.driver_cell(net_name)
        if driver is None:
            return load
        return load + driver.parasitic_cap_ff + driver.short_circuit_cap_ff

    def load_cap_ff(self, net_name: str) -> float:
        """Load capacitance ``Cl`` (routing + dummy loads + fanout pins)."""
        net = self.net(net_name)
        return net.routing_cap_ff + net.dummy_cap_ff + self.pin_cap_ff(net_name)

    def set_routing_cap(self, net_name: str, cap_ff: float) -> None:
        if cap_ff < 0:
            raise ValueError(f"routing capacitance must be >= 0, got {cap_ff}")
        self.net(net_name).routing_cap_ff = cap_ff
        self._cap_version += 1

    def set_routing_caps(self, caps: Mapping[str, float]) -> None:
        for name, value in caps.items():
            self.set_routing_cap(name, value)

    def add_dummy_load(self, net_name: str, cap_ff: float) -> float:
        """Attach ``cap_ff`` of dummy load to a net; returns the new total.

        This is the mutation entry of the dummy-load hardening pass: the extra
        capacitance models unswitched gate inputs / metal fill hung on the
        lighter rail of a channel to equalize it against the heavier one.  The
        addition is cumulative, survives routing re-extraction (which only
        rewrites ``routing_cap_ff``) and bumps :attr:`cap_version` so every
        capacitance-derived cache invalidates.
        """
        if cap_ff < 0:
            raise ValueError(f"dummy load must be >= 0, got {cap_ff}")
        net = self.net(net_name)
        net.dummy_cap_ff += cap_ff
        self._cap_version += 1
        return net.dummy_cap_ff

    def clear_dummy_loads(self) -> int:
        """Remove every dummy load; returns how many nets were trimmed."""
        cleared = 0
        for net in self._nets.values():
            if net.dummy_cap_ff:
                net.dummy_cap_ff = 0.0
                cleared += 1
        if cleared:
            self._cap_version += 1
        return cleared

    def dummy_load_total_ff(self) -> float:
        """Total dummy-load capacitance inserted by hardening passes."""
        return sum(net.dummy_cap_ff for net in self._nets.values())

    def total_area_um2(self) -> float:
        """Sum of the areas of all instantiated cells."""
        return sum(self.cell_of(name).area_um2 for name in self._instances)

    # ------------------------------------------------------------- structure
    def blocks(self) -> List[str]:
        """Sorted list of non-empty block names used by instances."""
        return sorted({inst.block for inst in self._instances.values() if inst.block})

    def instances_in_block(self, block: str) -> List[Instance]:
        return [inst for inst in self._instances.values() if inst.block == block]

    def channels(self) -> Dict[str, List[Net]]:
        """Group nets by channel name (rails sorted by rail index)."""
        grouped: Dict[str, List[Net]] = {}
        for net in self._nets.values():
            if net.channel is not None:
                grouped.setdefault(net.channel, []).append(net)
        for rails in grouped.values():
            rails.sort(key=lambda n: (n.rail if n.rail is not None else 0, n.name))
        return grouped

    def fanout_of(self, instance_name: str) -> List[Instance]:
        """Instances driven (directly) by the output of ``instance_name``."""
        inst = self.instance(instance_name)
        cell = self.library.get(inst.cell)
        out_net = inst.net_of(cell.output)
        return [self.instance(sink.instance) for sink in self.net(out_net).sinks]

    def fanin_of(self, instance_name: str) -> List[Instance]:
        """Instances whose outputs feed the inputs of ``instance_name``."""
        inst = self.instance(instance_name)
        cell = self.library.get(inst.cell)
        result: List[Instance] = []
        for pin in cell.inputs:
            net = self.net(inst.net_of(pin))
            if net.driver is not None:
                result.append(self.instance(net.driver.instance))
        return result

    def validate(self) -> List[str]:
        """Run structural checks; return a list of human-readable problems."""
        problems: List[str] = []
        input_nets = set(self.input_nets())
        for net in self._nets.values():
            if net.driver is None and net.name not in input_nets and net.sinks:
                problems.append(f"net {net.name!r} has sinks but no driver and is not an input")
            if net.driver is None and not net.sinks and net.name not in input_nets:
                problems.append(f"net {net.name!r} is dangling")
        for port in self._ports.values():
            if port.direction is PortDirection.OUTPUT:
                net = self.net(port.net)
                if net.driver is None:
                    problems.append(f"output port {port.name!r} is undriven")
        return problems

    def content_digest(self) -> str:
        """SHA-256 over the full structural *and* electrical state.

        Two netlists with the same instances, connectivity, channel
        annotations, routing capacitances and dummy loads produce the same
        digest regardless of insertion order.  The hardening test-suite uses
        it to prove that a repair pipeline run on an already-balanced design
        is a strict no-op.
        """
        digest = hashlib.sha256()
        for name in sorted(self._nets):
            net = self._nets[name]
            driver = (f"{net.driver.instance}.{net.driver.pin}"
                      if net.driver is not None else "")
            sinks = ",".join(sorted(f"{p.instance}.{p.pin}" for p in net.sinks))
            digest.update(
                f"net|{name}|{net.routing_cap_ff!r}|{net.dummy_cap_ff!r}|"
                f"{driver}|{sinks}|{net.block}|{net.channel}|{net.rail}\n"
                .encode())
        for name in sorted(self._instances):
            inst = self._instances[name]
            pins = ",".join(f"{pin}={net}" for pin, net
                            in sorted(inst.connections.items()))
            digest.update(
                f"inst|{name}|{inst.cell}|{pins}|{inst.block}\n".encode())
        for name in sorted(self._ports):
            port = self._ports[name]
            digest.update(
                f"port|{name}|{port.direction.value}|{port.net}\n".encode())
        return digest.hexdigest()

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Copy the contents of ``other`` into this netlist.

        ``prefix`` is prepended to instance and net names to avoid clashes
        (ports of ``other`` are not copied; connect the prefixed nets
        explicitly instead).
        """
        def rename(name: str) -> str:
            return f"{prefix}{name}" if prefix else name

        for net in other.nets():
            new = self.add_net(rename(net.name), block=net.block,
                               channel=(rename(net.channel) if net.channel else None),
                               rail=net.rail)
            new.routing_cap_ff = net.routing_cap_ff
            new.dummy_cap_ff = net.dummy_cap_ff
        for inst in other.instances():
            self.add_instance(
                rename(inst.name), inst.cell,
                {pin: rename(net) for pin, net in inst.connections.items()},
                block=inst.block,
            )

    def __repr__(self) -> str:
        return (
            f"Netlist(name={self.name!r}, instances={self.instance_count}, "
            f"nets={self.net_count})"
        )
