"""Logic values, transitions and events for the QDI gate-level substrate.

Quasi Delay Insensitive (QDI) circuits are modelled here at the switch/gate
level: every *rail* (wire) carries a binary logic value, and computation is a
sequence of monotonic transitions between the *invalid* (all-zero, "return to
zero") state and a *valid* state where exactly one rail of each 1-of-N channel
is high.  The simulator in :mod:`repro.circuits.simulator` consumes and
produces the event types defined in this module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Logic(enum.IntEnum):
    """Binary logic value of a single rail.

    QDI circuits are hazard free by construction, so an explicit ``X``
    (unknown) value is only used for nets that have never been driven.
    """

    LOW = 0
    HIGH = 1

    def __invert__(self) -> "Logic":
        return Logic.LOW if self is Logic.HIGH else Logic.HIGH

    @property
    def is_high(self) -> bool:
        return self is Logic.HIGH

    @property
    def is_low(self) -> bool:
        return self is Logic.LOW


#: Sentinel used for nets whose value has never been assigned.  QDI blocks are
#: always reset to the all-zero (invalid) state before use, so ``UNKNOWN`` only
#: appears transiently during netlist elaboration.
UNKNOWN: Optional[Logic] = None


class TransitionKind(enum.Enum):
    """Direction of a rail transition."""

    RISING = "rising"
    FALLING = "falling"

    @staticmethod
    def from_values(old: Logic, new: Logic) -> "TransitionKind":
        if new is Logic.HIGH and old is not Logic.HIGH:
            return TransitionKind.RISING
        if new is Logic.LOW and old is not Logic.LOW:
            return TransitionKind.FALLING
        raise ValueError(f"no transition between {old!r} and {new!r}")


@dataclass(frozen=True)
class Transition:
    """A recorded change of a net value at a given simulation time.

    Attributes
    ----------
    net:
        Name of the net that switched.
    time:
        Simulation time (seconds) at which the new value became visible.
    value:
        The new logic value of the net.
    kind:
        Rising or falling edge.
    cause:
        Name of the gate instance (or environment process) that drove the
        transition.  ``None`` for primary-input stimuli.
    level:
        Logical level of the driving gate inside its block (annotated by the
        graph analysis); ``0`` when unknown.  Used by the electrical model to
        attribute current pulses to levels, matching equation (5) of the
        paper.
    """

    net: str
    time: float
    value: Logic
    kind: TransitionKind
    cause: Optional[str] = None
    level: int = 0

    @property
    def is_rising(self) -> bool:
        return self.kind is TransitionKind.RISING

    @property
    def is_falling(self) -> bool:
        return self.kind is TransitionKind.FALLING


@dataclass(order=True)
class Event:
    """A pending net update inside the event-driven simulator.

    Events are ordered by ``(time, sequence)`` so that simultaneous events are
    processed in issue order, which keeps runs deterministic.
    """

    time: float
    sequence: int
    net: str = field(compare=False)
    value: Logic = field(compare=False)
    cause: Optional[str] = field(compare=False, default=None)


@dataclass
class TraceRecord:
    """Complete record of one simulation run.

    The electrical model (:mod:`repro.electrical.current_sim`) converts the
    list of transitions into a transient current waveform; the DPA machinery
    then works on those waveforms.
    """

    transitions: list = field(default_factory=list)
    end_time: float = 0.0

    def add(self, transition: Transition) -> None:
        self.transitions.append(transition)
        if transition.time > self.end_time:
            self.end_time = transition.time

    def transitions_for(self, net: str) -> list:
        """Return the transitions of a single net, in time order."""
        return [t for t in self.transitions if t.net == net]

    def count(self, kind: Optional[TransitionKind] = None) -> int:
        """Number of recorded transitions, optionally filtered by direction."""
        if kind is None:
            return len(self.transitions)
        return sum(1 for t in self.transitions if t.kind is kind)

    def nets_toggled(self) -> set:
        """Set of net names that switched at least once during the run."""
        return {t.net for t in self.transitions}

    def window(self, start: float, stop: float) -> "TraceRecord":
        """Return a copy containing only transitions in ``[start, stop)``."""
        sub = TraceRecord()
        for t in self.transitions:
            if start <= t.time < stop:
                sub.add(t)
        return sub

    def __len__(self) -> int:
        return len(self.transitions)

    def __iter__(self):
        return iter(self.transitions)
