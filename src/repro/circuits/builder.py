"""Helpers for constructing QDI blocks inside a netlist.

:class:`BlockBuilder` wraps a :class:`~repro.circuits.netlist.Netlist` and a
block name, prefixing instance and net names so that several blocks can share
one flat netlist (as required by the place-and-route substrate, which places
cells of every block on one die while remembering which block each cell
belongs to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .channels import ChannelNets, ChannelSpec
from .netlist import Instance, Netlist


class BlockBuilder:
    """Incrementally builds the cells of one named block."""

    def __init__(self, netlist: Netlist, block: str = ""):
        self.netlist = netlist
        self.block = block
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------- nameing
    def _prefixed(self, name: str) -> str:
        return f"{self.block}/{name}" if self.block else name

    def unique_name(self, stem: str) -> str:
        """Return a block-unique name derived from ``stem``."""
        count = self._counters.get(stem, 0)
        self._counters[stem] = count + 1
        suffix = "" if count == 0 else f"_{count}"
        return self._prefixed(f"{stem}{suffix}")

    # ------------------------------------------------------------ elements
    def net(self, name: str, *, channel: Optional[str] = None,
            rail: Optional[int] = None) -> str:
        """Declare (or reuse) a block-local net and return its full name."""
        full = self._prefixed(name)
        self.netlist.add_net(full, block=self.block, channel=channel, rail=rail)
        return full

    def external_net(self, name: str) -> str:
        """Declare (or reuse) a net that is *not* renamed (block boundary)."""
        self.netlist.add_net(name)
        return name

    def gate(self, cell: str, connections: Mapping[str, str],
             name: Optional[str] = None) -> Instance:
        """Instantiate a cell; the instance name is block-prefixed."""
        instance_name = self._prefixed(name) if name else self.unique_name(cell.lower())
        return self.netlist.add_instance(instance_name, cell, dict(connections),
                                         block=self.block)

    def channel(self, name: str, radix: int = 2) -> ChannelNets:
        """Declare a block-local channel (rails + acknowledge)."""
        spec = ChannelSpec(name=self._prefixed(name), radix=radix)
        return spec.declare(self.netlist, block=self.block)


@dataclass
class QDIBlock:
    """Handle returned by the QDI cell builders of :mod:`repro.circuits.library`.

    It records everything the analysis layers need: the channels at the block
    boundary, the acknowledge nets, the logical level of each gate and the
    ``(level, j)`` grid used by the paper to index gate load capacitances
    (``Cl_ij`` = load capacitance of the j-th gate of level i).
    """

    name: str
    netlist: Netlist
    inputs: List[ChannelNets] = field(default_factory=list)
    outputs: List[ChannelNets] = field(default_factory=list)
    ack_out: Optional[str] = None
    ack_in: Optional[str] = None
    reset: Optional[str] = None
    level_of_instance: Dict[str, int] = field(default_factory=dict)
    gate_grid: Dict[Tuple[int, int], str] = field(default_factory=dict)
    rail_cones: Dict[str, List[str]] = field(default_factory=dict)

    # --------------------------------------------------------------- access
    def instance_at(self, level: int, position: int) -> str:
        """Instance name of the gate at ``(level, position)`` (1-based)."""
        try:
            return self.gate_grid[(level, position)]
        except KeyError:
            raise KeyError(
                f"block {self.name!r} has no gate at level {level}, position {position}"
            ) from None

    def net_at(self, level: int, position: int) -> str:
        """Output net of the gate at ``(level, position)``.

        This is the net whose load capacitance the paper calls ``Cl_ij``; the
        Fig. 7 experiments modify exactly these values.
        """
        instance = self.instance_at(level, position)
        cell = self.netlist.cell_of(instance)
        return self.netlist.instance(instance).net_of(cell.output)

    def set_level_cap(self, level: int, position: int, cap_ff: float) -> None:
        """Set the routing capacitance of the ``(level, position)`` gate output."""
        self.netlist.set_routing_cap(self.net_at(level, position), cap_ff)

    def level_caps(self) -> Dict[Tuple[int, int], float]:
        """Current routing capacitance of every gate-output net in the grid."""
        return {
            key: self.netlist.net(self.net_at(*key)).routing_cap_ff
            for key in sorted(self.gate_grid)
        }

    @property
    def depth(self) -> int:
        """Number of logical levels (the paper's ``Nc``)."""
        if not self.level_of_instance:
            return 0
        return max(self.level_of_instance.values())

    def gates_per_level(self) -> Dict[int, int]:
        """Number of gates at each logical level."""
        counts: Dict[int, int] = {}
        for level in self.level_of_instance.values():
            counts[level] = counts.get(level, 0) + 1
        return counts

    def internal_nets(self) -> List[str]:
        """Nets driven by gates of this block (the nets that dissipate)."""
        result = []
        for net in self.netlist.nets():
            if net.driver is not None and net.driver.instance in self.level_of_instance:
                result.append(net.name)
        return result
