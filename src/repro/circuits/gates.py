"""Gate primitives of the QDI cell library.

The paper builds its secured blocks out of a small set of primitives:

* ordinary monotonic CMOS gates (OR, NOR, AND, NAND, inverter, buffer),
* the **Muller C-element**, whose output rises only when *all* inputs are high
  and falls only when *all* inputs are low (Fig. 5 of the paper,
  ``Z = X·Y + Z·(X + Y)``),
* the **resettable Muller gate** (``Cr`` in Fig. 4) used to re-synchronise the
  dual-rail outputs with the acknowledgement signal.

Each primitive is described by a :class:`GateType` carrying the behavioural
model and the electrical parameters (input capacitance, intrinsic parasitic
capacitance, drive factor, area) used by the place-and-route and electrical
substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .signals import Logic

#: Behavioural function: (input values by pin, previous output) -> new output.
#: Returning the previous output models state-holding elements.
EvalFunction = Callable[[Mapping[str, Logic], Logic], Logic]


@dataclass(frozen=True)
class GateType:
    """Static description of a library cell.

    Attributes
    ----------
    name:
        Library cell name, e.g. ``"MULLER2"``.
    inputs:
        Ordered input pin names.
    output:
        Output pin name (all cells in this library are single-output).
    evaluate:
        Behavioural model.  For combinational cells the previous output is
        ignored; for state-holding cells (Muller gates) it is used to keep the
        output when the inputs disagree.
    is_sequential:
        True for state-holding cells.
    input_cap_ff:
        Gate (input pin) capacitance in femtofarads, identical for every pin.
    parasitic_cap_ff:
        Intrinsic output parasitic capacitance ``Cpar`` in femtofarads.
    short_circuit_cap_ff:
        Equivalent short-circuit capacitance ``Csc`` in femtofarads; the paper
        lumps the short-circuit dissipation into an equivalent capacitance
        added to the output node (Section III).
    drive_ohm:
        Equivalent output drive resistance in ohms; combined with the output
        node capacitance it sets the transition time ``Δt`` used in
        equation (12).
    area_um2:
        Cell area used by the placement substrate.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    evaluate: EvalFunction
    is_sequential: bool = False
    input_cap_ff: float = 2.0
    parasitic_cap_ff: float = 1.0
    short_circuit_cap_ff: float = 0.5
    drive_ohm: float = 5000.0
    area_um2: float = 10.0

    @property
    def pin_names(self) -> Tuple[str, ...]:
        return self.inputs + (self.output,)

    def compute(self, values: Mapping[str, Logic], previous: Logic) -> Logic:
        """Evaluate the cell for the given input values."""
        return self.evaluate(values, previous)

    def truth_table(self) -> np.ndarray:
        """Int-coded behavioural table of the cell.

        Entry ``(packed << 1) | previous`` holds the output value for the
        input combination where bit ``i`` of ``packed`` is the value of input
        pin ``i`` (in :attr:`inputs` order) and ``previous`` is the current
        output.  State-holding cells (Muller gates) are fully captured because
        the previous output is part of the index; combinational cells simply
        repeat each entry for both ``previous`` values.

        The compiled simulation engine (:mod:`repro.circuits.engine`) replaces
        every per-event :meth:`compute` call — a dict build plus a Python
        closure — with one lookup into this table.
        """
        n_inputs = len(self.inputs)
        table = np.zeros(1 << (n_inputs + 1), dtype=np.uint8)
        for packed in range(1 << n_inputs):
            values = {pin: Logic((packed >> index) & 1)
                      for index, pin in enumerate(self.inputs)}
            for previous in (Logic.LOW, Logic.HIGH):
                result = self.evaluate(values, previous)
                table[(packed << 1) | int(previous)] = int(result)
        return table


def _all_high(values: Mapping[str, Logic], pins: Sequence[str]) -> bool:
    return all(values[p] is Logic.HIGH for p in pins)


def _all_low(values: Mapping[str, Logic], pins: Sequence[str]) -> bool:
    return all(values[p] is Logic.LOW for p in pins)


def _any_high(values: Mapping[str, Logic], pins: Sequence[str]) -> bool:
    return any(values[p] is Logic.HIGH for p in pins)


def _make_inv() -> GateType:
    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        return ~values["A"]

    return GateType(
        name="INV",
        inputs=("A",),
        output="Z",
        evaluate=evaluate,
        input_cap_ff=1.5,
        parasitic_cap_ff=0.8,
        short_circuit_cap_ff=0.3,
        drive_ohm=4000.0,
        area_um2=5.0,
    )


def _make_buf() -> GateType:
    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        return values["A"]

    return GateType(
        name="BUF",
        inputs=("A",),
        output="Z",
        evaluate=evaluate,
        input_cap_ff=1.5,
        parasitic_cap_ff=1.0,
        short_circuit_cap_ff=0.3,
        drive_ohm=3500.0,
        area_um2=7.0,
    )


def _make_simple(name: str, n_inputs: int, fn: Callable[[Sequence[bool]], bool],
                 area: float, drive: float = 5000.0) -> GateType:
    pins = tuple(chr(ord("A") + i) for i in range(n_inputs))

    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        bits = [values[p] is Logic.HIGH for p in pins]
        return Logic.HIGH if fn(bits) else Logic.LOW

    return GateType(
        name=name,
        inputs=pins,
        output="Z",
        evaluate=evaluate,
        input_cap_ff=2.0,
        parasitic_cap_ff=1.0 + 0.3 * n_inputs,
        short_circuit_cap_ff=0.5,
        drive_ohm=drive,
        area_um2=area,
    )


def _make_muller(n_inputs: int) -> GateType:
    """Muller C-element: output follows inputs only when they all agree."""
    pins = tuple(chr(ord("A") + i) for i in range(n_inputs))

    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        if _all_high(values, pins):
            return Logic.HIGH
        if _all_low(values, pins):
            return Logic.LOW
        return previous

    return GateType(
        name=f"MULLER{n_inputs}",
        inputs=pins,
        output="Z",
        evaluate=evaluate,
        is_sequential=True,
        input_cap_ff=2.5,
        parasitic_cap_ff=1.8,
        short_circuit_cap_ff=0.6,
        drive_ohm=5500.0,
        area_um2=12.0 + 3.0 * n_inputs,
    )


def _make_muller_reset(n_inputs: int) -> GateType:
    """Resettable Muller gate ``Cr`` of Fig. 4.

    The reset pin (active high) forces the output low regardless of the data
    inputs; this implements the return-to-zero of the four-phase protocol when
    the acknowledgement comes back.
    """
    pins = tuple(chr(ord("A") + i) for i in range(n_inputs))

    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        if values["RST"] is Logic.HIGH:
            return Logic.LOW
        if _all_high(values, pins):
            return Logic.HIGH
        if _all_low(values, pins):
            return Logic.LOW
        return previous

    return GateType(
        name=f"MULLER{n_inputs}_R",
        inputs=pins + ("RST",),
        output="Z",
        evaluate=evaluate,
        is_sequential=True,
        input_cap_ff=2.5,
        parasitic_cap_ff=2.0,
        short_circuit_cap_ff=0.7,
        drive_ohm=5800.0,
        area_um2=16.0 + 3.0 * n_inputs,
    )


def _make_muller_set_reset(n_inputs: int) -> GateType:
    """Muller gate with an active-low set used by half-buffer controllers."""
    pins = tuple(chr(ord("A") + i) for i in range(n_inputs))

    def evaluate(values: Mapping[str, Logic], previous: Logic) -> Logic:
        if values["SETN"] is Logic.LOW:
            return Logic.HIGH
        if _all_high(values, pins):
            return Logic.HIGH
        if _all_low(values, pins):
            return Logic.LOW
        return previous

    return GateType(
        name=f"MULLER{n_inputs}_S",
        inputs=pins + ("SETN",),
        output="Z",
        evaluate=evaluate,
        is_sequential=True,
        input_cap_ff=2.5,
        parasitic_cap_ff=2.0,
        short_circuit_cap_ff=0.7,
        drive_ohm=5800.0,
        area_um2=16.0 + 3.0 * n_inputs,
    )


class CellLibrary:
    """Catalogue of :class:`GateType` objects, addressable by name.

    The default library mirrors the primitives the paper uses (Section II and
    Fig. 4/5): inverters, buffers, OR/NOR/AND/NAND of two to four inputs and
    Muller gates of two to four inputs with and without reset.
    """

    def __init__(self, cells: Optional[Dict[str, GateType]] = None):
        self._cells: Dict[str, GateType] = dict(cells) if cells else {}

    def add(self, cell: GateType) -> None:
        if cell.name in self._cells:
            raise ValueError(f"cell {cell.name!r} already registered")
        self._cells[cell.name] = cell

    def get(self, name: str) -> GateType:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"unknown cell {name!r}; available: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> Sequence[str]:
        return sorted(self._cells)


def default_library() -> CellLibrary:
    """Build the default QDI cell library used throughout the reproduction."""
    lib = CellLibrary()
    lib.add(_make_inv())
    lib.add(_make_buf())
    lib.add(_make_simple("AND2", 2, all, area=9.0))
    lib.add(_make_simple("AND3", 3, all, area=11.0))
    lib.add(_make_simple("AND4", 4, all, area=13.0))
    lib.add(_make_simple("NAND2", 2, lambda b: not all(b), area=7.0))
    lib.add(_make_simple("OR2", 2, any, area=9.0))
    lib.add(_make_simple("OR3", 3, any, area=11.0))
    lib.add(_make_simple("OR4", 4, any, area=13.0))
    lib.add(_make_simple("NOR2", 2, lambda b: not any(b), area=7.0))
    lib.add(_make_simple("NOR3", 3, lambda b: not any(b), area=9.0))
    lib.add(_make_simple("NOR4", 4, lambda b: not any(b), area=11.0))
    lib.add(_make_simple("XOR2", 2, lambda b: b[0] ^ b[1], area=14.0))
    lib.add(_make_muller(2))
    lib.add(_make_muller(3))
    lib.add(_make_muller(4))
    lib.add(_make_muller_reset(2))
    lib.add(_make_muller_reset(3))
    lib.add(_make_muller_set_reset(2))
    return lib


#: Shared default library instance; treat as read-only.
DEFAULT_LIBRARY = default_library()
