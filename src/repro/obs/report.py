"""The ``RunReport`` text tree: per-phase wall time, throughput and RSS.

Renders a recorded :class:`~repro.obs.telemetry.SpanNode` tree as a
fixed-width report::

    run                                             12.431 s  rss 182.3 MiB
    └─ campaign [scenarios=4 workers=2]             12.400 s
       ├─ campaign.scenario [noiseless/flat]         3.100 s
       │  ├─ campaign.generate                       1.210 s  traces=800 (661/s)
       │  └─ campaign.attack [dpa]                   0.480 s
       └─ ...

Counters print inline; the throughput counters (traces, chunks, moves,
events) also print a per-second rate against their span's wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .telemetry import SpanNode, Telemetry

#: Counters worth a per-second rate next to the raw total.
RATE_COUNTERS = frozenset({
    "traces", "chunks", "moves_proposed", "moves_committed",
    "sim_events", "stimuli", "nets_reextracted",
})

#: Attributes of one span line, rendered inside ``[...]`` after the name.
_LABEL_WIDTH = 46


def _attr_text(node: SpanNode) -> str:
    if not node.attrs:
        return ""
    parts = []
    for key, value in node.attrs.items():
        if isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return " [" + " ".join(parts) + "]"


def _metric_text(node: SpanNode) -> str:
    parts = []
    for name, value in node.counters.items():
        text = f"{name}={value:g}"
        if name in RATE_COUNTERS and node.duration_s > 0:
            text += f" ({value / node.duration_s:,.0f}/s)"
        parts.append(text)
    for name, value in node.gauges.items():
        if name == "rss_peak_kb":
            parts.append(f"rss {value / 1024.0:.1f} MiB")
        else:
            parts.append(f"{name}={value:g}")
    return ("  " + "  ".join(parts)) if parts else ""


@dataclass
class RunReport:
    """A rendered view over one telemetry tree."""

    root: SpanNode

    @classmethod
    def from_telemetry(cls, telemetry: Telemetry) -> "RunReport":
        return cls(telemetry.snapshot())

    def render(self, *, max_depth: Optional[int] = None) -> str:
        """The fixed-width text tree (``max_depth`` prunes deep spans)."""
        lines: List[str] = []

        def visit(node: SpanNode, lead: str, child_lead: str,
                  depth: int) -> None:
            label = lead + node.name + _attr_text(node)
            lines.append(f"{label:<{_LABEL_WIDTH}s} "
                         f"{node.duration_s:9.3f} s{_metric_text(node)}")
            if max_depth is not None and depth + 1 > max_depth:
                if node.children:
                    lines.append(f"{child_lead}… {len(node.children)} "
                                 "nested span(s) pruned")
                return
            for index, child in enumerate(node.children):
                last = index == len(node.children) - 1
                visit(child,
                      child_lead + ("└─ " if last else "├─ "),
                      child_lead + ("   " if last else "│  "),
                      depth + 1)

        visit(self.root, "", "", 0)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def phase_totals(self) -> Dict[str, Tuple[int, float]]:
        """Per span name: (occurrences, summed wall time) over the tree."""
        totals: Dict[str, Tuple[int, float]] = {}
        for _depth, node in self.root.walk():
            count, elapsed = totals.get(node.name, (0, 0.0))
            totals[node.name] = (count + 1, elapsed + node.duration_s)
        return totals
