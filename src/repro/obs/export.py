"""Telemetry exporters: JSONL event log and columnar metrics rows.

Two machine-readable views of a recorded span tree:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per span in
  depth-first order (``depth`` rebuilds the nesting), lossless round trip
  of names, attributes, counters and gauges;
* :func:`telemetry_rows` / :func:`telemetry_frame` — flat
  :class:`TelemetryRow` records (one per span, counter and gauge) that the
  columnar :mod:`repro.store` layer persists as a ``telemetry`` frame next
  to the shard manifests, queryable like any campaign table.

:mod:`repro.store` is imported lazily so ``repro.obs`` stays a leaf.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .telemetry import SpanNode, TelemetryError


def span_events(root: SpanNode) -> List[Dict[str, object]]:
    """Depth-first event dicts of the tree (the JSONL line payloads)."""
    events = []
    for depth, node in root.walk():
        events.append({
            "type": "span",
            "depth": depth,
            "name": node.name,
            "start_s": node.start_s,
            "duration_s": node.duration_s,
            "attrs": node.attrs,
            "counters": node.counters,
            "gauges": node.gauges,
        })
    return events


def write_jsonl(root: SpanNode, path: Union[str, Path]) -> Path:
    """Write the tree as one JSON object per line; returns the path.

    Attribute values that are not JSON-serializable degrade to ``str``.
    """
    path = Path(path)
    with path.open("w") as handle:
        for event in span_events(root):
            handle.write(json.dumps(event, sort_keys=True, default=str))
            handle.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> SpanNode:
    """Rebuild the span tree from a :func:`write_jsonl` event log."""
    stack: List[SpanNode] = []
    root: Optional[SpanNode] = None
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            node = SpanNode(
                name=event["name"],
                attrs=dict(event.get("attrs", {})),
                start_s=float(event.get("start_s", 0.0)),
                duration_s=float(event.get("duration_s", 0.0)),
                counters=dict(event.get("counters", {})),
                gauges=dict(event.get("gauges", {})),
            )
            depth = int(event["depth"])
            if depth == 0:
                if root is not None:
                    raise TelemetryError(
                        f"{path}:{line_number}: second depth-0 span — a "
                        "JSONL log holds exactly one tree")
                root = node
                stack = [node]
                continue
            if root is None or depth > len(stack):
                raise TelemetryError(
                    f"{path}:{line_number}: span at depth {depth} has no "
                    "parent — event log is corrupt")
            del stack[depth:]
            stack[-1].children.append(node)
            stack.append(node)
    if root is None:
        raise TelemetryError(f"{path}: empty telemetry event log")
    return root


# ----------------------------------------------------------- columnar rows
@dataclass
class TelemetryRow:
    """One flat metrics record: a span, or one counter/gauge of a span.

    ``path`` is the deterministic tree address — ``/``-joined span names
    with a per-name sibling index (``run/campaign/campaign.scenario[1]``).
    """

    record_type: str          # "span" | "counter" | "gauge"
    path: str
    name: str
    start_s: Optional[float] = None
    duration_s: Optional[float] = None
    value: Optional[float] = None
    shard: Optional[int] = None
    attrs: str = ""


def telemetry_rows(root: SpanNode) -> List[TelemetryRow]:
    """Flatten the tree into :class:`TelemetryRow` records, tree order."""
    rows: List[TelemetryRow] = []

    def visit(node: SpanNode, parent_path: str, sibling_index: int) -> None:
        name = (node.name if sibling_index == 0
                else f"{node.name}[{sibling_index}]")
        path = f"{parent_path}/{name}" if parent_path else name
        shard = node.attrs.get("shard")
        rows.append(TelemetryRow(
            record_type="span", path=path, name=node.name,
            start_s=node.start_s, duration_s=node.duration_s,
            shard=shard if isinstance(shard, int) else None,
            attrs=json.dumps(node.attrs, sort_keys=True, default=str)
            if node.attrs else "",
        ))
        for kind, metrics in (("counter", node.counters),
                              ("gauge", node.gauges)):
            for metric, value in metrics.items():
                rows.append(TelemetryRow(record_type=kind, path=path,
                                         name=metric, value=float(value)))
        seen: Dict[str, int] = {}
        for child in node.children:
            index = seen.get(child.name, 0)
            seen[child.name] = index + 1
            visit(child, path, index)

    visit(root, "", 0)
    return rows


def telemetry_frame(root: SpanNode):
    """The tree as a columnar ``telemetry``-kind ``CampaignFrame``."""
    from ..store import CampaignFrame

    return CampaignFrame.from_rows(telemetry_rows(root), kind="telemetry")
