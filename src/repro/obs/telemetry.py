"""Hierarchical spans, counters and gauges — the telemetry core.

One :class:`Telemetry` collector owns a tree of :class:`SpanNode` records.
Instrumented code opens context-manager spans around its phases::

    telemetry = Telemetry()
    with use(telemetry):
        with current().span("campaign.scenario", design="flat", attack="dpa"):
            current().count("traces", 800)

and every counter/gauge lands on the innermost open span.  The tree is a
plain picklable dataclass, so a forked worker can record into a *fresh*
collector and ship ``snapshot()`` back to the parent, which grafts it with
:meth:`Telemetry.adopt` — serial and sharded runs then produce the same
span-tree shape, with deterministic per-shard attribution (the shard index,
never a pid).

Disabled mode is the module default: :data:`NULL_TELEMETRY` is a no-op
singleton whose ``count``/``gauge`` — the hot-loop entry points — do
nothing at all.  Its ``span`` still *times* (two ``perf_counter`` calls at
coarse phase boundaries) without recording, so callers such as the harden
pipeline can use a span as their only clock and keep populating durations
even when telemetry is off.

Everything here is stdlib-only; the package is a dependency leaf importable
from anywhere in the repo (including :mod:`repro.store`).
"""

from __future__ import annotations

import sys
import time
import resource
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class TelemetryError(Exception):
    """Raised on span misuse (out-of-order close, adopting into no tree)."""


@dataclass
class SpanNode:
    """One recorded span: a named, timed region with attributes and metrics.

    ``start_s`` is relative to the owning collector's creation time, so
    trees merged across processes stay comparable.  The node is a plain
    picklable dataclass — it crosses the ``fork`` boundary as a worker's
    return value.
    """

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "SpanNode"]]:
        """Depth-first (node, depth) traversal of the subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def shape(self) -> tuple:
        """The nested name tuple of the subtree — tree-shape equality."""
        return (self.name, tuple(child.shape() for child in self.children))

    def find(self, name: str) -> List["SpanNode"]:
        """Every node of the subtree with the given span name, in order."""
        return [node for _depth, node in self.walk() if node.name == name]

    def total(self, counter: str) -> float:
        """Sum of one counter over the whole subtree."""
        return sum(node.counters.get(counter, 0)
                   for _depth, node in self.walk())


class Span:
    """Context manager around one timed region.

    A span *always* measures wall time — ``duration_s`` is valid after
    ``__exit__`` even under the disabled no-op telemetry, so instrumented
    code can use its span as its one clock.  Only recording spans (those
    issued by a real :class:`Telemetry`) allocate a :class:`SpanNode` in
    the collector's tree.
    """

    __slots__ = ("_telemetry", "node", "duration_s", "_t0")

    def __init__(self, telemetry: Optional["Telemetry"], name: str,
                 attrs: Dict[str, Any]):
        self._telemetry = telemetry
        self.node = (SpanNode(name=name, attrs=attrs)
                     if telemetry is not None else None)
        self.duration_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        if self._telemetry is not None:
            self._telemetry._push(self.node)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if self._telemetry is not None:
            self.node.duration_s = self.duration_s
            self._telemetry._pop(self.node)
        return False


def _peak_rss_kb() -> float:
    """Peak RSS of this process in KiB (``ru_maxrss`` is bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


class Telemetry:
    """A hierarchical, fork-safe telemetry collector.

    The collector keeps an explicit span stack rooted at ``self.root``;
    ``count``/``gauge`` attribute to the innermost open span.  It is *not*
    thread-safe (the repo parallelizes by forking, not threading): a forked
    worker must record into its own fresh ``Telemetry`` and return
    ``snapshot()`` for the parent to :meth:`adopt`.
    """

    enabled = True

    def __init__(self, name: str = "run"):
        self._t0 = time.perf_counter()
        self.root = SpanNode(name=name)
        self._stack: List[SpanNode] = [self.root]

    # -------------------------------------------------------------- spans
    def span(self, name: str, /, **attrs: Any) -> Span:
        """A recording context-manager span nested under the current one."""
        return Span(self, name, attrs)

    def _push(self, node: SpanNode) -> None:
        node.start_s = time.perf_counter() - self._t0
        self._stack[-1].children.append(node)
        self._stack.append(node)

    def _pop(self, node: SpanNode) -> None:
        if self._stack[-1] is not node:
            raise TelemetryError(
                f"span {node.name!r} closed while "
                f"{self._stack[-1].name!r} is innermost — spans must nest")
        self._stack.pop()

    # ------------------------------------------------------------ metrics
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a counter of the innermost open span."""
        counters = self._stack[-1].counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float, *, mode: str = "set") -> None:
        """Record a gauge on the innermost open span (``mode='max'`` keeps
        the maximum seen instead of the last value)."""
        gauges = self._stack[-1].gauges
        if mode == "max" and name in gauges:
            value = max(value, gauges[name])
        gauges[name] = value

    def record_rss(self) -> None:
        """Record this process's peak RSS (KiB) on the current span."""
        self.gauge("rss_peak_kb", _peak_rss_kb(), mode="max")

    # ------------------------------------------------------------- merging
    def snapshot(self) -> SpanNode:
        """The recorded tree; the root's duration is the elapsed time."""
        self.root.duration_s = time.perf_counter() - self._t0
        return self.root

    def adopt(self, root: SpanNode, *, shard: Optional[int] = None,
              worker: Optional[int] = None) -> None:
        """Graft a worker's recorded tree under the current span.

        The worker's root wrapper is dropped: its children become children
        of the parent's innermost open span, so serial and sharded runs
        produce the same tree shape.  ``shard`` tags each adopted top-level
        span — deterministic attribution (pass the scenario/shard *index*,
        never a pid).  ``worker`` additionally tags which pool worker ran
        the shard — an observability attribute only: the :mod:`repro.serve`
        scheduler adopts trees in deterministic job order, so the tree
        shape stays independent of which worker happened to be free.
        Root-level counters add into the current span; root-level gauges
        max-merge.
        """
        target = self._stack[-1]
        for child in root.children:
            if shard is not None:
                child.attrs.setdefault("shard", shard)
            if worker is not None:
                child.attrs.setdefault("worker", worker)
            target.children.append(child)
        for name, value in root.counters.items():
            target.counters[name] = target.counters.get(name, 0) + value
        for name, value in root.gauges.items():
            self.gauge(name, value, mode="max")


class NullTelemetry:
    """The disabled no-op singleton.

    ``count``/``gauge`` — the entry points that sit inside hot loops — do
    nothing.  ``span`` returns a non-recording :class:`Span` that still
    measures its duration (two ``perf_counter`` calls at coarse phase
    boundaries), so timing consumers keep working with telemetry off.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, /, **attrs: Any) -> Span:
        return Span(None, name, attrs)

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float, *, mode: str = "set") -> None:
        pass

    def record_rss(self) -> None:
        pass

    def adopt(self, root: SpanNode, *, shard: Optional[int] = None,
              worker: Optional[int] = None) -> None:
        pass


#: The process-wide disabled default; instrumented code pays one global
#: read plus a no-op method call per metric when telemetry is off.
NULL_TELEMETRY = NullTelemetry()

_CURRENT = NULL_TELEMETRY


def current():
    """The ambient collector (:data:`NULL_TELEMETRY` unless :func:`use`\\ d)."""
    return _CURRENT


@contextmanager
def use(telemetry):
    """Install ``telemetry`` as the ambient collector for a ``with`` body.

    Nested ``use`` blocks restore the previous collector on exit.  Forked
    children inherit the parent's installed collector — workers check
    ``current().enabled`` and, when set, record into their own fresh
    :class:`Telemetry` under a nested ``use``.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    try:
        yield telemetry
    finally:
        _CURRENT = previous
