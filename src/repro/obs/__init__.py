"""Observability: hierarchical spans, counters/gauges and run reports.

The repo's dependency-free telemetry layer.  A :class:`Telemetry` collector
records a tree of timed spans with structured attributes; counters and
gauges attribute to the innermost open span; forked shard workers record
locally and the parent merges their trees deterministically.  Disabled mode
(:data:`NULL_TELEMETRY`, the ambient default) is a no-op singleton.

Entry points that accept a collector: ``AttackCampaign.run(telemetry=…)``
and ``PlacementSweep.run(telemetry=…)``.  Exporters: :class:`RunReport`
(text tree), :func:`write_jsonl`/:func:`read_jsonl` (event log) and
:func:`telemetry_frame` (columnar metrics via :mod:`repro.store`).
"""

from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    SpanNode,
    Telemetry,
    TelemetryError,
    current,
    use,
)
from .report import RunReport
from .export import (
    TelemetryRow,
    read_jsonl,
    span_events,
    telemetry_frame,
    telemetry_rows,
    write_jsonl,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RunReport",
    "Span",
    "SpanNode",
    "Telemetry",
    "TelemetryError",
    "TelemetryRow",
    "current",
    "read_jsonl",
    "span_events",
    "telemetry_frame",
    "telemetry_rows",
    "use",
    "write_jsonl",
]
