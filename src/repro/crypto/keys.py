"""Key and plaintext utilities shared by the DPA experiments.

DPA attacks are Monte-Carlo experiments over random plaintexts; this module
centralises the reproducible random generation of plaintexts/keys and a few
bit-level helpers (Hamming weight, bit extraction) used by selection
functions and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np


def hamming_weight(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError(f"hamming_weight expects a non-negative value, got {value}")
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    return hamming_weight(a ^ b)


def bit_of(value: int, bit_index: int) -> int:
    """Extract bit ``bit_index`` (0 = least significant) of an integer."""
    if bit_index < 0:
        raise ValueError(f"bit index must be >= 0, got {bit_index}")
    return (value >> bit_index) & 1


def bytes_to_int(data: Sequence[int]) -> int:
    """Big-endian packing of a byte sequence into an integer."""
    value = 0
    for byte in data:
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte {byte} out of range")
        value = (value << 8) | byte
    return value


def int_to_bytes(value: int, length: int) -> List[int]:
    """Big-endian unpacking of an integer into ``length`` bytes."""
    if value < 0 or value >= (1 << (8 * length)):
        raise ValueError(f"value {value} does not fit in {length} bytes")
    return [(value >> (8 * (length - 1 - i))) & 0xFF for i in range(length)]


@dataclass
class PlaintextGenerator:
    """Reproducible random plaintext source.

    Parameters
    ----------
    block_size:
        Number of bytes per plaintext (16 for AES, 8 for DES).
    seed:
        Seed of the dedicated random generator.
    """

    block_size: int = 16
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block size must be >= 1, got {self.block_size}")
        self._rng = np.random.default_rng(self.seed)

    def next(self) -> List[int]:
        """One uniformly random plaintext block."""
        return [int(b) for b in self._rng.integers(0, 256, size=self.block_size)]

    def batch(self, count: int) -> List[List[int]]:
        """A list of ``count`` random plaintext blocks."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.next() for _ in range(count)]

    def __iter__(self) -> Iterator[List[int]]:
        while True:
            yield self.next()


def random_key(length: int, seed: Optional[int] = None) -> List[int]:
    """A uniformly random key of ``length`` bytes (reproducible via ``seed``)."""
    rng = np.random.default_rng(seed)
    return [int(b) for b in rng.integers(0, 256, size=length)]
