"""Constant tables of the Rijndael / AES algorithm (FIPS-197).

The S-box is generated from its algebraic definition (multiplicative inverse
in GF(2^8) followed by an affine transformation) rather than hard-coded, so
the test-suite can cross-check the generated table against the published
reference values.
"""

from __future__ import annotations

from typing import List, Tuple

#: The AES irreducible polynomial x^8 + x^4 + x^3 + x + 1.
AES_MODULUS = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_MODULUS
        b >>= 1
    return result & 0xFF


def gf_pow(a: int, exponent: int) -> int:
    """Exponentiation in GF(2^8)."""
    result = 1
    base = a & 0xFF
    e = exponent
    while e:
        if e & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        e >>= 1
    return result


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); the inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # The multiplicative group has order 255, so a^254 = a^-1.
    return gf_pow(a, 254)


def _affine(byte: int) -> int:
    """The affine transformation of the AES S-box."""
    result = 0
    for bit in range(8):
        value = (
            (byte >> bit) & 1
            ^ (byte >> ((bit + 4) % 8)) & 1
            ^ (byte >> ((bit + 5) % 8)) & 1
            ^ (byte >> ((bit + 6) % 8)) & 1
            ^ (byte >> ((bit + 7) % 8)) & 1
            ^ (0x63 >> bit) & 1
        )
        result |= value << bit
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        transformed = _affine(gf_inverse(value))
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

#: Round constants for the key expansion (first byte of each RCON word).
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

#: MixColumns coefficient matrix (encryption direction).
MIX_COLUMNS_MATRIX = (
    (2, 3, 1, 1),
    (1, 2, 3, 1),
    (1, 1, 2, 3),
    (3, 1, 1, 2),
)

#: InvMixColumns coefficient matrix (decryption direction).
INV_MIX_COLUMNS_MATRIX = (
    (14, 11, 13, 9),
    (9, 14, 11, 13),
    (13, 9, 14, 11),
    (11, 13, 9, 14),
)
