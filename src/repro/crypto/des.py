"""Reference implementation of the DES block cipher.

Reference [5] of the paper (and the selection-function example of
Section IV) uses DES: the classical DPA of Kocher / Messerges targets the
output of the first S-box of the first round,

    ``D(C1, P6, K0) = SBOX1(P6 ⊕ K0)(C1)``

where ``P6`` is the 6-bit chunk of expanded plaintext entering S-box 1 and
``K0`` the corresponding 6 bits of the first round key.  This module provides
the full cipher (so test vectors can be checked) together with the low-level
accessors the DPA selection functions need: the expansion of the right half,
the per-round 48-bit keys and the individual S-boxes.

Bit ordering follows the FIPS-46 convention: bit 1 is the most significant
bit of the 64-bit block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

# --------------------------------------------------------------- DES tables
IP = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
]

FP = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
]

E = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]

P = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]

PC1 = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
]

PC2 = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
]

SHIFT_SCHEDULE = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

SBOXES = [
    # S1
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    # S2
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    # S3
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    # S4
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    # S5
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    # S6
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    # S7
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    # S8
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
]


class DESError(Exception):
    """Raised for malformed keys or blocks."""


# -------------------------------------------------------------- bit helpers
def bytes_to_bits(data: Sequence[int], width: int = 8) -> List[int]:
    """Expand a byte sequence into a most-significant-bit-first bit list."""
    bits: List[int] = []
    for value in data:
        if not 0 <= value < (1 << width):
            raise DESError(f"value {value} out of range for width {width}")
        bits.extend((value >> (width - 1 - i)) & 1 for i in range(width))
    return bits


def bits_to_bytes(bits: Sequence[int], width: int = 8) -> List[int]:
    """Pack a bit list (MSB first) back into integers of the given width."""
    if len(bits) % width != 0:
        raise DESError(f"bit length {len(bits)} is not a multiple of {width}")
    values = []
    for index in range(0, len(bits), width):
        value = 0
        for bit in bits[index: index + width]:
            value = (value << 1) | (bit & 1)
        values.append(value)
    return values


def permute(bits: Sequence[int], table: Sequence[int]) -> List[int]:
    """Apply a 1-based permutation/selection table to a bit list."""
    return [bits[position - 1] for position in table]


def _rotate_left(bits: List[int], count: int) -> List[int]:
    return bits[count:] + bits[:count]


def _xor_bits(a: Sequence[int], b: Sequence[int]) -> List[int]:
    return [x ^ y for x, y in zip(a, b)]


def sbox_lookup(sbox_index: int, six_bits: int) -> int:
    """Look up one S-box: 6-bit input, 4-bit output.

    ``six_bits`` uses the DES convention: bits 1 and 6 select the row and bits
    2–5 the column.
    """
    if not 0 <= sbox_index < 8:
        raise DESError(f"S-box index must be 0..7, got {sbox_index}")
    if not 0 <= six_bits < 64:
        raise DESError(f"S-box input must be 6 bits, got {six_bits}")
    row = ((six_bits >> 5) & 1) << 1 | (six_bits & 1)
    column = (six_bits >> 1) & 0xF
    return SBOXES[sbox_index][row][column]


# ------------------------------------------------------------- key schedule
def key_schedule(key: Sequence[int]) -> List[List[int]]:
    """Derive the sixteen 48-bit round keys (as bit lists) from an 8-byte key."""
    if len(key) != 8:
        raise DESError(f"DES key must be 8 bytes, got {len(key)}")
    key_bits = bytes_to_bits(key)
    permuted = permute(key_bits, PC1)
    c, d = permuted[:28], permuted[28:]
    round_keys = []
    for shift in SHIFT_SCHEDULE:
        c = _rotate_left(c, shift)
        d = _rotate_left(d, shift)
        round_keys.append(permute(c + d, PC2))
    return round_keys


def round_key_sbox_chunk(round_key_bits: Sequence[int], sbox_index: int) -> int:
    """The 6-bit chunk of a round key feeding S-box ``sbox_index`` (0-based)."""
    chunk = round_key_bits[6 * sbox_index: 6 * sbox_index + 6]
    value = 0
    for bit in chunk:
        value = (value << 1) | bit
    return value


# ---------------------------------------------------------------- the cipher
def feistel(right_bits: Sequence[int], round_key_bits: Sequence[int]) -> List[int]:
    """The DES round function f(R, K)."""
    expanded = permute(list(right_bits), E)
    mixed = _xor_bits(expanded, round_key_bits)
    substituted: List[int] = []
    for sbox_index in range(8):
        six = 0
        for bit in mixed[6 * sbox_index: 6 * sbox_index + 6]:
            six = (six << 1) | bit
        substituted.extend(bytes_to_bits([sbox_lookup(sbox_index, six)], width=4))
    return permute(substituted, P)


def expanded_plaintext_chunk(plaintext: Sequence[int], sbox_index: int) -> int:
    """The 6-bit chunk of E(R0) feeding S-box ``sbox_index`` in round 1.

    This is the ``P6`` of the DES selection function of Section IV.
    """
    bits = permute(bytes_to_bits(list(plaintext)), IP)
    right = bits[32:]
    expanded = permute(right, E)
    chunk = expanded[6 * sbox_index: 6 * sbox_index + 6]
    value = 0
    for bit in chunk:
        value = (value << 1) | bit
    return value


@dataclass
class DES:
    """DES cipher bound to a fixed 8-byte key."""

    key: Sequence[int]

    def __post_init__(self) -> None:
        self.key = list(self.key)
        self.round_keys = key_schedule(self.key)

    def _crypt(self, block: Sequence[int], keys: Sequence[Sequence[int]]) -> List[int]:
        if len(block) != 8:
            raise DESError(f"DES block must be 8 bytes, got {len(block)}")
        bits = permute(bytes_to_bits(list(block)), IP)
        left, right = bits[:32], bits[32:]
        for round_key in keys:
            left, right = right, _xor_bits(left, feistel(right, round_key))
        return bits_to_bytes(permute(right + left, FP))

    def encrypt_block(self, plaintext: Sequence[int]) -> List[int]:
        """Encrypt one 8-byte block."""
        return self._crypt(plaintext, self.round_keys)

    def decrypt_block(self, ciphertext: Sequence[int]) -> List[int]:
        """Decrypt one 8-byte block."""
        return self._crypt(ciphertext, list(reversed(self.round_keys)))

    def first_round_sbox_output(self, plaintext: Sequence[int], sbox_index: int = 0) -> int:
        """4-bit output of S-box ``sbox_index`` during the first round."""
        chunk = expanded_plaintext_chunk(plaintext, sbox_index)
        key_chunk = round_key_sbox_chunk(self.round_keys[0], sbox_index)
        return sbox_lookup(sbox_index, chunk ^ key_chunk)


def encrypt(plaintext: Sequence[int], key: Sequence[int]) -> List[int]:
    """One-shot DES block encryption."""
    return DES(key).encrypt_block(plaintext)


def decrypt(ciphertext: Sequence[int], key: Sequence[int]) -> List[int]:
    """One-shot DES block decryption."""
    return DES(key).decrypt_block(ciphertext)
