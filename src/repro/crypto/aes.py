"""Reference implementation of the AES (Rijndael) block cipher.

The asynchronous AES crypto-processor evaluated in Section VI of the paper
implements the Rijndael algorithm of FIPS-197 with a 32-bit iterative
datapath.  This module provides the software reference: block encryption and
decryption for 128/192/256-bit keys, the key expansion, and a round-by-round
API exposing every intermediate state so that

* the gate/block-level asynchronous model (:mod:`repro.asyncaes`) can be
  checked for functional equivalence, and
* the DPA experiments can compute the exact intermediate values targeted by
  the selection functions of Section IV.

The state is represented as a list of 16 byte values in the column-major
order of FIPS-197 (``state[r + 4*c]`` is row ``r`` of column ``c``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .aes_tables import (
    INV_MIX_COLUMNS_MATRIX,
    INV_SBOX,
    MIX_COLUMNS_MATRIX,
    RCON,
    SBOX,
    gf_mul,
)

#: Number of rounds per key length (in bytes).
ROUNDS_BY_KEY_SIZE = {16: 10, 24: 12, 32: 14}

State = List[int]


class AESError(Exception):
    """Raised for malformed keys or blocks."""


# ----------------------------------------------------------------- utilities
def _check_block(block: Sequence[int]) -> List[int]:
    if len(block) != 16 or any(not 0 <= b <= 0xFF for b in block):
        raise AESError("AES block must be 16 bytes in range 0..255")
    return list(block)


def bytes_to_state(block: Sequence[int]) -> State:
    """Convert a 16-byte block (natural order) into the column-major state."""
    block = _check_block(block)
    state = [0] * 16
    for index, value in enumerate(block):
        column, row = divmod(index, 4)
        state[row + 4 * column] = value
    return state


def state_to_bytes(state: State) -> List[int]:
    """Convert a column-major state back to a 16-byte block."""
    block = [0] * 16
    for column in range(4):
        for row in range(4):
            block[4 * column + row] = state[row + 4 * column]
    return block


# ------------------------------------------------------------- round steps
def sub_bytes(state: State) -> State:
    """Apply the S-box to every state byte (the ByteSub of the paper)."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: State) -> State:
    return [INV_SBOX[b] for b in state]


def shift_rows(state: State) -> State:
    """Rotate row ``r`` left by ``r`` positions (the ShiftRow block)."""
    result = [0] * 16
    for row in range(4):
        for column in range(4):
            result[row + 4 * column] = state[row + 4 * ((column + row) % 4)]
    return result


def inv_shift_rows(state: State) -> State:
    result = [0] * 16
    for row in range(4):
        for column in range(4):
            result[row + 4 * ((column + row) % 4)] = state[row + 4 * column]
    return result


def _mix_single_column(column: Sequence[int], matrix) -> List[int]:
    return [
        gf_mul(matrix[row][0], column[0])
        ^ gf_mul(matrix[row][1], column[1])
        ^ gf_mul(matrix[row][2], column[2])
        ^ gf_mul(matrix[row][3], column[3])
        for row in range(4)
    ]


def mix_columns(state: State) -> State:
    """Multiply every column by the MixColumn matrix."""
    result = [0] * 16
    for column in range(4):
        mixed = _mix_single_column(state[4 * column: 4 * column + 4], MIX_COLUMNS_MATRIX)
        result[4 * column: 4 * column + 4] = mixed
    return result


def inv_mix_columns(state: State) -> State:
    result = [0] * 16
    for column in range(4):
        mixed = _mix_single_column(state[4 * column: 4 * column + 4],
                                   INV_MIX_COLUMNS_MATRIX)
        result[4 * column: 4 * column + 4] = mixed
    return result


def add_round_key(state: State, round_key: Sequence[int]) -> State:
    """XOR the state with a 16-byte round key (the AddRoundKey block)."""
    if len(round_key) != 16:
        raise AESError("round key must be 16 bytes")
    return [s ^ k for s, k in zip(state, round_key)]


# ------------------------------------------------------------ key expansion
def key_expansion(key: Sequence[int]) -> List[List[int]]:
    """Expand the cipher key into ``rounds + 1`` round keys of 16 bytes.

    Round keys are returned in natural byte order (not column-major); use
    :func:`bytes_to_state` before adding them to a state, or rely on
    :class:`AES` which handles the conversion.
    """
    key = list(key)
    if len(key) not in ROUNDS_BY_KEY_SIZE:
        raise AESError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
    if any(not 0 <= b <= 0xFF for b in key):
        raise AESError("AES key bytes must be in range 0..255")

    nk = len(key) // 4
    rounds = ROUNDS_BY_KEY_SIZE[len(key)]
    words: List[List[int]] = [key[4 * i: 4 * i + 4] for i in range(nk)]

    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [SBOX[b] for b in temp]
        words.append([a ^ b for a, b in zip(words[i - nk], temp)])

    round_keys = []
    for round_index in range(rounds + 1):
        round_key: List[int] = []
        for word in words[4 * round_index: 4 * round_index + 4]:
            round_key.extend(word)
        round_keys.append(round_key)
    return round_keys


# ---------------------------------------------------------------- round API
@dataclass
class RoundTrace:
    """Intermediate states of one encryption, keyed by step name.

    ``states`` maps labels such as ``"round1:subbytes"`` to the column-major
    state after that step; ``initial_addkey`` is the state after the initial
    AddRoundKey, the step attacked by the AES selection function of
    Section IV (``D = bit of XOR(plaintext byte, key byte)``).
    """

    plaintext: List[int]
    ciphertext: List[int] = field(default_factory=list)
    states: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def initial_addkey(self) -> List[int]:
        return self.states["round0:addkey"]

    def state_after(self, label: str) -> List[int]:
        return self.states[label]


class AES:
    """AES cipher bound to a fixed key."""

    def __init__(self, key: Sequence[int]):
        self.key = list(key)
        self.round_keys = key_expansion(self.key)
        self.rounds = ROUNDS_BY_KEY_SIZE[len(self.key)]
        self._round_key_states = [bytes_to_state(rk) for rk in self.round_keys]

    # ------------------------------------------------------------ encrypt
    def encrypt_block(self, plaintext: Sequence[int]) -> List[int]:
        """Encrypt one 16-byte block and return the 16-byte ciphertext."""
        return self.encrypt_with_trace(plaintext).ciphertext

    def encrypt_with_trace(self, plaintext: Sequence[int]) -> RoundTrace:
        """Encrypt one block, recording the state after every step."""
        plaintext = _check_block(plaintext)
        trace = RoundTrace(plaintext=list(plaintext))
        state = bytes_to_state(plaintext)
        trace.states["round0:input"] = list(state)

        state = add_round_key(state, self._round_key_states[0])
        trace.states["round0:addkey"] = list(state)

        for round_index in range(1, self.rounds):
            state = sub_bytes(state)
            trace.states[f"round{round_index}:subbytes"] = list(state)
            state = shift_rows(state)
            trace.states[f"round{round_index}:shiftrows"] = list(state)
            state = mix_columns(state)
            trace.states[f"round{round_index}:mixcolumns"] = list(state)
            state = add_round_key(state, self._round_key_states[round_index])
            trace.states[f"round{round_index}:addkey"] = list(state)

        state = sub_bytes(state)
        trace.states[f"round{self.rounds}:subbytes"] = list(state)
        state = shift_rows(state)
        trace.states[f"round{self.rounds}:shiftrows"] = list(state)
        state = add_round_key(state, self._round_key_states[self.rounds])
        trace.states[f"round{self.rounds}:addkey"] = list(state)

        trace.ciphertext = state_to_bytes(state)
        return trace

    # ------------------------------------------------------------ decrypt
    def decrypt_block(self, ciphertext: Sequence[int]) -> List[int]:
        """Decrypt one 16-byte block and return the 16-byte plaintext."""
        ciphertext = _check_block(ciphertext)
        state = bytes_to_state(ciphertext)
        state = add_round_key(state, self._round_key_states[self.rounds])
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        for round_index in range(self.rounds - 1, 0, -1):
            state = add_round_key(state, self._round_key_states[round_index])
            state = inv_mix_columns(state)
            state = inv_shift_rows(state)
            state = inv_sub_bytes(state)
        state = add_round_key(state, self._round_key_states[0])
        return state_to_bytes(state)

    # ------------------------------------------------------------ helpers
    def first_round_addkey_byte(self, plaintext: Sequence[int], byte_index: int) -> int:
        """Value of byte ``byte_index`` after the initial AddRoundKey.

        This is the intermediate value the AES selection function of
        Section IV predicts: ``plaintext[i] XOR key[i]``.
        """
        plaintext = _check_block(plaintext)
        if not 0 <= byte_index < 16:
            raise AESError(f"byte index must be in 0..15, got {byte_index}")
        return plaintext[byte_index] ^ self.round_keys[0][byte_index]


# ------------------------------------------------------------- batch cipher
#: Vectorized lookup tables (the column-major state layout coincides with the
#: natural block order, so whole (n, 16) batches go through each round step
#: as single fancy-indexing / XOR operations).
_SBOX_TABLE = np.asarray(SBOX, dtype=np.uint8)
_SHIFT_ROWS_PERM = np.asarray(
    [row + 4 * ((column + row) % 4) for column in range(4) for row in range(4)],
    dtype=np.int64,
)
_GF_MUL_TABLES = {
    factor: np.asarray([gf_mul(factor, value) for value in range(256)],
                       dtype=np.uint8)
    for factor in {entry for mrow in MIX_COLUMNS_MATRIX for entry in mrow}
}


def encrypt_states_batch(key: Sequence[int],
                         plaintexts: Sequence[Sequence[int]]
                         ) -> Dict[str, np.ndarray]:
    """All intermediate states of a whole batch of encryptions at once.

    Returns the same ``"roundK:step"`` labels as
    :meth:`AES.encrypt_with_trace`, each mapping to an ``(n, 16)`` uint8
    matrix whose row ``i`` is the column-major state of plaintext ``i`` after
    that step.  One fancy-indexed table lookup (SubBytes, MixColumns factors)
    or XOR (AddRoundKey) per step covers the entire batch — this is what lets
    the batched trace generator skip the per-plaintext Python cipher.
    """
    states_in = np.asarray(plaintexts, dtype=np.int64)
    if states_in.ndim != 2 or states_in.shape[1] != 16:
        raise AESError(f"plaintext batch must be (n, 16), got {states_in.shape}")
    if states_in.size and (states_in.min() < 0 or states_in.max() > 0xFF):
        raise AESError("plaintext bytes must be in range 0..255")
    round_keys = np.asarray(key_expansion(key), dtype=np.uint8)
    rounds = ROUNDS_BY_KEY_SIZE[len(list(key))]

    def mixed_columns(state: np.ndarray) -> np.ndarray:
        result = np.empty_like(state)
        for column in range(4):
            block = state[:, 4 * column: 4 * column + 4]
            for row in range(4):
                acc = np.zeros(state.shape[0], dtype=np.uint8)
                for j in range(4):
                    acc ^= _GF_MUL_TABLES[MIX_COLUMNS_MATRIX[row][j]][block[:, j]]
                result[:, 4 * column + row] = acc
        return result

    states: Dict[str, np.ndarray] = {}
    state = states_in.astype(np.uint8)
    states["round0:input"] = state
    state = state ^ round_keys[0]
    states["round0:addkey"] = state

    for round_index in range(1, rounds):
        state = _SBOX_TABLE[state]
        states[f"round{round_index}:subbytes"] = state
        state = state[:, _SHIFT_ROWS_PERM]
        states[f"round{round_index}:shiftrows"] = state
        state = mixed_columns(state)
        states[f"round{round_index}:mixcolumns"] = state
        state = state ^ round_keys[round_index]
        states[f"round{round_index}:addkey"] = state

    state = _SBOX_TABLE[state]
    states[f"round{rounds}:subbytes"] = state
    state = state[:, _SHIFT_ROWS_PERM]
    states[f"round{rounds}:shiftrows"] = state
    state = state ^ round_keys[rounds]
    states[f"round{rounds}:addkey"] = state
    return states


def encrypt(plaintext: Sequence[int], key: Sequence[int]) -> List[int]:
    """One-shot block encryption convenience wrapper."""
    return AES(key).encrypt_block(plaintext)


def decrypt(ciphertext: Sequence[int], key: Sequence[int]) -> List[int]:
    """One-shot block decryption convenience wrapper."""
    return AES(key).decrypt_block(ciphertext)
