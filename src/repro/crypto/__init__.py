"""Software reference implementations of the ciphers used by the paper.

* :mod:`repro.crypto.aes` — Rijndael / AES (FIPS-197) with a round-by-round
  trace API, the algorithm implemented by the asynchronous crypto-processor
  of Section VI;
* :mod:`repro.crypto.des` — DES (FIPS-46), whose first-round S-box is the
  classical DPA selection-function example recalled in Section IV;
* :mod:`repro.crypto.keys` — reproducible plaintext/key generation and
  bit-level helpers.
"""

from .aes import (
    AES,
    AESError,
    RoundTrace,
    add_round_key,
    bytes_to_state,
    encrypt_states_batch,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    key_expansion,
    mix_columns,
    shift_rows,
    state_to_bytes,
    sub_bytes,
)
from .aes import decrypt as aes_decrypt
from .aes import encrypt as aes_encrypt
from .aes_tables import INV_SBOX, RCON, SBOX, gf_inverse, gf_mul, gf_pow
from .des import (
    DES,
    DESError,
    expanded_plaintext_chunk,
    feistel,
    key_schedule,
    round_key_sbox_chunk,
    sbox_lookup,
)
from .des import decrypt as des_decrypt
from .des import encrypt as des_encrypt
from .keys import (
    PlaintextGenerator,
    bit_of,
    bytes_to_int,
    hamming_distance,
    hamming_weight,
    int_to_bytes,
    random_key,
)

__all__ = [
    "AES",
    "AESError",
    "RoundTrace",
    "add_round_key",
    "bytes_to_state",
    "encrypt_states_batch",
    "inv_mix_columns",
    "inv_shift_rows",
    "inv_sub_bytes",
    "key_expansion",
    "mix_columns",
    "shift_rows",
    "state_to_bytes",
    "sub_bytes",
    "aes_decrypt",
    "aes_encrypt",
    "INV_SBOX",
    "RCON",
    "SBOX",
    "gf_inverse",
    "gf_mul",
    "gf_pow",
    "DES",
    "DESError",
    "expanded_plaintext_chunk",
    "feistel",
    "key_schedule",
    "round_key_sbox_chunk",
    "sbox_lookup",
    "des_decrypt",
    "des_encrypt",
    "PlaintextGenerator",
    "bit_of",
    "bytes_to_int",
    "hamming_distance",
    "hamming_weight",
    "int_to_bytes",
    "random_key",
]
