"""Standard-cell geometry for the placement substrate.

Each gate instance of a netlist becomes a :class:`PlacedCell` whose footprint
is derived from the library cell area and the technology's row height.  The
placement engines move these rectangles; the routing estimator and the
parasitic extractor then work from the resulting positions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology


@dataclass
class PlacedCell:
    """One placeable standard cell.

    Positions refer to the cell centre, in microns.  ``block`` carries the
    architectural block of the originating instance so the hierarchical flow
    can fence it.
    """

    name: str
    width_um: float
    height_um: float
    block: str = ""
    x_um: float = 0.0
    y_um: float = 0.0
    fixed: bool = False

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x_um, self.y_um)

    def move_to(self, x_um: float, y_um: float) -> None:
        if self.fixed:
            raise ValueError(f"cell {self.name!r} is fixed and cannot move")
        self.x_um = x_um
        self.y_um = y_um


def cell_from_instance(netlist: Netlist, instance_name: str,
                       technology: Technology = HCMOS9_LIKE) -> PlacedCell:
    """Create the placeable cell of one netlist instance."""
    instance = netlist.instance(instance_name)
    cell_type = netlist.library.get(instance.cell)
    height = technology.cell_height_um
    width = max(technology.cell_unit_width_um,
                cell_type.area_um2 / height)
    return PlacedCell(name=instance_name, width_um=width, height_um=height,
                      block=instance.block)


def cells_from_netlist(netlist: Netlist,
                       technology: Technology = HCMOS9_LIKE) -> Dict[str, PlacedCell]:
    """Placeable cells for every instance of the netlist, keyed by name."""
    return {
        instance.name: cell_from_instance(netlist, instance.name, technology)
        for instance in netlist.instances()
    }


def total_cell_area_um2(cells: Dict[str, PlacedCell]) -> float:
    return sum(cell.area_um2 for cell in cells.values())


def block_areas_um2(cells: Dict[str, PlacedCell]) -> Dict[str, float]:
    """Cell area grouped by architectural block (empty block name = glue)."""
    areas: Dict[str, float] = {}
    for cell in cells.values():
        areas[cell.block] = areas.get(cell.block, 0.0) + cell.area_um2
    return areas


def die_side_for_area(cell_area_um2: float, utilization: float,
                      aspect_ratio: float = 1.0) -> Tuple[float, float]:
    """Width and height of a rectangular die for the requested utilization."""
    if not 0 < utilization <= 1:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    if aspect_ratio <= 0:
        raise ValueError(f"aspect ratio must be > 0, got {aspect_ratio}")
    die_area = cell_area_um2 / utilization
    width = math.sqrt(die_area * aspect_ratio)
    height = die_area / width
    return (width, height)
