"""Routing estimation: per-net wirelength from a placement.

A full detailed router is unnecessary for the paper's analysis — the
dissymmetry criterion only needs per-net capacitances, which scale with the
routed length.  The estimator uses the standard half-perimeter wirelength
(HPWL) of each net's pin bounding box, corrected for fanout with the usual
Steiner-tree compensation factor, which is the same class of estimate
placement tools use internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.netlist import Net, Netlist
from .placement import Placement


class RoutingError(Exception):
    """Raised when a net cannot be estimated (e.g. unplaced pins)."""


#: Fanout-dependent HPWL correction factors (net with k pins needs roughly
#: ``factor * HPWL`` of wire); values follow the classical RISA coefficients.
_FANOUT_FACTORS = {
    1: 1.0,
    2: 1.0,
    3: 1.08,
    4: 1.15,
    5: 1.22,
    6: 1.28,
    7: 1.34,
    8: 1.40,
    9: 1.45,
    10: 1.50,
}


def fanout_factor(pin_count: int) -> float:
    """Steiner compensation factor for a net with ``pin_count`` pins."""
    if pin_count <= 10:
        return _FANOUT_FACTORS.get(max(pin_count, 1), 1.0)
    # Beyond ten pins the factor grows roughly with the square root of the
    # pin count.
    return 1.50 + 0.12 * ((pin_count - 10) ** 0.5)


@dataclass
class RoutedNet:
    """Estimated routing of one net."""

    net: str
    pin_count: int
    hpwl_um: float
    length_um: float

    @property
    def is_point_to_point(self) -> bool:
        return self.pin_count == 2


@dataclass
class RoutingEstimate:
    """Per-net routed-length estimates for a placed design."""

    nets: Dict[str, RoutedNet] = field(default_factory=dict)

    def length_of(self, net_name: str) -> float:
        try:
            return self.nets[net_name].length_um
        except KeyError:
            raise RoutingError(f"net {net_name!r} was not estimated") from None

    def total_wirelength_um(self) -> float:
        return sum(net.length_um for net in self.nets.values())

    def longest(self, count: int = 10) -> List[RoutedNet]:
        return sorted(self.nets.values(), key=lambda n: n.length_um, reverse=True)[:count]


def net_pin_positions(netlist: Netlist, placement: Placement,
                      net: Net) -> List[Tuple[float, float]]:
    """Placed positions of every pin of a net (driver and sinks)."""
    positions = []
    for pin in net.connections():
        if pin.instance in placement.cells:
            positions.append(placement.position_of(pin.instance))
    return positions


def estimate_net(netlist: Netlist, placement: Placement, net: Net) -> Optional[RoutedNet]:
    """Estimate one net; returns ``None`` for nets with fewer than 2 placed pins."""
    positions = net_pin_positions(netlist, placement, net)
    if len(positions) < 2:
        return None
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    length = hpwl * fanout_factor(len(positions))
    return RoutedNet(net=net.name, pin_count=len(positions), hpwl_um=hpwl,
                     length_um=length)


def estimate_routing(netlist: Netlist, placement: Placement) -> RoutingEstimate:
    """Estimate the routed length of every net of the design."""
    estimate = RoutingEstimate()
    for net in netlist.nets():
        routed = estimate_net(netlist, placement, net)
        if routed is not None:
            estimate.nets[net.name] = routed
    return estimate
