"""Parasitic extraction: routed length → net routing capacitance.

This is the back-end annotation step of the paper's methodology: after place
and route, the graph/netlist is annotated with the *real* physical net
capacitances, which is when the dissymmetry criterion becomes meaningful.
The extraction model is linear: ``Cl_routing = C_via + c_per_um · length``,
with the per-micron coefficient taken from the technology parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from .placement import Placement
from .routing import RoutingEstimate, estimate_routing


class ExtractionLookupError(KeyError):
    """A net was looked up that the extraction never annotated.

    A silent ``0.0`` here is dangerous: a net-name mismatch between routing
    and annotation would understate a channel's dissymmetry and could
    green-light a leaky design, so unknown nets raise unless the caller
    explicitly opts into a default.
    """


#: Sentinel distinguishing "no default passed" from ``default=None``/``0.0``.
_MISSING = object()


@dataclass
class ExtractionReport:
    """Extracted routing capacitance of every net (femtofarads)."""

    caps_ff: Dict[str, float] = field(default_factory=dict)
    total_wirelength_um: float = 0.0

    def cap_of(self, net_name: str, default: float = _MISSING) -> float:
        """Extracted routing capacitance of one net.

        Unknown nets raise :class:`ExtractionLookupError` — the strict
        behaviour that catches net-name mismatches between the routing and
        annotation steps before they reach the dissymmetry criterion (the
        rail-capacitance consumers in :mod:`repro.core.criterion` read the
        annotated netlist, which is equally strict about unknown nets).
        Pass ``default=`` to opt back into a fallback value.
        """
        try:
            return self.caps_ff[net_name]
        except KeyError:
            if default is not _MISSING:
                return default
            raise ExtractionLookupError(
                f"net {net_name!r} was never extracted (known nets: "
                f"{len(self.caps_ff)}); a routing/annotation name mismatch "
                "here would silently understate channel dissymmetry — pass "
                "default= to opt into a fallback"
            ) from None

    def __len__(self) -> int:
        return len(self.caps_ff)

    @property
    def total_cap_ff(self) -> float:
        return sum(self.caps_ff.values())

    @property
    def max_cap_ff(self) -> float:
        return max(self.caps_ff.values(), default=0.0)


def extract_capacitances(netlist: Netlist, placement: Placement, *,
                         technology: Technology = HCMOS9_LIKE,
                         routing: Optional[RoutingEstimate] = None,
                         annotate: bool = True) -> ExtractionReport:
    """Extract per-net routing capacitances from a placement.

    Parameters
    ----------
    netlist:
        The design; when ``annotate`` is true each net's ``routing_cap_ff`` is
        updated in place (the "back-annotation" of the paper's flow).
    placement:
        The placed cells.
    technology:
        Provides the capacitance-per-micron and via capacitance.
    routing:
        Optional pre-computed routing estimate (otherwise computed here).
    """
    estimate = routing if routing is not None else estimate_routing(netlist, placement)
    report = ExtractionReport(total_wirelength_um=estimate.total_wirelength_um())
    for net in netlist.nets():
        routed = estimate.nets.get(net.name)
        if routed is None:
            # Unplaced or single-pin nets keep a purely local capacitance.
            cap = technology.via_cap_ff
        else:
            cap = technology.wire_cap_ff(routed.length_um)
        report.caps_ff[net.name] = cap
        if annotate:
            net.routing_cap_ff = cap
    return report


def channel_rail_caps(netlist: Netlist, *, use_load_cap: bool = True
                      ) -> Dict[str, list]:
    """Per-channel rail capacitances after extraction.

    Returns ``channel name → [rail0 cap, rail1 cap, ...]`` using either the
    full load capacitance (routing plus fanout pins, the paper's ``Cl``) or
    only the routing part.
    """
    result: Dict[str, list] = {}
    for channel_name, rails in netlist.channels().items():
        caps = []
        for net in rails:
            if use_load_cap:
                caps.append(netlist.load_cap_ff(net.name))
            else:
                caps.append(net.routing_cap_ff)
        result[channel_name] = caps
    return result
