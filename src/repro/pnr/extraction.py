"""Parasitic extraction: routed length → net routing capacitance.

This is the back-end annotation step of the paper's methodology: after place
and route, the graph/netlist is annotated with the *real* physical net
capacitances, which is when the dissymmetry criterion becomes meaningful.
The extraction model is linear: ``Cl_routing = C_via + c_per_um · length``,
with the per-micron coefficient taken from the technology parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..obs.telemetry import current
from .placement import Placement
from .routing import RoutingEstimate, estimate_net, estimate_routing


class ExtractionLookupError(KeyError):
    """A net was looked up that the extraction never annotated.

    A silent ``0.0`` here is dangerous: a net-name mismatch between routing
    and annotation would understate a channel's dissymmetry and could
    green-light a leaky design, so unknown nets raise unless the caller
    explicitly opts into a default.
    """


#: Sentinel distinguishing "no default passed" from ``default=None``/``0.0``.
_MISSING = object()


@dataclass
class ExtractionReport:
    """Extracted routing capacitance of every net (femtofarads)."""

    caps_ff: Dict[str, float] = field(default_factory=dict)
    total_wirelength_um: float = 0.0

    def cap_of(self, net_name: str, default: float = _MISSING) -> float:
        """Extracted routing capacitance of one net.

        Unknown nets raise :class:`ExtractionLookupError` — the strict
        behaviour that catches net-name mismatches between the routing and
        annotation steps before they reach the dissymmetry criterion (the
        rail-capacitance consumers in :mod:`repro.core.criterion` read the
        annotated netlist, which is equally strict about unknown nets).
        Pass ``default=`` to opt back into a fallback value.
        """
        try:
            return self.caps_ff[net_name]
        except KeyError:
            if default is not _MISSING:
                return default
            raise ExtractionLookupError(
                f"net {net_name!r} was never extracted (known nets: "
                f"{len(self.caps_ff)}); a routing/annotation name mismatch "
                "here would silently understate channel dissymmetry — pass "
                "default= to opt into a fallback"
            ) from None

    def __len__(self) -> int:
        return len(self.caps_ff)

    @property
    def total_cap_ff(self) -> float:
        return sum(self.caps_ff.values())

    @property
    def max_cap_ff(self) -> float:
        return max(self.caps_ff.values(), default=0.0)


def extract_capacitances(netlist: Netlist, placement: Placement, *,
                         technology: Technology = HCMOS9_LIKE,
                         routing: Optional[RoutingEstimate] = None,
                         annotate: bool = True) -> ExtractionReport:
    """Extract per-net routing capacitances from a placement.

    Parameters
    ----------
    netlist:
        The design; when ``annotate`` is true each net's ``routing_cap_ff`` is
        updated in place (the "back-annotation" of the paper's flow).
    placement:
        The placed cells.
    technology:
        Provides the capacitance-per-micron and via capacitance.
    routing:
        Optional pre-computed routing estimate (otherwise computed here).
    """
    estimate = routing if routing is not None else estimate_routing(netlist, placement)
    report = ExtractionReport(total_wirelength_um=estimate.total_wirelength_um())
    for net in netlist.nets():
        routed = estimate.nets.get(net.name)
        if routed is None:
            # Unplaced or single-pin nets keep a purely local capacitance.
            cap = technology.via_cap_ff
        else:
            cap = technology.wire_cap_ff(routed.length_um)
        report.caps_ff[net.name] = cap
        if annotate:
            net.routing_cap_ff = cap
    if annotate:
        netlist.touch_caps()
    return report


class IncrementalExtractor:
    """Incremental routing estimation and parasitic re-extraction.

    The hardening repair loop perturbs a placed design a few cells (or a few
    nets) at a time; re-running :func:`estimate_routing` plus
    :func:`extract_capacitances` over the whole design on every iteration
    would dominate the loop.  This extractor keeps the full
    :class:`RoutingEstimate` / :class:`ExtractionReport` pair live and
    re-measures **only the nets whose pin positions can have changed** — the
    nets pinned by a moved cell, or an explicitly named net set.

    Connectivity (cell → nets) is resolved once per
    :attr:`~repro.circuits.netlist.Netlist.topology_version`; a structural
    edit (new instance or net) transparently falls back to one full
    re-extraction that also refreshes the maps.  Incremental updates are
    exactly equal to a full re-extraction: untouched nets keep values that a
    full pass would recompute identically (their pin positions are
    unchanged), touched nets go through the very same
    :func:`~repro.pnr.routing.estimate_net` estimate.

    ``full_extractions`` / ``incremental_updates`` / ``nets_reextracted``
    count the work done, for hardening provenance and the ≥10× speedup gate
    of ``benchmarks/bench_hardening.py``.
    """

    def __init__(self, netlist: Netlist, placement: Placement, *,
                 technology: Technology = HCMOS9_LIKE,
                 annotate: bool = True):
        self.netlist = netlist
        self.placement = placement
        self.technology = technology
        self.annotate = annotate
        self._nets_of_cell: Dict[str, List[str]] = {}
        self._topology_version: Optional[int] = None
        self.routing: Optional[RoutingEstimate] = None
        self.extraction: Optional[ExtractionReport] = None
        self.full_extractions = 0
        self.incremental_updates = 0
        self.nets_reextracted = 0
        self.full()

    # -------------------------------------------------------------- plumbing
    def _rebuild_maps(self) -> None:
        nets_of_cell: Dict[str, Set[str]] = {}
        for net in self.netlist.nets():
            for pin in net.connections():
                nets_of_cell.setdefault(pin.instance, set()).add(net.name)
        self._nets_of_cell = {cell: sorted(nets)
                              for cell, nets in nets_of_cell.items()}
        self._topology_version = self.netlist.topology_version

    @property
    def stale(self) -> bool:
        """True when the netlist topology changed under the extractor."""
        return self._topology_version != self.netlist.topology_version

    def nets_of_cell(self, cell_name: str) -> List[str]:
        """Nets pinned by one instance (empty for unknown cells)."""
        if self.stale:
            self._rebuild_maps()
        return list(self._nets_of_cell.get(cell_name, ()))

    # ------------------------------------------------------------ extraction
    def full(self) -> ExtractionReport:
        """Full re-extraction; also refreshes the connectivity maps."""
        self._rebuild_maps()
        self.routing = estimate_routing(self.netlist, self.placement)
        self.extraction = extract_capacitances(
            self.netlist, self.placement, technology=self.technology,
            routing=self.routing, annotate=self.annotate)
        self.full_extractions += 1
        current().count("full_extractions")
        return self.extraction

    def update_cells(self, cell_names: Iterable[str]) -> Set[str]:
        """Re-extract every net touching the given (moved) cells.

        Returns the names of the nets that were re-measured.  Falls back to
        a full re-extraction when the topology changed since the last pass.
        """
        if self.stale:
            self.full()
            return set(self.extraction.caps_ff)
        touched: Set[str] = set()
        for cell_name in cell_names:
            touched.update(self._nets_of_cell.get(cell_name, ()))
        return self.update_nets(touched)

    def update_nets(self, net_names: Iterable[str]) -> Set[str]:
        """Re-estimate and re-extract exactly the named nets."""
        if self.stale:
            self.full()
            return set(self.extraction.caps_ff)
        touched = set(net_names)
        if not touched:
            return touched
        wirelength_delta = 0.0
        for name in touched:
            net = self.netlist.net(name)
            previous = self.routing.nets.get(name)
            routed = estimate_net(self.netlist, self.placement, net)
            if previous is not None:
                wirelength_delta -= previous.length_um
            if routed is None:
                self.routing.nets.pop(name, None)
                cap = self.technology.via_cap_ff
            else:
                self.routing.nets[name] = routed
                wirelength_delta += routed.length_um
                cap = self.technology.wire_cap_ff(routed.length_um)
            self.extraction.caps_ff[name] = cap
            if self.annotate:
                net.routing_cap_ff = cap
        self.extraction.total_wirelength_um += wirelength_delta
        if self.annotate:
            self.netlist.touch_caps()
        self.incremental_updates += 1
        self.nets_reextracted += len(touched)
        current().count("nets_reextracted", len(touched))
        return touched


def channel_rail_caps(netlist: Netlist, *, use_load_cap: bool = True
                      ) -> Dict[str, list]:
    """Per-channel rail capacitances after extraction.

    Returns ``channel name → [rail0 cap, rail1 cap, ...]`` using either the
    full load capacitance (routing plus fanout pins, the paper's ``Cl``) or
    only the routing part.
    """
    result: Dict[str, list] = {}
    for channel_name, rails in netlist.channels().items():
        caps = []
        for net in rails:
            if use_load_cap:
                caps.append(netlist.load_cap_ff(net.name))
            else:
                caps.append(net.routing_cap_ff)
        result[channel_name] = caps
    return result
