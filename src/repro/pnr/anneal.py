"""Vectorized, security-aware simulated-annealing placement engine.

The scalar annealer of :mod:`repro.pnr.placement` walks one move at a time
over dict-backed cells; on the reference AES it is ~95 % of every flow run
and every hardening repair iteration.  This module rebuilds the optimizer on
numpy:

* **array-backed state** — dense cell ids, float64 coordinate vectors, a
  ``fixed`` mask and per-cell fence rectangles resolved once from the
  floorplan;
* **compiled connectivity** — net ↔ pin incidence flattened into CSR-style
  index arrays (:class:`PlacerConnectivity`), compiled once per
  :attr:`~repro.circuits.netlist.Netlist.topology_version` and cached on the
  netlist (the same idiom as the simulation engine's compile cache);
* **incremental delta-HPWL** — per-net min/max bounds are cached; a move
  re-evaluates only the nets pinned by the moved cells, gathered and reduced
  in bulk (``np.minimum.reduceat`` over the CSR pin slices), never a full
  ``_hpwl`` sweep;
* **batched moves** — each temperature step proposes a whole vector of
  perturbations and swaps, evaluates every candidate's exact cost delta
  against the pre-batch state in one pass, applies Metropolis acceptance
  with a seeded :class:`numpy.random.Generator`, and commits a
  net/channel/cell-disjoint subset so every committed delta stays exact;
* **multi-objective cost** — optional security term: the weighted sum of
  HPWL and the rail-capacitance dissymmetry of every annotated channel,
  evaluated through the same linear extraction model
  (``via + c/µm · fanout_factor · HPWL`` plus pin and dummy loads) that
  :class:`~repro.pnr.extraction.IncrementalExtractor` re-measures after the
  fact, with per-channel criterion updates numerically identical to
  :func:`repro.core.criterion.dissymmetry_vector`.

The scalar loop survives as ``_refine_with_annealing_reference`` in
:mod:`repro.pnr.placement` — the oracle the equivalence tests and the
``benchmarks/bench_placer.py`` ≥10× gate compare against.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from contextlib import nullcontext

import numpy as np

from ..circuits.netlist import Netlist
from ..core.criterion import dissymmetry_vector
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..obs.telemetry import current
from .cells import PlacedCell
from .floorplan import Floorplan
from .routing import fanout_factor

#: Reusable no-op context for per-step spans with telemetry disabled.
_NO_SPAN = nullcontext()


class PlacerConnectivity:
    """Net ↔ pin connectivity compiled into CSR-style index arrays.

    Tracked nets are those with at least two *placed* unique pins; nets
    whose unique-pin count also stays within ``fanout_limit`` carry HPWL
    cost weight (``wl_weight = 1``), exactly mirroring the scalar
    ``_WirelengthModel`` selection.  Wider nets are tracked with zero cost
    weight so the security objective can still follow the rails of
    high-fanout channels.
    """

    def __init__(self, netlist: Netlist, cells: Mapping[str, PlacedCell], *,
                 fanout_limit: int = 24):
        self.fanout_limit = fanout_limit
        self.names: List[str] = sorted(cells)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        self.n_cells = len(self.names)

        net_names: List[str] = []
        net_cells_flat: List[int] = []
        net_ptr = [0]
        conn_counts: List[int] = []
        wl_flags: List[bool] = []
        for net in netlist.nets():
            pins = [pin.instance for pin in net.connections()
                    if pin.instance in self.index]
            unique = sorted(set(pins))
            if len(unique) < 2:
                continue
            net_names.append(net.name)
            net_cells_flat.extend(self.index[p] for p in unique)
            net_ptr.append(len(net_cells_flat))
            conn_counts.append(len(pins))
            wl_flags.append(len(unique) <= fanout_limit)
        self.net_names = net_names
        self.n_nets = len(net_names)
        self.net_index = {n: i for i, n in enumerate(net_names)}
        self.net_ptr = np.asarray(net_ptr, dtype=np.int64)
        self.net_cells = np.asarray(net_cells_flat, dtype=np.int64)
        self.net_size = np.diff(self.net_ptr)
        self.conn_counts = np.asarray(conn_counts, dtype=np.int64)
        self.wl_weight = np.asarray(wl_flags, dtype=np.float64)
        #: flat owner array aligned with ``net_cells`` (for segment masks)
        self.net_owner = np.repeat(np.arange(self.n_nets), self.net_size)

        # Reverse CSR: cell → tracked nets (all, for move evaluation) and
        # cell → cost nets (for the centre-of-gravity sweeps).  A stable
        # argsort of the forward pin list groups it by cell while keeping
        # each cell's nets in ascending net-id order (the forward layout is
        # net-major), so no python-level list building is needed.
        order = np.argsort(self.net_cells, kind="stable")
        self.cell_nets = self.net_owner[order]
        counts = np.bincount(self.net_cells, minlength=self.n_cells)
        self.cell_net_ptr = np.concatenate(
            [[0], np.cumsum(counts)]).astype(np.int64)
        cell_owner = np.repeat(np.arange(self.n_cells), counts)
        keep_wl = self.wl_weight[self.cell_nets] > 0
        self.cell_wlnets = self.cell_nets[keep_wl]
        #: flat owner array aligned with ``cell_wlnets`` (for scatter-adds)
        self.wl_owner = cell_owner[keep_wl]
        wl_counts = np.bincount(self.wl_owner, minlength=self.n_cells)
        self.cell_wlnet_ptr = np.concatenate(
            [[0], np.cumsum(wl_counts)]).astype(np.int64)

        # Channels (the security objective's unit): every annotated channel
        # with >= 2 rails of which at least one is a tracked net.
        self.chan_names: List[str] = []
        chan_ptr = [0]
        rail_net_ids: List[int] = []      # tracked net id, or -1
        rail_net_names: List[str] = []    # for constant-cap lookups
        net_chan = np.full(self.n_nets, -1, dtype=np.int64)
        net_slot = np.full(self.n_nets, -1, dtype=np.int64)
        for channel_name, rails in sorted(netlist.channels().items()):
            if len(rails) < 2:
                continue
            ids = [self.net_index.get(net.name, -1) for net in rails]
            if all(i < 0 for i in ids):
                continue  # every rail is constant: d_A cannot change
            chan_id = len(self.chan_names)
            self.chan_names.append(channel_name)
            for slot, (net, net_id) in enumerate(zip(rails, ids)):
                rail_net_ids.append(net_id)
                rail_net_names.append(net.name)
                if net_id >= 0:
                    net_chan[net_id] = chan_id
                    net_slot[net_id] = slot
            chan_ptr.append(len(rail_net_ids))
        self.n_chans = len(self.chan_names)
        self.chan_ptr = np.asarray(chan_ptr, dtype=np.int64)
        self.rail_net_ids = np.asarray(rail_net_ids, dtype=np.int64)
        self.rail_net_names = rail_net_names
        self.net_chan = net_chan
        self.net_slot = net_slot
        self.max_rails = (int(np.diff(self.chan_ptr).max())
                          if self.n_chans else 0)


def compile_connectivity(netlist: Netlist, cells: Mapping[str, PlacedCell], *,
                         fanout_limit: int = 24) -> PlacerConnectivity:
    """Compile (or fetch the cached) connectivity of a netlist + cell set.

    The compile is cached on the netlist object keyed on its
    ``topology_version`` (and the cell-name set), so repeated placements of
    the same design — every repair iteration, every sweep point sharing a
    netlist — skip straight to the arrays.
    """
    names = tuple(sorted(cells))
    key = (netlist.topology_version, fanout_limit, hash(names))
    cached = getattr(netlist, "_placer_conn_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    conn = PlacerConnectivity(netlist, cells, fanout_limit=fanout_limit)
    netlist._placer_conn_cache = (key, conn)
    return conn


class SecurityObjective:
    """Live rail-capacitance dissymmetry state of every tracked channel.

    ``rows`` is the NaN-padded ``(channels, max rails)`` capacitance matrix
    of :func:`repro.core.criterion.pack_cap_matrix`; ``d`` the matching
    criterion vector (:func:`dissymmetry_vector` semantics).  Rail
    capacitances follow the extraction model exactly:
    ``via + c/µm · fanout_factor(pins) · HPWL`` for tracked rails (plus the
    constant pin and dummy loads), a constant for unplaced rails — so the
    annealer's predicted dissymmetries are the ones
    :class:`~repro.pnr.extraction.IncrementalExtractor` measures afterwards.
    """

    def __init__(self, conn: PlacerConnectivity, netlist: Netlist,
                 technology: Technology, hpwl: np.ndarray):
        self.conn = conn
        factors = np.array([fanout_factor(int(c)) for c in conn.conn_counts])
        self.slope = technology.routing_cap_ff_per_um * factors
        consts = np.empty(conn.n_nets)
        for net_id, name in enumerate(conn.net_names):
            net = netlist.net(name)
            consts[net_id] = (technology.via_cap_ff + net.dummy_cap_ff
                              + netlist.pin_cap_ff(name))
        self.const = consts
        self.rows = np.full((conn.n_chans, conn.max_rails), np.nan)
        for chan_id in range(conn.n_chans):
            lo, hi = conn.chan_ptr[chan_id], conn.chan_ptr[chan_id + 1]
            for slot in range(hi - lo):
                net_id = conn.rail_net_ids[lo + slot]
                if net_id >= 0:
                    continue
                name = conn.rail_net_names[lo + slot]
                net = netlist.net(name)
                self.rows[chan_id, slot] = (technology.via_cap_ff
                                            + net.dummy_cap_ff
                                            + netlist.pin_cap_ff(name))
        self.refresh(hpwl)

    def refresh(self, hpwl: np.ndarray) -> None:
        """Recompute the tracked-rail capacitances and the criterion vector."""
        conn = self.conn
        tracked = conn.net_chan >= 0
        ids = np.flatnonzero(tracked)
        self.rows[conn.net_chan[ids], conn.net_slot[ids]] = (
            self.const[ids] + self.slope[ids] * hpwl[ids])
        self.d = (dissymmetry_vector(self.rows, validate=False)
                  if conn.n_chans else np.zeros(0))

    def total(self) -> float:
        return float(self.d.sum())


def _gather_csr(ptr: np.ndarray, data: np.ndarray,
                ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR slices ``data[ptr[i]:ptr[i+1]] for i in ids``.

    Returns ``(flat values, per-id counts)``.
    """
    counts = ptr[ids + 1] - ptr[ids]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype), counts
    ends = np.cumsum(counts)
    flat = (np.arange(total) - np.repeat(ends - counts, counts)
            + np.repeat(ptr[ids], counts))
    return data[flat], counts


class VectorPlacementEngine:
    """Array-backed placement state plus the batched annealing optimizer."""

    def __init__(self, netlist: Netlist, cells: Dict[str, PlacedCell],
                 floorplan: Floorplan, *, schedule,
                 technology: Technology = HCMOS9_LIKE,
                 rng: Optional[np.random.Generator] = None):
        self.netlist = netlist
        self.cells = cells
        self.floorplan = floorplan
        self.schedule = schedule
        self.technology = technology
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.conn = compile_connectivity(netlist, cells)
        conn = self.conn
        ordered = [cells[n] for n in conn.names]
        self.x = np.array([c.x_um for c in ordered])
        self.y = np.array([c.y_um for c in ordered])
        self.fixed = np.array([c.fixed for c in ordered])
        self.movable_ids = np.flatnonzero(~self.fixed)
        # Fence rects and region membership depend only on the block, so
        # resolve each distinct block once instead of once per cell.
        blocks = [c.block for c in ordered]
        rect_of = {b: floorplan.placement_rect(b) for b in set(blocks)}
        fenced = {b for b in set(blocks)
                  if floorplan.region_for(b) is not None}
        rects = [rect_of[b] for b in blocks]
        self.fx0 = np.array([r.x_um for r in rects])
        self.fy0 = np.array([r.y_um for r in rects])
        self.fx1 = np.array([r.x_max for r in rects])
        self.fy1 = np.array([r.y_max for r in rects])
        self.span = np.maximum(self.fx1 - self.fx0, self.fy1 - self.fy0)
        self.width = np.array([c.width_um for c in ordered])
        self.height = np.array([c.height_um for c in ordered])
        # Legalization groups: cells sharing one placement region.
        groups: Dict[str, List[int]] = {}
        for i, block in enumerate(blocks):
            groups.setdefault(block if block in fenced else "", []).append(i)
        self._legal_groups = [
            (np.asarray(ids, dtype=np.int64),
             floorplan.regions[key].rect if key and key in floorplan.regions
             else floorplan.die)
            for key, ids in groups.items()]
        self.moves_proposed = 0
        self.moves_committed = 0
        self._recompute_bounds()
        self.security: Optional[SecurityObjective] = None
        if schedule.security_weight > 0 and conn.n_chans:
            self.security = SecurityObjective(conn, netlist, technology,
                                              self.hpwl)
        # Live nets: the only ones whose bounds the annealer must keep
        # fresh — HPWL-weighted nets, plus channel rails when the security
        # objective is active.  Wide (fanout-limited) nets outside any
        # channel carry no cost, so their pairs are never evaluated.
        self.live_mask = conn.wl_weight > 0
        if self.security is not None:
            self.live_mask |= conn.net_chan >= 0
        keep = self.live_mask[conn.cell_nets]
        self.live_nets = conn.cell_nets[keep]
        prefix = np.concatenate([[0], np.cumsum(keep)])
        self.live_ptr = prefix[conn.cell_net_ptr]

    # ------------------------------------------------------------ state sync
    @staticmethod
    def _extrema(vals: np.ndarray, seg: np.ndarray,
                 own: np.ndarray) -> tuple:
        """Per-segment (min, 2nd-min, #at-min, max, 2nd-max, #at-max).

        The second extrema and multiplicities make single-mover delta-HPWL
        pure arithmetic: removing a pin that is *not* the unique extremum
        leaves the bound at the cached value, removing the unique extremum
        falls back to the cached second value.
        """
        lo = np.minimum.reduceat(vals, seg)
        at_lo = vals == lo[own]
        lo2 = np.minimum.reduceat(np.where(at_lo, np.inf, vals), seg)
        n_lo = np.add.reduceat(at_lo.astype(np.float64), seg)
        hi = np.maximum.reduceat(vals, seg)
        at_hi = vals == hi[own]
        hi2 = np.maximum.reduceat(np.where(at_hi, -np.inf, vals), seg)
        n_hi = np.add.reduceat(at_hi.astype(np.float64), seg)
        return lo, lo2, n_lo, hi, hi2, n_hi

    def _recompute_bounds(self) -> None:
        conn = self.conn
        if conn.n_nets == 0:
            for attr in ("nmin_x", "nmin2_x", "ncnt_min_x",
                         "nmax_x", "nmax2_x", "ncnt_max_x",
                         "nmin_y", "nmin2_y", "ncnt_min_y",
                         "nmax_y", "nmax2_y", "ncnt_max_y", "hpwl"):
                setattr(self, attr, np.zeros(0))
            return
        starts = conn.net_ptr[:-1]
        own = conn.net_owner
        (self.nmin_x, self.nmin2_x, self.ncnt_min_x,
         self.nmax_x, self.nmax2_x, self.ncnt_max_x) = \
            self._extrema(self.x[conn.net_cells], starts, own)
        (self.nmin_y, self.nmin2_y, self.ncnt_min_y,
         self.nmax_y, self.nmax2_y, self.ncnt_max_y) = \
            self._extrema(self.y[conn.net_cells], starts, own)
        self.hpwl = (self.nmax_x - self.nmin_x) + (self.nmax_y - self.nmin_y)

    def _update_net_bounds(self, nets: np.ndarray) -> None:
        """Recompute bounds and extrema caches for a subset of nets."""
        if nets.size == 0:
            return
        conn = self.conn
        pcells, pcounts = _gather_csr(conn.net_ptr, conn.net_cells, nets)
        seg = np.cumsum(pcounts) - pcounts
        own = np.repeat(np.arange(nets.size), pcounts)
        (self.nmin_x[nets], self.nmin2_x[nets], self.ncnt_min_x[nets],
         self.nmax_x[nets], self.nmax2_x[nets], self.ncnt_max_x[nets]) = \
            self._extrema(self.x[pcells], seg, own)
        (self.nmin_y[nets], self.nmin2_y[nets], self.ncnt_min_y[nets],
         self.nmax_y[nets], self.nmax2_y[nets], self.ncnt_max_y[nets]) = \
            self._extrema(self.y[pcells], seg, own)
        self.hpwl[nets] = ((self.nmax_x[nets] - self.nmin_x[nets])
                           + (self.nmax_y[nets] - self.nmin_y[nets]))

    def wirelength(self) -> float:
        """Total HPWL over the cost-weighted nets (the scalar ``total()``)."""
        return float((self.hpwl * self.conn.wl_weight).sum())

    def writeback(self) -> None:
        """Copy the coordinate arrays back into the ``PlacedCell`` objects."""
        for i, name in enumerate(self.conn.names):
            cell = self.cells[name]
            cell.x_um = float(self.x[i])
            cell.y_um = float(self.y[i])

    def reload(self) -> None:
        """Re-read cell positions (e.g. after a legalization pass)."""
        for i, name in enumerate(self.conn.names):
            cell = self.cells[name]
            self.x[i] = cell.x_um
            self.y[i] = cell.y_um
        self._recompute_bounds()
        if self.security is not None:
            self.security.refresh(self.hpwl)

    # ---------------------------------------------------------- legalization
    def legalize(self) -> None:
        """Array-based row legalization (the scalar ``_legalize`` semantics).

        Cells are snapped to rows, overloaded rows spill to a neighbour, and
        each row packs left-to-right with minimum displacement.  The packing
        recurrence ``cursor' = max(cursor, target) + width`` telescopes to a
        running maximum of ``target - prefix_width``, so a whole row packs
        with one ``np.maximum.accumulate``.
        """
        for ids, rect in self._legal_groups:
            if ids.size == 0:
                continue
            row_height = float(self.height[ids].max())
            row_count = max(1, int(rect.height_um // row_height))
            index = ((self.y[ids] - rect.y_um) / row_height).astype(np.int64)
            index = np.clip(index, 0, row_count - 1)
            rows: List[np.ndarray] = []
            for r in range(row_count):
                members = ids[index == r]
                rows.append(members[np.argsort(self.x[members],
                                               kind="stable")])
            capacity = rect.width_um
            for r in range(row_count):
                spill_target = r + 1 if r + 1 < row_count else r - 1
                if not (0 <= spill_target < row_count and spill_target != r):
                    continue
                widths = self.width[rows[r]]
                kept = int(np.searchsorted(np.cumsum(widths),
                                           1.6 * capacity, side="right"))
                if kept < rows[r].size:
                    spilled = rows[r][kept:]
                    rows[r] = rows[r][:kept]
                    merged = np.concatenate([rows[spill_target], spilled])
                    rows[spill_target] = merged[np.argsort(
                        self.x[merged], kind="stable")]
            for r in range(row_count):
                row = rows[r]
                if row.size == 0:
                    continue
                if r + 1 < row_count:  # spills may have arrived out of order
                    row = row[np.argsort(self.x[row], kind="stable")]
                widths = self.width[row]
                packed = float(widths.sum())
                scale = min(1.0, (capacity / packed) if packed > 0 else 1.0)
                widths = widths * scale
                prefix = np.cumsum(widths) - widths
                target = np.minimum(self.x[row] - widths / 2.0,
                                    rect.x_max - widths)
                left = prefix + np.maximum.accumulate(
                    np.maximum(target - prefix, rect.x_um))
                self.x[row] = np.minimum(left + widths / 2.0, rect.x_max)
                self.y[row] = min(rect.y_um + (r + 0.5) * row_height,
                                  rect.y_max)
        self._recompute_bounds()
        if self.security is not None:
            self.security.refresh(self.hpwl)

    def consistency_check(self) -> None:
        """Assert the incremental state equals a from-scratch recompute.

        Only live nets are compared: dead nets (no cost weight, no channel)
        are deliberately left stale between legalization passes.
        """
        live = self.live_mask
        fields = ("hpwl", "nmin_x", "nmin2_x", "ncnt_min_x",
                  "nmax_x", "nmax2_x", "ncnt_max_x",
                  "nmin_y", "nmin2_y", "ncnt_min_y",
                  "nmax_y", "nmax2_y", "ncnt_max_y")
        cached = {name: getattr(self, name).copy() for name in fields}
        self._recompute_bounds()
        for name in fields:
            assert np.array_equal(cached[name][live],
                                  getattr(self, name)[live]), \
                f"incremental {name} drifted"
        if self.security is not None:
            rows = self.security.rows.copy()
            d = self.security.d.copy()
            self.security.refresh(self.hpwl)
            assert np.allclose(rows, self.security.rows, equal_nan=True)
            assert np.array_equal(d, self.security.d), "criterion drifted"

    # --------------------------------------------------- centre of gravity
    def cog_sweeps(self, sweeps: int) -> None:
        """Vectorized centroid sweeps (Jacobi flavour of the scalar pass).

        Every movable cell moves toward the centroid of the other pins of
        its cost nets, all cells at once per sweep; the scalar pass updates
        cells one at a time (Gauss–Seidel).  The annealing refinement that
        follows absorbs the difference — the equivalence tests bound the
        final quality, not this intermediate.
        """
        conn = self.conn
        if conn.cell_wlnets.size == 0:
            return
        deg = np.diff(conn.cell_wlnet_ptr).astype(np.float64)
        neighbour_count = np.bincount(
            conn.wl_owner,
            weights=conn.net_size[conn.cell_wlnets].astype(np.float64) - 1.0,
            minlength=conn.n_cells)
        active = (~self.fixed) & (neighbour_count > 0)
        starts = conn.net_ptr[:-1]
        for _ in range(max(0, sweeps)):
            net_sum_x = np.add.reduceat(self.x[conn.net_cells], starts)
            net_sum_y = np.add.reduceat(self.y[conn.net_cells], starts)
            num_x = np.bincount(conn.wl_owner,
                                weights=net_sum_x[conn.cell_wlnets],
                                minlength=conn.n_cells)
            num_y = np.bincount(conn.wl_owner,
                                weights=net_sum_y[conn.cell_wlnets],
                                minlength=conn.n_cells)
            num_x -= self.x * deg
            num_y -= self.y * deg
            with np.errstate(invalid="ignore", divide="ignore"):
                tx = num_x / neighbour_count
                ty = num_y / neighbour_count
            tx = np.clip(tx, self.fx0, self.fx1)
            ty = np.clip(ty, self.fy0, self.fy1)
            self.x[active] = tx[active]
            self.y[active] = ty[active]
        self._recompute_bounds()
        if self.security is not None:
            self.security.refresh(self.hpwl)

    # ------------------------------------------------------------ annealing
    def _propose(self, size: int, radius_scale: float,
                 allow_swaps: bool) -> tuple:
        """Draw a batch of candidate moves against the current state."""
        rng = self.rng
        movable = self.movable_ids
        a = movable[rng.choice(movable.size, size=size, replace=False)]
        swap_try = (rng.random(size) < self.schedule.swap_fraction
                    if allow_swaps else np.zeros(size, dtype=bool))
        partners = movable[rng.integers(0, movable.size, size=size)]
        du = rng.uniform(-1.0, 1.0, size=size)
        dv = rng.uniform(-1.0, 1.0, size=size)
        valid_swap = (swap_try & (partners != a)
                      # both cells must land inside the other's fence
                      & (self.x[partners] >= self.fx0[a])
                      & (self.x[partners] <= self.fx1[a])
                      & (self.y[partners] >= self.fy0[a])
                      & (self.y[partners] <= self.fy1[a])
                      & (self.x[a] >= self.fx0[partners])
                      & (self.x[a] <= self.fx1[partners])
                      & (self.y[a] >= self.fy0[partners])
                      & (self.y[a] <= self.fy1[partners]))
        radius = np.maximum(self.span[a] * 0.02,
                            self.span[a] * 0.25 * radius_scale)
        ax = np.clip(self.x[a] + du * radius, self.fx0[a], self.fx1[a])
        ay = np.clip(self.y[a] + dv * radius, self.fy0[a], self.fy1[a])
        ax = np.where(valid_swap, self.x[partners], ax)
        ay = np.where(valid_swap, self.y[partners], ay)
        b = np.where(valid_swap, partners, -1)
        bx = self.x[a].copy()
        by = self.y[a].copy()
        return a, ax, ay, b, bx, by

    @staticmethod
    def _removal_bound(old: np.ndarray, new: np.ndarray, best: np.ndarray,
                       second: np.ndarray, count: np.ndarray,
                       is_min: bool) -> np.ndarray:
        """New per-net extremum after moving one pin from ``old`` to ``new``.

        If the moved pin was not the unique extremum the bound stays at the
        cached ``best``; otherwise it falls back to the cached ``second``.
        Reinserting at ``new`` is one more min/max — exact, no pin gather.
        """
        if is_min:
            survives = (old > best) | (count > 1)
            return np.minimum(np.where(survives, best, second), new)
        survives = (old < best) | (count > 1)
        return np.maximum(np.where(survives, best, second), new)

    def _evaluate(self, a, ax, ay, b, bx, by, sec_mult: float) -> tuple:
        """Exact cost delta of each candidate against the pre-batch state.

        Only *live* nets (HPWL-weighted, plus channel rails when the
        security objective is active) are evaluated.  Every pair has exactly
        one moved pin — a swap's shared nets keep the same coordinate
        multiset, so both copies cancel and are dropped — which makes the
        delta pure arithmetic over the cached per-net extrema.
        """
        conn = self.conn
        size = a.size
        nets_a, counts_a = _gather_csr(self.live_ptr, self.live_nets, a)
        move_a = np.repeat(np.arange(size), counts_a)
        has_b = b >= 0
        if has_b.any():
            b_ids = np.where(has_b, b, 0)
            nets_b, counts_b = _gather_csr(self.live_ptr, self.live_nets,
                                           b_ids)
            keep = np.repeat(has_b, counts_b)
            move_b = np.repeat(np.arange(size), counts_b)[keep]
            nets_b = nets_b[keep]
            pair_move = np.concatenate([move_a, move_b])
            pair_net = np.concatenate([nets_a, nets_b])
            mover = np.concatenate([a[move_a], b[move_b]])
            new_x = np.concatenate([ax[move_a], bx[move_b]])
            new_y = np.concatenate([ay[move_a], by[move_b]])
            # A key on both sides means both swap cells pin the net: its
            # coordinate multiset is unchanged, drop both copies.
            keys = pair_move * conn.n_nets + pair_net
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            dup = np.zeros(order.size, dtype=bool)
            if order.size > 1:
                eq = sorted_keys[1:] == sorted_keys[:-1]
                dup[1:] = eq
                dup[:-1] |= eq
            sel = order[~dup]
            pair_move, pair_net = pair_move[sel], pair_net[sel]
            mover, new_x, new_y = mover[sel], new_x[sel], new_y[sel]
        else:
            pair_move, pair_net = move_a, nets_a
            mover = a[move_a]
            new_x, new_y = ax[move_a], ay[move_a]
        if pair_net.size == 0:
            empty = np.empty(0, np.int64)
            return np.zeros(size), empty, empty, None

        old_x, old_y = self.x[mover], self.y[mover]
        new_min_x = self._removal_bound(
            old_x, new_x, self.nmin_x[pair_net], self.nmin2_x[pair_net],
            self.ncnt_min_x[pair_net], is_min=True)
        new_max_x = self._removal_bound(
            old_x, new_x, self.nmax_x[pair_net], self.nmax2_x[pair_net],
            self.ncnt_max_x[pair_net], is_min=False)
        new_min_y = self._removal_bound(
            old_y, new_y, self.nmin_y[pair_net], self.nmin2_y[pair_net],
            self.ncnt_min_y[pair_net], is_min=True)
        new_max_y = self._removal_bound(
            old_y, new_y, self.nmax_y[pair_net], self.nmax2_y[pair_net],
            self.ncnt_max_y[pair_net], is_min=False)
        new_hpwl = (new_max_x - new_min_x) + (new_max_y - new_min_y)
        delta = np.bincount(
            pair_move,
            weights=(new_hpwl - self.hpwl[pair_net])
            * conn.wl_weight[pair_net],
            minlength=size)

        sec_update = None
        if self.security is not None and sec_mult:
            sec = self.security
            rail = np.flatnonzero(conn.net_chan[pair_net] >= 0)
            if rail.size:
                r_move = pair_move[rail]
                r_net = pair_net[rail]
                r_chan = conn.net_chan[r_net]
                new_cap = sec.const[r_net] + sec.slope[r_net] * new_hpwl[rail]
                gkeys, ginv = np.unique(r_move * max(conn.n_chans, 1)
                                        + r_chan, return_inverse=True)
                g_move = gkeys // max(conn.n_chans, 1)
                g_chan = gkeys % max(conn.n_chans, 1)
                rows = sec.rows[g_chan].copy()
                rows[ginv, conn.net_slot[r_net]] = new_cap
                d_new = dissymmetry_vector(rows, validate=False) \
                    if rows.size else np.zeros(0)
                delta += np.bincount(
                    g_move, weights=sec_mult * (d_new - sec.d[g_chan]),
                    minlength=size)
                sec_update = (r_move, r_net, new_cap, g_move, g_chan, d_new)
        return delta, pair_move, pair_net, sec_update

    def _commit(self, a, ax, ay, b, bx, by, accept, pair_move, pair_net,
                sec_update) -> int:
        """Apply a net/channel/cell-disjoint subset of the accepted moves.

        Conflict resolution is a vectorized min-claim rule: every accepted
        move claims its nets, its channels and its cells; a move commits only
        if it is the lowest-index claimant of *all* of them.  Winners are
        mutually disjoint by construction (two winners sharing a resource
        would both have to be its unique minimum claimant), so each committed
        delta is exact against the pre-batch state.  Accepted-but-skipped
        moves simply count as rejections.
        """
        conn = self.conn
        size = a.size
        if not accept.any():
            return 0
        acc_idx = np.flatnonzero(accept[pair_move])
        lose = np.zeros(size, dtype=bool)

        # Pairs are move-ascending, so a reversed fancy-index write leaves
        # the *lowest* accepted claimant in place — no slow ufunc.at.
        rev = acc_idx[::-1]
        first_net = np.full(conn.n_nets, size, dtype=np.int64)
        first_net[pair_net[rev]] = pair_move[rev]
        contested = acc_idx[first_net[pair_net[acc_idx]]
                            != pair_move[acc_idx]]
        lose[pair_move[contested]] = True

        if conn.n_chans:
            pchan = conn.net_chan[pair_net[acc_idx]]
            rail = acc_idx[pchan >= 0]
            if rail.size:
                first_chan = np.full(conn.n_chans, size, dtype=np.int64)
                rrev = rail[::-1]
                first_chan[conn.net_chan[pair_net[rrev]]] = pair_move[rrev]
                bad = rail[first_chan[conn.net_chan[pair_net[rail]]]
                           != pair_move[rail]]
                lose[pair_move[bad]] = True

        moves = np.arange(size)
        acc_moves = moves[accept]
        first_cell = np.full(conn.n_cells, size, dtype=np.int64)
        np.minimum.at(first_cell, a[accept], acc_moves)
        has_b = accept & (b >= 0)
        if has_b.any():
            np.minimum.at(first_cell, b[has_b], moves[has_b])
            lose |= has_b & (first_cell[np.where(b >= 0, b, 0)] != moves)
        lose[accept] |= first_cell[a[accept]] != acc_moves

        apply_mask = accept & ~lose
        if not apply_mask.any():
            return 0
        self.x[a[apply_mask]] = ax[apply_mask]
        self.y[a[apply_mask]] = ay[apply_mask]
        swaps = apply_mask & (b >= 0)
        if swaps.any():
            self.x[b[swaps]] = bx[swaps]
            self.y[b[swaps]] = by[swaps]
        # Winners are net-disjoint, so their pair nets are unique; refresh
        # the extrema caches for exactly those nets from the new positions.
        self._update_net_bounds(pair_net[apply_mask[pair_move]])
        if sec_update is not None:
            sec = self.security
            r_move, r_net, new_cap, g_move, g_chan, d_new = sec_update
            r_sel = apply_mask[r_move]
            if r_sel.any():
                sec.rows[conn.net_chan[r_net[r_sel]],
                         conn.net_slot[r_net[r_sel]]] = new_cap[r_sel]
            g_sel = apply_mask[g_move]
            sec.d[g_chan[g_sel]] = d_new[g_sel]
        return int(apply_mask.sum())

    def refine(self) -> None:
        """The batched annealing refinement of an already-legal placement."""
        schedule = self.schedule
        conn = self.conn
        budget = schedule.move_budget(self.movable_ids.size)
        if not budget or conn.n_nets == 0 or self.movable_ids.size == 0:
            return
        total_moves = sum(budget)
        batch = max(1, min(int(schedule.batch_moves), self.movable_ids.size))

        sec_mult = 0.0
        if self.security is not None:
            sec_total = self.security.total()
            if sec_total > 0:
                sec_mult = (schedule.security_weight * self.wirelength()
                            / sec_total)

        if schedule.initial_temperature is not None:
            temperature = float(schedule.initial_temperature)
        else:
            probe = min(200, total_moves, self.movable_ids.size)
            a, ax, ay, b, bx, by = self._propose(probe, 0.2,
                                                 allow_swaps=False)
            delta, *_ = self._evaluate(a, ax, ay, b, bx, by, sec_mult)
            mean_delta = float(np.abs(delta).mean()) if delta.size else 1.0
            temperature = max(mean_delta, 1e-9) / max(
                1e-9, -np.log(max(schedule.initial_acceptance, 1e-6)))

        steps = len(budget)
        telemetry = current()
        with telemetry.span("anneal.refine", steps=steps,
                            cells=int(self.movable_ids.size)):
            for step, moves in enumerate(budget):
                fraction = 1.0 - step / max(steps - 1, 1)
                # Per-temperature-step batch stats.  The step span is built
                # only when recording — at thousands of steps per refine even
                # a no-op timing span is measurable on the placer gate.
                with (telemetry.span("anneal.step", step=step,
                                     temperature=float(temperature))
                      if telemetry.enabled else _NO_SPAN):
                    remaining = moves
                    while remaining > 0:
                        size = min(batch, remaining)
                        remaining -= size
                        self.moves_proposed += size
                        a, ax, ay, b, bx, by = self._propose(
                            size, fraction, allow_swaps=True)
                        delta, pair_move, pair_net, sec_update = \
                            self._evaluate(a, ax, ay, b, bx, by, sec_mult)
                        accept = (delta <= 0) | (
                            self.rng.random(size)
                            < np.exp(-np.maximum(delta, 0.0)
                                     / max(temperature, 1e-12)))
                        if telemetry.enabled:
                            telemetry.count("moves_proposed", size)
                            telemetry.count("moves_accepted",
                                            int(accept.sum()))
                        if pair_net.size == 0:
                            continue
                        committed = self._commit(
                            a, ax, ay, b, bx, by, accept, pair_move,
                            pair_net, sec_update)
                        self.moves_committed += committed
                        if telemetry.enabled:
                            telemetry.count("moves_committed", committed)
                            telemetry.count("moves_conflicted",
                                            int(accept.sum()) - committed)
                temperature *= schedule.cooling
