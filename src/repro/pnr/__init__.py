"""Place-and-route substrate (flat reference flow vs hierarchical flow).

Replaces the SoC Encounter flows of the paper with a standard-cell placement
(row-based start plus simulated-annealing refinement), an HPWL-based routing
estimator and a linear parasitic extractor.  The two flows of Section VI are
available as :func:`run_flat_flow` and :func:`run_hierarchical_flow`.
"""

from .cells import (
    PlacedCell,
    block_areas_um2,
    cell_from_instance,
    cells_from_netlist,
    die_side_for_area,
    total_cell_area_um2,
)
from .extraction import (
    ExtractionLookupError,
    ExtractionReport,
    IncrementalExtractor,
    channel_rail_caps,
    extract_capacitances,
)
from .floorplan import (
    Floorplan,
    FloorplanError,
    Rect,
    Region,
    flat_floorplan,
    hierarchical_floorplan,
)
from .anneal import PlacerConnectivity, VectorPlacementEngine, compile_connectivity
from .flows import PlacedDesign, compare_flows, run_flat_flow, run_hierarchical_flow
from .placement import (
    AnnealingSchedule,
    FlatPlacer,
    HierarchicalPlacer,
    LegalityViolation,
    Placement,
    PlacementError,
    initial_placement,
    legality_violations,
)
from .routing import (
    RoutedNet,
    RoutingEstimate,
    RoutingError,
    estimate_net,
    estimate_routing,
    fanout_factor,
)
from .sweep import PlacementSweep, SweepPoint, SweepResult, SweepRow

__all__ = [
    "PlacedCell",
    "block_areas_um2",
    "cell_from_instance",
    "cells_from_netlist",
    "die_side_for_area",
    "total_cell_area_um2",
    "ExtractionLookupError",
    "ExtractionReport",
    "IncrementalExtractor",
    "channel_rail_caps",
    "extract_capacitances",
    "Floorplan",
    "FloorplanError",
    "Rect",
    "Region",
    "flat_floorplan",
    "hierarchical_floorplan",
    "PlacedDesign",
    "compare_flows",
    "run_flat_flow",
    "run_hierarchical_flow",
    "AnnealingSchedule",
    "FlatPlacer",
    "HierarchicalPlacer",
    "LegalityViolation",
    "Placement",
    "PlacementError",
    "legality_violations",
    "initial_placement",
    "PlacerConnectivity",
    "VectorPlacementEngine",
    "compile_connectivity",
    "PlacementSweep",
    "SweepPoint",
    "SweepResult",
    "SweepRow",
    "RoutedNet",
    "RoutingEstimate",
    "RoutingError",
    "estimate_net",
    "estimate_routing",
    "fanout_factor",
]
