"""Placement engines: flat (reference) and hierarchical (constrained).

Two flows are compared in Section VI of the paper:

* **flat** (AES_v2): the whole netlist is placed on the die in one go.  The
  optimizer only minimises global wirelength, so the lengths of the two rails
  of a dual-rail channel are left to chance — "the designer has no control on
  the net capacitances";
* **hierarchical** (AES_v1): every architectural block is constrained into a
  fence of the floorplan; cells implementing one function stay gathered,
  which bounds the length *and the dispersion* of the channel nets.

Both flows share the same machinery: a row-based initial placement followed by
a simulated-annealing refinement that minimises half-perimeter wirelength
(HPWL) while honouring each cell's allowed placement rectangle.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from .cells import PlacedCell, cells_from_netlist
from .floorplan import Floorplan, Rect


class PlacementError(Exception):
    """Raised when a placement cannot be produced or is illegal."""


@dataclass(frozen=True)
class LegalityViolation:
    """One cell outside its allowed rectangle.

    The structured record behind :meth:`Placement.check_legality`; the DRC
    placement rules consume these directly so the placer and the checker
    share a single legality implementation.
    """

    cell: str
    x_um: float
    y_um: float
    fence: str
    rect: Rect

    def describe(self) -> str:
        return (
            f"cell {self.cell!r} at ({self.x_um:.1f}, {self.y_um:.1f}) "
            f"is outside its {self.fence!r} fence "
            f"[{self.rect.x_um:.1f}, {self.rect.y_um:.1f}] x "
            f"[{self.rect.x_max:.1f}, {self.rect.y_max:.1f}]"
        )


def legality_violations(cells: Mapping[str, PlacedCell], floorplan: Floorplan,
                        *, tolerance: float = 1e-6) -> List[LegalityViolation]:
    """Every cell lying outside its fence (or the die), deterministically.

    The single source of truth for placement legality: the placers call it
    through :meth:`Placement.check_legality`, the DRC through ``PLC001``.
    """
    violations = []
    for cell in cells.values():
        rect = floorplan.placement_rect(cell.block)
        if not rect.contains(cell.x_um, cell.y_um, tolerance=tolerance):
            fence = cell.block if cell.block else "die"
            violations.append(LegalityViolation(
                cell=cell.name, x_um=cell.x_um, y_um=cell.y_um,
                fence=fence, rect=rect))
    return violations


@dataclass
class Placement:
    """The result of a placement: positioned cells plus the floorplan used."""

    cells: Dict[str, PlacedCell]
    floorplan: Floorplan

    def position_of(self, cell_name: str) -> Tuple[float, float]:
        try:
            return self.cells[cell_name].position
        except KeyError:
            raise PlacementError(f"cell {cell_name!r} is not placed") from None

    def __len__(self) -> int:
        return len(self.cells)

    def cell_area_um2(self) -> float:
        return sum(cell.area_um2 for cell in self.cells.values())

    def die_area_um2(self) -> float:
        return self.floorplan.die.area_um2

    def check_legality(self, *, tolerance: float = 1e-6) -> List[str]:
        """Verify every cell lies inside its allowed rectangle.

        Delegates to :func:`legality_violations` (shared with the DRC's
        ``PLC001``) and renders each violation in the historical format.
        """
        return [violation.describe()
                for violation in self.violations(tolerance=tolerance)]

    def violations(self, *, tolerance: float = 1e-6) -> List[LegalityViolation]:
        """Structured legality violations of this placement."""
        return legality_violations(self.cells, self.floorplan,
                                   tolerance=tolerance)


# ----------------------------------------------------------- initial placing
def _row_fill(cells: Sequence[PlacedCell], rect: Rect) -> None:
    """Place cells in rows filling the rectangle left-to-right, bottom-up."""
    if not cells:
        return
    row_height = max(cell.height_um for cell in cells)
    x = rect.x_um
    y = rect.y_um + row_height / 2.0
    for cell in cells:
        if x + cell.width_um > rect.x_max and x > rect.x_um:
            x = rect.x_um
            y += row_height
            if y > rect.y_max:
                # Overflow: wrap around and overlap rather than fail; the
                # annealer only needs approximate positions.
                y = rect.y_um + row_height / 2.0
        cell.x_um = min(x + cell.width_um / 2.0, rect.x_max)
        cell.y_um = min(y, rect.y_max)
        x += cell.width_um


def initial_placement(cells: Mapping[str, PlacedCell], floorplan: Floorplan, *,
                      rng: random.Random, ordered: bool = False) -> None:
    """Produce a legal starting placement (in place).

    ``ordered=True`` keeps cells in name order inside each region, which keeps
    the cells of one bit slice adjacent — the structured, datapath-aware start
    used by the hierarchical flow.  ``ordered=False`` shuffles them, modelling
    the unconstrained flat flow.
    """
    by_region: Dict[str, List[PlacedCell]] = {}
    for cell in cells.values():
        region = cell.block if floorplan.region_for(cell.block) is not None else ""
        by_region.setdefault(region, []).append(cell)
    for region_key, region_cells in by_region.items():
        if ordered:
            region_cells.sort(key=lambda c: c.name)
        else:
            rng.shuffle(region_cells)
        rect = (floorplan.regions[region_key].rect if region_key and
                region_key in floorplan.regions else floorplan.die)
        _row_fill(region_cells, rect)


# ------------------------------------------------------------------ wire model
class _WirelengthModel:
    """Incremental HPWL bookkeeping over the movable pins of each net."""

    def __init__(self, netlist: Netlist, cells: Mapping[str, PlacedCell], *,
                 fanout_limit: int = 24):
        self.cells = cells
        self.net_pins: Dict[str, List[str]] = {}
        self.cell_nets: Dict[str, List[str]] = {name: [] for name in cells}
        for net in netlist.nets():
            pins = []
            for pin in net.connections():
                if pin.instance in cells:
                    pins.append(pin.instance)
            unique = sorted(set(pins))
            if len(unique) < 2 or len(unique) > fanout_limit:
                continue
            self.net_pins[net.name] = unique
            for cell_name in unique:
                self.cell_nets[cell_name].append(net.name)
        self.lengths: Dict[str, float] = {
            net: self._hpwl(pins) for net, pins in self.net_pins.items()
        }

    def _hpwl(self, pins: Sequence[str]) -> float:
        xs = [self.cells[p].x_um for p in pins]
        ys = [self.cells[p].y_um for p in pins]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total(self) -> float:
        return sum(self.lengths.values())

    def nets_of(self, cell_name: str) -> List[str]:
        return self.cell_nets.get(cell_name, [])

    def delta_for_move(self, cell_names: Iterable[str]) -> float:
        """Recompute the nets touching the moved cells; return the cost delta."""
        delta = 0.0
        touched: Set[str] = set()
        for cell_name in cell_names:
            touched.update(self.cell_nets.get(cell_name, ()))
        for net in touched:
            new_length = self._hpwl(self.net_pins[net])
            delta += new_length - self.lengths[net]
            self.lengths[net] = new_length
        return delta


# ------------------------------------------------------- analytic refinement
def _center_of_gravity_sweeps(model: "_WirelengthModel", cells: Dict[str, PlacedCell],
                              floorplan: Floorplan, rng: random.Random,
                              sweeps: int) -> None:
    """Iteratively move each cell to the centroid of its connected pins.

    This is the cheap analytic optimisation step of the flow (comparable to a
    quadratic placement): it pulls the cells of one bit slice together and
    shortens every net, while the per-cell allowed rectangle keeps
    hierarchical cells inside their fences.
    """
    movable = [name for name, cell in cells.items() if not cell.fixed]
    for _ in range(max(0, sweeps)):
        rng.shuffle(movable)
        for name in movable:
            cell = cells[name]
            nets = model.nets_of(name)
            if not nets:
                continue
            sum_x = 0.0
            sum_y = 0.0
            count = 0
            for net in nets:
                for pin in model.net_pins[net]:
                    if pin == name:
                        continue
                    other = cells[pin]
                    sum_x += other.x_um
                    sum_y += other.y_um
                    count += 1
            if count == 0:
                continue
            rect = floorplan.placement_rect(cell.block)
            target = rect.clamp(sum_x / count, sum_y / count)
            cell.x_um, cell.y_um = target
        model.lengths = {net: model._hpwl(pins) for net, pins in model.net_pins.items()}


def _legalize(cells: Dict[str, PlacedCell], floorplan: Floorplan) -> None:
    """Spread overlapping cells into rows while preserving relative positions.

    Cells are grouped by placement region, snapped to the nearest cell row and
    packed left-to-right in target-x order; when a row overflows its region it
    is compressed proportionally.  The residual displacement this introduces
    is precisely the "no control over the net capacitances" randomness of the
    flat flow — in the hierarchical flow it is bounded by the fence size.
    """
    by_region: Dict[str, List[PlacedCell]] = {}
    for cell in cells.values():
        region = cell.block if floorplan.region_for(cell.block) is not None else ""
        by_region.setdefault(region, []).append(cell)

    for region_key, region_cells in by_region.items():
        rect = (floorplan.regions[region_key].rect if region_key
                and region_key in floorplan.regions else floorplan.die)
        row_height = max(cell.height_um for cell in region_cells)
        row_count = max(1, int(rect.height_um // row_height))
        rows: Dict[int, List[PlacedCell]] = {index: [] for index in range(row_count)}
        for cell in region_cells:
            index = int((cell.y_um - rect.y_um) / row_height)
            index = min(max(index, 0), row_count - 1)
            rows[index].append(cell)
        # Balance badly overloaded rows by spilling cells to neighbours.
        capacity = rect.width_um
        for index in range(row_count):
            rows[index].sort(key=lambda c: c.x_um)
            packed_width = sum(c.width_um for c in rows[index])
            spill_target = index + 1 if index + 1 < row_count else index - 1
            while packed_width > 1.6 * capacity and 0 <= spill_target < row_count \
                    and spill_target != index and rows[index]:
                spilled = rows[index].pop()
                packed_width -= spilled.width_um
                rows[spill_target].append(spilled)
        for index in range(row_count):
            row_cells = sorted(rows[index], key=lambda c: c.x_um)
            if not row_cells:
                continue
            packed_width = sum(c.width_um for c in row_cells)
            scale = min(1.0, (rect.width_um / packed_width) if packed_width > 0 else 1.0)
            y = min(rect.y_um + (index + 0.5) * row_height, rect.y_max)
            # Minimum-displacement packing: keep every cell as close to its
            # target x as the already-placed cells allow, pushing right only
            # when overlaps force it and clamping the tail to the row end.
            cursor = rect.x_um
            for cell in row_cells:
                width = cell.width_um * scale
                target_left = cell.x_um - width / 2.0
                left = max(cursor, min(target_left, rect.x_max - width))
                left = max(left, rect.x_um)
                cell.x_um = min(left + width / 2.0, rect.x_max)
                cell.y_um = y
                cursor = left + width


# -------------------------------------------------------------------- anneal
@dataclass
class AnnealingSchedule:
    """Placement effort knobs (analytic sweeps plus annealing refinement).

    ``security_weight`` blends the rail-capacitance dissymmetry criterion
    into the annealing cost (0 = pure HPWL); ``reference=True`` selects the
    scalar per-move oracle loop instead of the vectorized batched engine
    (the oracle ignores ``security_weight``, ``batch_moves`` and
    ``swap_fraction``-vectorization details and exists for equivalence
    testing and benchmarking).
    """

    cog_sweeps: int = 6
    legalize_rounds: int = 2
    moves_per_cell: float = 15.0
    initial_acceptance: float = 0.3
    cooling: float = 0.75
    temperature_steps: int = 20
    security_weight: float = 0.0
    batch_moves: int = 2048
    swap_fraction: float = 0.3
    initial_temperature: Optional[float] = None
    reference: bool = False

    def scaled(self, effort: float) -> "AnnealingSchedule":
        """Scale the optimisation effort by a factor (>= 0).

        The total annealing move budget scales *linearly* with ``effort``:
        ``moves_per_cell`` stays fractional and :meth:`move_budget` shrinks
        the number of temperature steps rather than flooring each step's
        move count at one (which used to make low-effort runs spend far
        more moves than requested).
        """
        return replace(
            self,
            cog_sweeps=max(1, int(round(self.cog_sweeps * effort))),
            moves_per_cell=max(0.0, self.moves_per_cell * effort),
        )

    def move_budget(self, movable_count: int) -> List[int]:
        """Per-temperature-step move counts for ``movable_count`` cells.

        The budget sums to ``round(moves_per_cell * movable_count)`` exactly
        — linear in both knobs — distributed as evenly as possible over at
        most ``temperature_steps`` steps (fewer steps when the budget is
        smaller than the step count, instead of padding steps to one move).
        """
        total = int(round(self.moves_per_cell * max(0, movable_count)))
        if total <= 0:
            return []
        steps = max(1, min(self.temperature_steps, total))
        base, extra = divmod(total, steps)
        return [base + (1 if index < extra else 0) for index in range(steps)]


def _refine_with_annealing_reference(model: _WirelengthModel,
                                     cells: Dict[str, PlacedCell],
                                     floorplan: Floorplan, rng: random.Random,
                                     schedule: AnnealingSchedule) -> None:
    """Scalar per-move annealing loop — the oracle for the vectorized engine."""
    movable = [name for name, cell in cells.items() if not cell.fixed]
    budget = schedule.move_budget(len(movable))
    if not movable or not model.net_pins or not budget:
        return

    total_moves = sum(budget)

    # Calibrate the starting temperature from the cost spread of small moves.
    probe_deltas: List[float] = []
    for _ in range(min(200, total_moves)):
        name = rng.choice(movable)
        cell = cells[name]
        old = (cell.x_um, cell.y_um)
        rect = floorplan.placement_rect(cell.block)
        radius = 0.05 * max(rect.width_um, rect.height_um)
        cell.x_um, cell.y_um = rect.clamp(cell.x_um + rng.uniform(-radius, radius),
                                          cell.y_um + rng.uniform(-radius, radius))
        probe_deltas.append(abs(model.delta_for_move([name])))
        cell.x_um, cell.y_um = old
        model.delta_for_move([name])
    mean_delta = sum(probe_deltas) / len(probe_deltas) if probe_deltas else 1.0
    temperature = max(mean_delta, 1e-9) / max(
        1e-9, -math.log(max(schedule.initial_acceptance, 1e-6))
    )

    steps = len(budget)
    for step, step_moves in enumerate(budget):
        fraction = 1.0 - step / max(steps - 1, 1)
        for _ in range(step_moves):
            name = rng.choice(movable)
            cell = cells[name]
            rect = floorplan.placement_rect(cell.block)
            swap_target: Optional[str] = None
            old_positions = {name: (cell.x_um, cell.y_um)}
            if rng.random() < 0.3:
                candidate = rng.choice(movable)
                if candidate != name:
                    other = cells[candidate]
                    other_rect = floorplan.placement_rect(other.block)
                    if (other_rect.contains(cell.x_um, cell.y_um)
                            and rect.contains(other.x_um, other.y_um)):
                        swap_target = candidate
                        old_positions[candidate] = (other.x_um, other.y_um)
                        cell.x_um, other.x_um = other.x_um, cell.x_um
                        cell.y_um, other.y_um = other.y_um, cell.y_um
            if swap_target is None:
                span = max(rect.width_um, rect.height_um)
                radius = max(span * 0.02, span * 0.25 * fraction)
                cell.x_um, cell.y_um = rect.clamp(
                    cell.x_um + rng.uniform(-radius, radius),
                    cell.y_um + rng.uniform(-radius, radius),
                )

            delta = model.delta_for_move(list(old_positions))
            accept = delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12))
            if not accept:
                for moved_name, (x, y) in old_positions.items():
                    cells[moved_name].x_um = x
                    cells[moved_name].y_um = y
                model.delta_for_move(list(old_positions))
        temperature *= schedule.cooling


def _optimize_reference(netlist: Netlist, cells: Dict[str, PlacedCell],
                        floorplan: Floorplan, rng: random.Random,
                        schedule: AnnealingSchedule) -> float:
    """The scalar (pre-vectorization) optimisation pipeline — the oracle."""
    model = _WirelengthModel(netlist, cells)
    if not model.net_pins:
        _legalize(cells, floorplan)
        return model.total()

    rounds = max(1, schedule.legalize_rounds)
    sweeps_per_round = max(1, schedule.cog_sweeps // rounds)
    for _ in range(rounds):
        _center_of_gravity_sweeps(model, cells, floorplan, rng, sweeps_per_round)
        _legalize(cells, floorplan)
        model.lengths = {net: model._hpwl(pins) for net, pins in model.net_pins.items()}

    _refine_with_annealing_reference(model, cells, floorplan, rng, schedule)

    _legalize(cells, floorplan)
    model.lengths = {net: model._hpwl(pins) for net, pins in model.net_pins.items()}
    return model.total()


def _optimize_vectorized(netlist: Netlist, cells: Dict[str, PlacedCell],
                         floorplan: Floorplan, rng: random.Random,
                         schedule: AnnealingSchedule,
                         technology: Technology) -> float:
    """The numpy-backed optimisation pipeline (see :mod:`repro.pnr.anneal`)."""
    from .anneal import VectorPlacementEngine

    np_rng = np.random.default_rng(rng.getrandbits(64))
    engine = VectorPlacementEngine(netlist, cells, floorplan,
                                   schedule=schedule, technology=technology,
                                   rng=np_rng)
    if engine.conn.n_nets == 0:
        _legalize(cells, floorplan)
        return 0.0

    rounds = max(1, schedule.legalize_rounds)
    sweeps_per_round = max(1, schedule.cog_sweeps // rounds)
    for _ in range(rounds):
        # Jacobi sweeps converge slower than the scalar Gauss-Seidel pass
        # but cost ~10x less; run three iterations per requested sweep.
        engine.cog_sweeps(sweeps_per_round * 3)
        engine.legalize()

    engine.refine()
    engine.legalize()
    engine.writeback()
    return engine.wirelength()


def _optimize(netlist: Netlist, cells: Dict[str, PlacedCell], floorplan: Floorplan,
              rng: random.Random, schedule: AnnealingSchedule,
              technology: Technology = HCMOS9_LIKE) -> float:
    """Run the full placement optimisation pipeline in place.

    The pipeline alternates centre-of-gravity sweeps with row legalisation
    (the analytic phase), applies a low-temperature annealing refinement, and
    legalises once more.  Returns the final total wirelength.

    ``schedule.reference`` selects the scalar per-move loop; the default is
    the vectorized batched engine of :mod:`repro.pnr.anneal`, which also
    honours ``schedule.security_weight``.
    """
    if schedule.reference:
        if schedule.security_weight > 0:
            raise PlacementError(
                "security_weight requires the vectorized engine "
                "(reference=True supports HPWL cost only)")
        return _optimize_reference(netlist, cells, floorplan, rng, schedule)
    return _optimize_vectorized(netlist, cells, floorplan, rng, schedule,
                                technology)


# ------------------------------------------------------------------- placers
@dataclass
class FlatPlacer:
    """The reference flow: one global, unconstrained placement (AES_v2).

    ``seed`` selects the random run; the paper observes that "the most
    sensitive channels are never the same from one place and route to
    another", which the test-suite reproduces by comparing seeds.
    """

    seed: int = 0
    utilization: float = 0.85
    schedule: AnnealingSchedule = field(default_factory=AnnealingSchedule)
    effort: float = 1.0
    security_weight: Optional[float] = None

    def place(self, netlist: Netlist,
              technology: Technology = HCMOS9_LIKE,
              floorplan: Optional[Floorplan] = None) -> Placement:
        from .floorplan import flat_floorplan

        rng = random.Random(self.seed)
        cells = cells_from_netlist(netlist, technology)
        plan = floorplan if floorplan is not None else flat_floorplan(
            cells, utilization=self.utilization
        )
        # The flat flow ignores block fences entirely.
        plan = Floorplan(die=plan.die, regions={})
        initial_placement(cells, plan, rng=rng, ordered=False)
        schedule = self.schedule.scaled(self.effort)
        if self.security_weight is not None:
            schedule = replace(schedule, security_weight=self.security_weight)
        _optimize(netlist, cells, plan, rng, schedule, technology)
        return Placement(cells=cells, floorplan=plan)


@dataclass
class HierarchicalPlacer:
    """The proposed flow: per-block fences and structured placement (AES_v1)."""

    seed: int = 0
    block_utilization: float = 0.78
    channel_margin_um: float = 3.0
    schedule: AnnealingSchedule = field(default_factory=AnnealingSchedule)
    effort: float = 1.0
    block_order: Optional[Sequence[str]] = None
    security_weight: Optional[float] = None

    def place(self, netlist: Netlist,
              technology: Technology = HCMOS9_LIKE,
              floorplan: Optional[Floorplan] = None) -> Placement:
        from .floorplan import hierarchical_floorplan

        rng = random.Random(self.seed)
        cells = cells_from_netlist(netlist, technology)
        plan = floorplan if floorplan is not None else hierarchical_floorplan(
            cells, block_utilization=self.block_utilization,
            channel_margin_um=self.channel_margin_um,
            block_order=self.block_order,
        )
        initial_placement(cells, plan, rng=rng, ordered=True)
        schedule = self.schedule.scaled(self.effort)
        if self.security_weight is not None:
            schedule = replace(schedule, security_weight=self.security_weight)
        _optimize(netlist, cells, plan, rng, schedule, technology)
        legality = Placement(cells=cells, floorplan=plan).check_legality()
        if legality:
            raise PlacementError("; ".join(legality[:5]))
        return Placement(cells=cells, floorplan=plan)
