"""Floorplans: die outline and per-block placement fences.

The improvement proposed in Section VI is "a hierarchical place and route flow
which consists in dividing the design into small blocks and constraining
their relative placement.  The cells that implement a given function are
gathered in a specified physical area which limits net length and
dispersion."  A :class:`Floorplan` captures exactly that: the die rectangle
plus one fenced :class:`Region` per architectural block (Fig. 9 of the paper
shows the constrained AES floorplan).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .cells import PlacedCell, block_areas_um2, die_side_for_area


class FloorplanError(Exception):
    """Raised for infeasible floorplan requests."""


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (origin at the lower-left corner), in microns."""

    x_um: float
    y_um: float
    width_um: float
    height_um: float

    def __post_init__(self) -> None:
        if self.width_um <= 0 or self.height_um <= 0:
            raise FloorplanError(
                f"rectangle must have positive size, got {self.width_um} x {self.height_um}"
            )

    @property
    def area_um2(self) -> float:
        return self.width_um * self.height_um

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x_um + self.width_um / 2.0, self.y_um + self.height_um / 2.0)

    @property
    def x_max(self) -> float:
        return self.x_um + self.width_um

    @property
    def y_max(self) -> float:
        return self.y_um + self.height_um

    def contains(self, x_um: float, y_um: float, *, tolerance: float = 1e-6) -> bool:
        return (self.x_um - tolerance <= x_um <= self.x_max + tolerance
                and self.y_um - tolerance <= y_um <= self.y_max + tolerance)

    def clamp(self, x_um: float, y_um: float) -> Tuple[float, float]:
        """The closest point of the rectangle to ``(x, y)``."""
        return (min(max(x_um, self.x_um), self.x_max),
                min(max(y_um, self.y_um), self.y_max))

    def shrunk(self, margin_um: float) -> "Rect":
        """A copy shrunk by ``margin_um`` on every side."""
        if 2 * margin_um >= min(self.width_um, self.height_um):
            raise FloorplanError("margin larger than the rectangle")
        return Rect(self.x_um + margin_um, self.y_um + margin_um,
                    self.width_um - 2 * margin_um, self.height_um - 2 * margin_um)


@dataclass
class Region:
    """A named placement fence bound to an architectural block."""

    block: str
    rect: Rect

    @property
    def area_um2(self) -> float:
        return self.rect.area_um2


@dataclass
class Floorplan:
    """Die outline plus (optionally) one fence per block."""

    die: Rect
    regions: Dict[str, Region] = field(default_factory=dict)

    @property
    def is_hierarchical(self) -> bool:
        return bool(self.regions)

    def region_for(self, block: str) -> Optional[Region]:
        return self.regions.get(block)

    def placement_rect(self, block: str) -> Rect:
        """The rectangle cells of ``block`` must stay within."""
        region = self.regions.get(block)
        return region.rect if region is not None else self.die

    def total_region_area_um2(self) -> float:
        return sum(region.area_um2 for region in self.regions.values())

    def describe(self) -> str:
        lines = [f"die: {self.die.width_um:.1f} x {self.die.height_um:.1f} um "
                 f"({self.die.area_um2:.0f} um2)"]
        for block in sorted(self.regions):
            rect = self.regions[block].rect
            lines.append(
                f"  {block:<24s} at ({rect.x_um:7.1f}, {rect.y_um:7.1f}) "
                f"size {rect.width_um:6.1f} x {rect.height_um:6.1f} um"
            )
        return "\n".join(lines)


def flat_floorplan(cells: Mapping[str, PlacedCell], *, utilization: float = 0.85,
                   aspect_ratio: float = 1.0) -> Floorplan:
    """Die-only floorplan used by the flat (reference) flow."""
    area = sum(cell.area_um2 for cell in cells.values())
    width, height = die_side_for_area(area, utilization, aspect_ratio)
    return Floorplan(die=Rect(0.0, 0.0, width, height))


def hierarchical_floorplan(cells: Mapping[str, PlacedCell], *,
                           block_utilization: float = 0.78,
                           channel_margin_um: float = 3.0,
                           aspect_ratio: float = 1.0,
                           block_order: Optional[Sequence[str]] = None) -> Floorplan:
    """Build a constrained floorplan with one fence per block.

    Blocks are arranged in rows (a simple slicing arrangement comparable to
    the AES floorplan of Fig. 9): the blocks are packed left-to-right into
    rows of roughly equal width, each fence sized for the block's cell area at
    ``block_utilization``.  A routing channel of ``channel_margin_um`` is left
    between fences, which is where the area overhead of the hierarchical flow
    (about 20 % in the paper) comes from.
    """
    if not 0 < block_utilization <= 1:
        raise FloorplanError(f"block utilization must be in (0, 1], got {block_utilization}")
    areas = {block: area for block, area in block_areas_um2(dict(cells)).items() if block}
    if not areas:
        raise FloorplanError("no block annotations found; cannot build a hierarchical floorplan")
    glue_area = block_areas_um2(dict(cells)).get("", 0.0)

    order = list(block_order) if block_order is not None else sorted(
        areas, key=lambda b: areas[b], reverse=True
    )
    unknown = set(order) - set(areas)
    if unknown:
        raise FloorplanError(f"unknown blocks in block_order: {sorted(unknown)}")
    missing = [b for b in sorted(areas) if b not in order]
    order.extend(missing)

    fence_sizes: Dict[str, Tuple[float, float]] = {}
    for block in order:
        fence_area = areas[block] / block_utilization
        width = math.sqrt(fence_area)
        fence_sizes[block] = (width, fence_area / width)

    total_fence_area = sum(w * h for w, h in fence_sizes.values())
    target_row_width = math.sqrt(total_fence_area * aspect_ratio) * 1.05

    regions: Dict[str, Region] = {}
    cursor_x = channel_margin_um
    cursor_y = channel_margin_um
    row_height = 0.0
    die_width = 0.0
    for block in order:
        width, height = fence_sizes[block]
        if cursor_x > channel_margin_um and cursor_x + width > target_row_width:
            cursor_x = channel_margin_um
            cursor_y += row_height + channel_margin_um
            row_height = 0.0
        regions[block] = Region(block=block,
                                rect=Rect(cursor_x, cursor_y, width, height))
        cursor_x += width + channel_margin_um
        row_height = max(row_height, height)
        die_width = max(die_width, cursor_x)
    die_height = cursor_y + row_height + channel_margin_um

    # Reserve extra area for glue cells (placed anywhere on the die).
    if glue_area > 0:
        die_height += glue_area / block_utilization / max(die_width, 1.0)

    return Floorplan(die=Rect(0.0, 0.0, die_width, die_height), regions=regions)
