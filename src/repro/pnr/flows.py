"""Complete place-and-route flows: flat reference vs hierarchical constrained.

``run_flat_flow`` reproduces the AES_v2 reference of the paper (one global
placement, no control over net capacitances); ``run_hierarchical_flow``
reproduces the proposed AES_v1 methodology (per-block fences, structured
placement).  Both return a :class:`PlacedDesign` whose netlist carries the
extracted routing capacitances, ready for the dissymmetry-criterion
evaluation and for power-trace generation.

Both flows are thin configurations of the hardening pass manager
(:mod:`repro.harden`): a placement pass followed by an extraction pass.
The pass pipelines additionally accept *repair* passes (dummy-load
insertion, criterion-guided re-placement, fence resizing) run in a closed
``repair-until(d_A ≤ bound)`` loop — see
:func:`repro.harden.pipeline.hardening_pipeline` for the countermeasure
layer on top of these base flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from .extraction import ExtractionReport
from .floorplan import Floorplan
from .placement import AnnealingSchedule, Placement
from .routing import RoutingEstimate


@dataclass
class PlacedDesign:
    """A placed, routed (estimated) and extracted design."""

    name: str
    flow: str
    seed: int
    netlist: Netlist
    placement: Placement
    routing: RoutingEstimate
    extraction: ExtractionReport

    @property
    def floorplan(self) -> Floorplan:
        return self.placement.floorplan

    def area_report(self):
        """Area accounting of the placed design (a
        :class:`repro.core.metrics.AreaReport`).

        Imported lazily: the place-and-route substrate must stay importable
        without the analysis layer to avoid a circular dependency.
        """
        from ..core.metrics import AreaReport

        return AreaReport(
            design=self.name,
            cell_area_um2=self.placement.cell_area_um2(),
            die_area_um2=self.placement.die_area_um2(),
        )

    def summary(self) -> str:
        area = self.area_report()
        return (
            f"{self.name} [{self.flow}, seed={self.seed}]: "
            f"{len(self.placement)} cells, die {area.die_area_um2:.0f} um2 "
            f"(utilization {area.utilization:.0%}), total wirelength "
            f"{self.routing.total_wirelength_um():.0f} um, "
            f"max net cap {self.extraction.max_cap_ff:.1f} fF"
        )


def run_flat_flow(netlist: Netlist, *, seed: int = 0,
                  technology: Technology = HCMOS9_LIKE,
                  utilization: float = 0.85,
                  effort: float = 1.0,
                  schedule: Optional[AnnealingSchedule] = None,
                  security_weight: Optional[float] = None,
                  design_name: Optional[str] = None) -> PlacedDesign:
    """Place, route-estimate and extract the design with the flat flow.

    Thin wrapper over :func:`repro.harden.pipeline.flat_pipeline` (imported
    lazily — the pass manager builds on this module's :class:`PlacedDesign`).
    ``security_weight`` blends the rail-dissymmetry criterion into the
    placement cost (see :class:`repro.pnr.placement.AnnealingSchedule`).
    """
    from ..harden.pipeline import flat_pipeline

    pipeline = flat_pipeline(utilization=utilization, effort=effort,
                             schedule=schedule,
                             security_weight=security_weight)
    result = pipeline.run(netlist, seed=seed, technology=technology,
                          design_name=design_name)
    return result.design


def run_hierarchical_flow(netlist: Netlist, *, seed: int = 0,
                          technology: Technology = HCMOS9_LIKE,
                          block_utilization: float = 0.78,
                          channel_margin_um: float = 3.0,
                          effort: float = 1.0,
                          schedule: Optional[AnnealingSchedule] = None,
                          security_weight: Optional[float] = None,
                          block_order: Optional[Sequence[str]] = None,
                          floorplan: Optional[Floorplan] = None,
                          design_name: Optional[str] = None) -> PlacedDesign:
    """Place, route-estimate and extract with the hierarchical flow.

    Thin wrapper over :func:`repro.harden.pipeline.hierarchical_pipeline`.
    """
    from ..harden.pipeline import hierarchical_pipeline

    pipeline = hierarchical_pipeline(
        block_utilization=block_utilization,
        channel_margin_um=channel_margin_um, effort=effort,
        schedule=schedule, block_order=block_order, floorplan=floorplan,
        security_weight=security_weight)
    result = pipeline.run(netlist, seed=seed, technology=technology,
                          design_name=design_name)
    return result.design


def compare_flows(flat: PlacedDesign, hierarchical: PlacedDesign) -> Dict[str, float]:
    """Headline numbers of the flat-vs-hierarchical comparison.

    Returns the area overhead of the hierarchical flow (the paper reports
    about +20 %) together with the wirelength ratio.
    """
    flat_area = flat.area_report()
    hier_area = hierarchical.area_report()
    overhead = (hier_area.die_area_um2 - flat_area.die_area_um2) / flat_area.die_area_um2
    wl_ratio = (hierarchical.routing.total_wirelength_um()
                / max(flat.routing.total_wirelength_um(), 1e-9))
    return {
        "area_overhead": overhead,
        "wirelength_ratio": wl_ratio,
        "flat_die_area_um2": flat_area.die_area_um2,
        "hier_die_area_um2": hier_area.die_area_um2,
    }
