"""Knob grid-search harness for the annealing placer.

Placement quality/speed folklore ("cool at 0.75", "15 moves per cell") becomes
a measured grid: a :class:`PlacementSweep` runs one full place → extract →
criterion evaluation per point of the knob product

``initial_acceptance (T₀ calibration) × cooling α × moves/cell ×
security_weight``

and merges the per-point results into a deterministic table.  Points are
independent, so the sweep shards over forked workers exactly like
:class:`repro.core.flow.AttackCampaign`: nothing but the point index crosses
the process boundary on the way in (each worker regenerates its shard's
netlist from the factory), and the merged table is byte-identical to a
serial run.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..electrical.technology import HCMOS9_LIKE, Technology
from ..obs.telemetry import Telemetry, current, use
from .placement import AnnealingSchedule, PlacementError

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One knob combination of the placer grid."""

    initial_acceptance: float
    cooling: float
    moves_per_cell: float
    security_weight: float

    def schedule(self, base: AnnealingSchedule) -> AnnealingSchedule:
        return replace(
            base,
            initial_acceptance=self.initial_acceptance,
            cooling=self.cooling,
            moves_per_cell=self.moves_per_cell,
            security_weight=self.security_weight,
        )


@dataclass(frozen=True)
class SweepRow:
    """The measured outcome of one sweep point."""

    point: SweepPoint
    wirelength_um: float
    max_dissymmetry: float
    mean_dissymmetry: float


@dataclass
class SweepResult:
    """All rows of a finished sweep, in grid order."""

    flow: str
    design: str
    rows: List[SweepRow]

    def best(self, key: Optional[Callable[[SweepRow], float]] = None) -> SweepRow:
        """The best row (lowest ``key``; default: total wirelength)."""
        if not self.rows:
            raise PlacementError("empty sweep: no rows to rank")
        if key is None:
            key = lambda row: row.wirelength_um  # noqa: E731
        return min(self.rows, key=key)

    def as_table(self) -> str:
        """Fixed-width table of the grid, deterministic byte-for-byte."""
        header = (f"{'acc':>6s} {'cool':>6s} {'mv/cell':>8s} {'sec_w':>6s} "
                  f"{'WL um':>12s} {'max dA':>10s} {'mean dA':>10s}")
        lines = [f"placer sweep: {self.design} [{self.flow}], "
                 f"{len(self.rows)} points", header, "-" * len(header)]
        for row in self.rows:
            p = row.point
            lines.append(
                f"{p.initial_acceptance:>6.2f} {p.cooling:>6.2f} "
                f"{p.moves_per_cell:>8.1f} {p.security_weight:>6.2f} "
                f"{row.wirelength_um:>12.2f} {row.max_dissymmetry:>10.6f} "
                f"{row.mean_dissymmetry:>10.6f}")
        return "\n".join(lines)


@dataclass
class PlacementSweep:
    """Grid search over the annealing placer knobs.

    ``netlist_factory`` must build a *fresh* netlist per call (placement
    annotates nets in place, so points must not share one netlist — and the
    factory, not a netlist, is what lets forked workers regenerate their
    shard locally).
    """

    netlist_factory: Callable[[], Netlist]
    flow: str = "flat"
    seed: int = 0
    effort: float = 1.0
    technology: Technology = field(default_factory=lambda: HCMOS9_LIKE)
    base_schedule: AnnealingSchedule = field(default_factory=AnnealingSchedule)
    initial_acceptance: Sequence[float] = (0.3,)
    cooling: Sequence[float] = (0.75,)
    moves_per_cell: Sequence[float] = (15.0,)
    security_weight: Sequence[float] = (0.0,)

    def points(self) -> List[SweepPoint]:
        """The grid in deterministic (row-major product) order."""
        return [SweepPoint(*knobs) for knobs in itertools.product(
            self.initial_acceptance, self.cooling,
            self.moves_per_cell, self.security_weight)]

    # ------------------------------------------------------------- one point
    def _run_point(self, point: SweepPoint) -> SweepRow:
        from ..harden.pipeline import flat_pipeline, hierarchical_pipeline

        telemetry = current()
        with telemetry.span("sweep.point",
                            initial_acceptance=point.initial_acceptance,
                            cooling=point.cooling,
                            moves_per_cell=point.moves_per_cell,
                            security_weight=point.security_weight):
            netlist = self.netlist_factory()
            schedule = point.schedule(self.base_schedule)
            if self.flow == "flat":
                pipeline = flat_pipeline(effort=self.effort,
                                         schedule=schedule)
            elif self.flow == "hierarchical":
                pipeline = hierarchical_pipeline(effort=self.effort,
                                                 schedule=schedule)
            else:
                raise PlacementError(
                    f"unknown sweep flow {self.flow!r}; expected 'flat' or "
                    "'hierarchical'")
            result = pipeline.run(netlist, seed=self.seed,
                                  technology=self.technology)
            telemetry.record_rss()
            return SweepRow(
                point=point,
                wirelength_um=result.design.routing.total_wirelength_um(),
                max_dissymmetry=result.criterion.max_dissymmetry,
                mean_dissymmetry=result.criterion.mean_dissymmetry,
            )

    # ------------------------------------------------------------------ run
    def run(self, *, workers: int = 1, store=None,
            telemetry=None, service=None) -> SweepResult:
        """Run every grid point; ``workers > 1`` shards over forked workers.

        The merged result is in grid order regardless of worker count, and
        byte-identical to the serial run (each point is deterministic and
        fully independent).  Falls back to the serial path when ``fork`` is
        unavailable.

        With ``store=path`` every finished point is spilled to a columnar
        shard under ``path`` (the same npz + manifest format as
        :meth:`repro.core.flow.AttackCampaign.run` — see
        :mod:`repro.store`), and re-invoking with the same ``store`` resumes
        from the manifest: completed points are loaded back instead of
        re-placed, and the merged table is byte-identical to an
        uninterrupted serial run.

        With ``telemetry=`` a :class:`repro.obs.Telemetry` collector, the
        sweep records one ``sweep.point`` span per grid point (annealer
        move counters and peak RSS nested inside); sharded workers record
        locally and their trees merge in grid order, same shape as serial.

        With ``service=`` a running :class:`repro.serve.CampaignService`
        the sweep was registered with, grid points are scheduled as jobs
        on the service's persistent worker pool (``workers`` must stay 1 —
        the service owns the pool); the merged table is byte-identical to
        a serial run.
        """
        points = self.points()
        design = self.netlist_factory().name
        telemetry = current() if telemetry is None else telemetry
        if service is not None and workers > 1:
            raise PlacementError(
                "workers does not compose with service=: the service owns "
                "the worker pool (configure it there)")
        with use(telemetry), telemetry.span(
                "sweep", flow=self.flow, design=design,
                points=len(points), workers=workers):
            if service is not None:
                return service._execute_sweep(self, points, design,
                                              store=store)
            if store is not None:
                return self._run_with_store(store, points, design, workers)
            if (workers <= 1 or len(points) <= 1
                    or "fork" not in multiprocessing.get_all_start_methods()):
                rows = [self._run_point(point) for point in points]
            else:
                rows = list(self._run_sharded_iter(points, workers))
            telemetry.record_rss()
            return SweepResult(flow=self.flow, design=design, rows=rows)

    def _run_sharded_iter(self, points: List[SweepPoint], workers: int):
        """Sweep rows in grid order, yielded as they complete (fork pool)."""
        if not points:
            # Pool(processes=0) raises ValueError; an empty grid (e.g. a
            # fully-resumed store run) is simply an empty result.
            return
        telemetry = current()
        global _SWEEP_STATE
        context = multiprocessing.get_context("fork")
        _SWEEP_STATE = (self, points)
        try:
            with context.Pool(processes=min(workers, len(points))) as pool:
                for index, (row, shard_tree) in enumerate(
                        pool.imap(_sweep_shard_worker, range(len(points)),
                                  chunksize=1)):
                    if shard_tree is not None:
                        telemetry.adopt(shard_tree, shard=index)
                    yield row
        finally:
            _SWEEP_STATE = None

    # ---------------------------------------------------------------- store
    def _grid_fingerprint(self, points: List[SweepPoint],
                          design: str) -> str:
        """Digest of every knob that shapes the sweep table.

        The netlist factory itself cannot be hashed; the design name it
        produces stands in for it.
        """
        from ..store import grid_fingerprint
        from dataclasses import asdict

        payload = {
            "design": design,
            "flow": self.flow,
            "seed": self.seed,
            "effort": self.effort,
            "base_schedule": {key: value for key, value
                              in sorted(asdict(self.base_schedule).items())},
            "points": [[point.initial_acceptance, point.cooling,
                        point.moves_per_cell, point.security_weight]
                       for point in points],
        }
        return grid_fingerprint(payload)

    def _run_with_store(self, store, points: List[SweepPoint], design: str,
                        workers: int) -> SweepResult:
        """The spill-and-resume form of :meth:`run` (one shard per point)."""
        from ..store import CampaignFrame, CampaignStore

        keys = [f"point-{index:04d}" for index in range(len(points))]
        sweep_store = CampaignStore.open(
            store, kind="sweep", scenario_keys=keys,
            fingerprint=self._grid_fingerprint(points, design),
            metadata={"flow": self.flow, "design": design})
        done = set(sweep_store.completed_keys())
        if done:
            logger.info("sweep store resume: %d/%d points already complete",
                        len(done), len(keys))
        pending = [(key, point) for key, point in zip(keys, points)
                   if key not in done]
        pending_keys = [key for key, _point in pending]
        pending_points = [point for _key, point in pending]
        if (workers > 1 and len(pending_points) > 1
                and "fork" in multiprocessing.get_all_start_methods()):
            results = self._run_sharded_iter(pending_points, workers)
        else:
            results = (self._run_point(point) for point in pending_points)
        written = {}
        for key, row in zip(pending_keys, results):
            tables = {"rows": CampaignFrame.from_rows([row], kind="sweep")}
            sweep_store.write_shard(key, tables)
            written[key] = tables
        merged = sweep_store.merge_tables({"rows": "sweep"}, keys=keys,
                                          cache=written)
        telemetry = current()
        telemetry.record_rss()
        tables = dict(merged)
        if telemetry.enabled:
            from ..obs.export import telemetry_frame

            tables["telemetry"] = telemetry_frame(telemetry.snapshot())
        sweep_store.finalize(tables)
        return SweepResult(flow=self.flow, design=design,
                           rows=merged["rows"].to_rows())


#: Sweep state inherited by forked shard workers (set around the pool's
#: lifetime only); the inbound task payload is just the point index.
_SWEEP_STATE: Optional[Tuple[PlacementSweep, List[SweepPoint]]] = None


def _sweep_shard_worker(index: int) -> tuple:
    """One grid point in the forked child: (row, telemetry tree or None).

    Mirrors :func:`repro.core.flow._scenario_shard_worker`: the child
    records into a fresh collector when the inherited ambient one is
    enabled, and the parent adopts the snapshot in grid order.
    """
    sweep, points = _SWEEP_STATE
    if not current().enabled:
        return sweep._run_point(points[index]), None
    local = Telemetry(name="shard")
    with use(local):
        row = sweep._run_point(points[index])
    return row, local.snapshot()
