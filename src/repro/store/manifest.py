"""The JSON manifest of a campaign-store directory.

The manifest is the store's source of truth for resume: it pins the store
*kind* (campaign or sweep), the grid *fingerprint* (a digest of everything
that shapes the result — scenario keys, trace budget, seeds, attack and
assessment labels — computed by the producers), the ordered *scenario keys*,
and one :class:`ShardRecord` per **completed** scenario.  A scenario's shard
files are written first and the manifest updated after, atomically
(tmp + :func:`os.replace`), so every key listed under ``shards`` is backed
by fully written npz data no matter where a crash landed.

A resumed run re-opens the manifest, verifies kind/fingerprint/keys (a
mismatch raises :class:`~repro.store.schema.StoreError` instead of silently
mixing grids) and re-runs only the scenarios without a shard record.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .schema import SCHEMA_VERSION, StoreError

MANIFEST_NAME = "manifest.json"


@dataclass
class ShardRecord:
    """One completed scenario: its table files and their row counts."""

    key: str
    index: int
    tables: Dict[str, str]
    rows: Dict[str, int]

    def to_json(self) -> Dict[str, object]:
        return {"key": self.key, "index": self.index,
                "tables": dict(self.tables), "rows": dict(self.rows)}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ShardRecord":
        return cls(key=str(data["key"]), index=int(data["index"]),
                   tables={str(k): str(v)
                           for k, v in dict(data["tables"]).items()},
                   rows={str(k): int(v)
                         for k, v in dict(data["rows"]).items()})


@dataclass
class StoreManifest:
    """Schema version, grid identity and per-shard completion records."""

    kind: str
    fingerprint: str
    scenario_keys: List[str]
    version: int = SCHEMA_VERSION
    metadata: Dict[str, str] = field(default_factory=dict)
    shards: Dict[str, ShardRecord] = field(default_factory=dict)
    merged: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.scenario_keys)) != len(self.scenario_keys):
            raise StoreError("scenario keys are not unique; every scenario "
                             "needs a distinct (noise/design or point) label")

    # ---------------------------------------------------------- completion
    def completed_keys(self) -> List[str]:
        """The scenario keys with a shard record, in scenario order."""
        return [key for key in self.scenario_keys if key in self.shards]

    def pending_keys(self) -> List[str]:
        return [key for key in self.scenario_keys if key not in self.shards]

    def record_shard(self, record: ShardRecord) -> None:
        if record.key not in self.scenario_keys:
            raise StoreError(f"shard key {record.key!r} is not a scenario "
                             "of this store")
        self.shards[record.key] = record

    def check_compatible(self, *, kind: str, fingerprint: str,
                         scenario_keys: List[str]) -> None:
        """Refuse to resume a store produced by a different grid."""
        if self.kind != kind:
            raise StoreError(f"store holds {self.kind!r} results; this run "
                             f"produces {kind!r} — use a fresh directory")
        if self.scenario_keys != list(scenario_keys):
            raise StoreError(
                "store scenario keys do not match this run's grid "
                f"(stored {len(self.scenario_keys)} keys, run has "
                f"{len(scenario_keys)}; first difference: "
                f"{_first_difference(self.scenario_keys, scenario_keys)}) "
                "— use a fresh directory or the original grid")
        if self.fingerprint != fingerprint:
            raise StoreError(
                "store fingerprint does not match this run's grid "
                f"(stored {self.fingerprint}, run {fingerprint}): some "
                "knob beyond the scenario keys changed (trace budget, "
                "seed, attacks, assessments, streaming...) — use a fresh "
                "directory or the original configuration")

    # -------------------------------------------------------------- disk
    def to_json(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "scenario_keys": list(self.scenario_keys),
            "metadata": dict(self.metadata),
            "shards": [self.shards[key].to_json()
                       for key in self.completed_keys()],
            "merged": dict(self.merged),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "StoreManifest":
        version = int(data.get("version", -1))
        if version != SCHEMA_VERSION:
            raise StoreError(f"manifest schema version {version} is not "
                             f"the supported {SCHEMA_VERSION}")
        manifest = cls(
            kind=str(data["kind"]),
            fingerprint=str(data["fingerprint"]),
            scenario_keys=[str(key) for key in data["scenario_keys"]],
            version=version,
            metadata={str(k): str(v)
                      for k, v in dict(data.get("metadata", {})).items()},
            merged={str(k): str(v)
                    for k, v in dict(data.get("merged", {})).items()},
        )
        for entry in data.get("shards", []):
            manifest.record_shard(ShardRecord.from_json(entry))
        return manifest

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the manifest atomically into ``directory``.

        Compact encoding: the manifest is rewritten after *every* completed
        shard, so fine-grained grids pay this serialization per scenario
        (pipe through ``json.tool`` to inspect one by eye).
        """
        directory = Path(directory)
        path = directory / MANIFEST_NAME
        tmp = directory / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self.to_json(), sort_keys=True,
                                  separators=(",", ":")) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "StoreManifest":
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise StoreError(f"no manifest at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise StoreError(f"corrupt manifest at {path}: {error}") from None
        return cls.from_json(data)

    @classmethod
    def load_if_present(cls, directory: Union[str, Path]
                        ) -> Optional["StoreManifest"]:
        if (Path(directory) / MANIFEST_NAME).exists():
            return cls.load(directory)
        return None


def _first_difference(left: List[str], right: List[str]) -> str:
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return f"index {index}: {a!r} != {b!r}"
    return f"length {len(left)} vs {len(right)}"
