"""Column schemas of the campaign store.

A :class:`FrameSchema` fixes, per *row kind*, the columns of the columnar
:class:`~repro.store.frame.CampaignFrame` together with the two conversions
that make the store lossless: ``flatten`` turns one result dataclass into a
plain ``{column: value}`` dict, ``unflatten`` rebuilds the dataclass from it.
Four kinds are registered — one per result-row dataclass of the repo:

========== ============================================== =================
kind       dataclass                                      produced by
========== ============================================== =================
campaign   :class:`repro.core.flow.CampaignRow`           ``AttackCampaign``
assessment :class:`repro.core.flow.AssessmentRow`         ``AttackCampaign``
sweep      :class:`repro.pnr.sweep.SweepRow`              ``PlacementSweep``
telemetry  :class:`repro.obs.export.TelemetryRow`         ``Telemetry`` runs
========== ============================================== =================

Columns are typed (``str`` / ``int`` / ``float`` / ``bool``) and optionally
*nullable*: a nullable column is stored as a dense value array plus a boolean
null-mask column, so ``None`` survives the round trip even for floats whose
value space already contains NaN/±inf.  The dataclass ``result`` payloads
(attack/assessment result objects) are deliberately **not** part of any
schema — they are in-memory analysis handles, not columnar data, and are
dropped by ``flatten`` (the store entry points refuse ``keep_results`` runs
outright, see :meth:`repro.core.flow.AttackCampaign.run`).

The row dataclasses are imported lazily inside the conversion callables, so
:mod:`repro.store` stays a leaf package importable from anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Bumped whenever the on-disk layout (schemas, npz naming, manifest fields)
#: changes incompatibly; stored in every manifest and npz file.
SCHEMA_VERSION = 1


class StoreError(Exception):
    """Raised on malformed frames, schema mismatches or store corruption."""


@dataclass(frozen=True)
class ColumnSpec:
    """One typed column: ``kind`` is ``str``/``int``/``float``/``bool``."""

    name: str
    kind: str
    nullable: bool = False


@dataclass(frozen=True)
class FrameSchema:
    """The column layout of one row kind plus its dataclass conversions.

    ``unflatten`` is ``None`` for derived schemas (projections, aggregates)
    that no longer correspond to a dataclass — their frames cannot go back
    through :meth:`~repro.store.frame.CampaignFrame.to_rows`.
    """

    kind: str
    columns: Tuple[ColumnSpec, ...]
    flatten: Optional[Callable[[object], Dict[str, object]]] = None
    unflatten: Optional[Callable[[Dict[str, object]], object]] = None

    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.columns)

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise StoreError(f"schema {self.kind!r} has no column {name!r}; "
                         f"columns: {list(self.names())}")

    def project(self, names) -> "FrameSchema":
        """A derived schema over a subset of columns (loses ``unflatten``)."""
        specs = tuple(self.column(name) for name in names)
        return FrameSchema(kind=self.kind, columns=specs)


#: numpy dtype per column kind (strings widen to the longest value).
DTYPES = {"str": np.dtype("U1"), "int": np.dtype(np.int64),
          "float": np.dtype(np.float64), "bool": np.dtype(np.bool_)}

#: The value stored in the dense array where the null mask is set.
NULL_PLACEHOLDERS = {"str": "", "int": 0, "float": float("nan"),
                     "bool": False}

#: Python-side casts applied by ``to_rows`` so rebuilt dataclasses hold
#: plain Python scalars (exact for int64/float64/bool/str round trips).
PYTHON_CASTS = {"str": str, "int": int, "float": float, "bool": bool}


# ------------------------------------------------------------ campaign rows
def _flatten_campaign(row) -> Dict[str, object]:
    return {
        "design": row.design,
        "selection": row.selection,
        "attack": row.attack,
        "noise": row.noise,
        "trace_count": row.trace_count,
        "best_guess": row.best_guess,
        "best_peak": row.best_peak,
        "correct_guess": row.correct_guess,
        "rank_of_correct": row.rank_of_correct,
        "discrimination": row.discrimination,
        "disclosure": row.disclosure,
    }


def _unflatten_campaign(values: Dict[str, object]):
    from ..core.flow import CampaignRow

    return CampaignRow(**values)


_CAMPAIGN_SCHEMA = FrameSchema(
    kind="campaign",
    columns=(
        ColumnSpec("design", "str"),
        ColumnSpec("selection", "str"),
        ColumnSpec("attack", "str"),
        ColumnSpec("noise", "str"),
        ColumnSpec("trace_count", "int"),
        ColumnSpec("best_guess", "int"),
        ColumnSpec("best_peak", "float"),
        ColumnSpec("correct_guess", "int", nullable=True),
        ColumnSpec("rank_of_correct", "int", nullable=True),
        ColumnSpec("discrimination", "float", nullable=True),
        ColumnSpec("disclosure", "int", nullable=True),
    ),
    flatten=_flatten_campaign,
    unflatten=_unflatten_campaign,
)


# ---------------------------------------------------------- assessment rows
def _flatten_assessment(row) -> Dict[str, object]:
    return {
        "design": row.design,
        "assessment": row.assessment,
        "noise": row.noise,
        "trace_count": row.trace_count,
        "statistic": row.statistic,
        "peak": row.peak,
        "threshold": row.threshold,
        "flagged": row.flagged,
        "n0": row.n0,
        "n1": row.n1,
    }


def _unflatten_assessment(values: Dict[str, object]):
    from ..core.flow import AssessmentRow

    return AssessmentRow(**values)


_ASSESSMENT_SCHEMA = FrameSchema(
    kind="assessment",
    columns=(
        ColumnSpec("design", "str"),
        ColumnSpec("assessment", "str"),
        ColumnSpec("noise", "str"),
        ColumnSpec("trace_count", "int"),
        ColumnSpec("statistic", "str"),
        ColumnSpec("peak", "float"),
        ColumnSpec("threshold", "float", nullable=True),
        ColumnSpec("flagged", "bool", nullable=True),
        ColumnSpec("n0", "int", nullable=True),
        ColumnSpec("n1", "int", nullable=True),
    ),
    flatten=_flatten_assessment,
    unflatten=_unflatten_assessment,
)


# --------------------------------------------------------------- sweep rows
def _flatten_sweep(row) -> Dict[str, object]:
    point = row.point
    return {
        "initial_acceptance": point.initial_acceptance,
        "cooling": point.cooling,
        "moves_per_cell": point.moves_per_cell,
        "security_weight": point.security_weight,
        "wirelength_um": row.wirelength_um,
        "max_dissymmetry": row.max_dissymmetry,
        "mean_dissymmetry": row.mean_dissymmetry,
    }


def _unflatten_sweep(values: Dict[str, object]):
    from ..pnr.sweep import SweepPoint, SweepRow

    return SweepRow(
        point=SweepPoint(
            initial_acceptance=values["initial_acceptance"],
            cooling=values["cooling"],
            moves_per_cell=values["moves_per_cell"],
            security_weight=values["security_weight"],
        ),
        wirelength_um=values["wirelength_um"],
        max_dissymmetry=values["max_dissymmetry"],
        mean_dissymmetry=values["mean_dissymmetry"],
    )


_SWEEP_SCHEMA = FrameSchema(
    kind="sweep",
    columns=(
        ColumnSpec("initial_acceptance", "float"),
        ColumnSpec("cooling", "float"),
        ColumnSpec("moves_per_cell", "float"),
        ColumnSpec("security_weight", "float"),
        ColumnSpec("wirelength_um", "float"),
        ColumnSpec("max_dissymmetry", "float"),
        ColumnSpec("mean_dissymmetry", "float"),
    ),
    flatten=_flatten_sweep,
    unflatten=_unflatten_sweep,
)


# ----------------------------------------------------------- telemetry rows
def _flatten_telemetry(row) -> Dict[str, object]:
    return {
        "record_type": row.record_type,
        "path": row.path,
        "name": row.name,
        "start_s": row.start_s,
        "duration_s": row.duration_s,
        "value": row.value,
        "shard": row.shard,
        "attrs": row.attrs,
    }


def _unflatten_telemetry(values: Dict[str, object]):
    from ..obs.export import TelemetryRow

    return TelemetryRow(**values)


_TELEMETRY_SCHEMA = FrameSchema(
    kind="telemetry",
    columns=(
        ColumnSpec("record_type", "str"),
        ColumnSpec("path", "str"),
        ColumnSpec("name", "str"),
        ColumnSpec("start_s", "float", nullable=True),
        ColumnSpec("duration_s", "float", nullable=True),
        ColumnSpec("value", "float", nullable=True),
        ColumnSpec("shard", "int", nullable=True),
        ColumnSpec("attrs", "str"),
    ),
    flatten=_flatten_telemetry,
    unflatten=_unflatten_telemetry,
)


_SCHEMAS: Dict[str, FrameSchema] = {
    schema.kind: schema
    for schema in (_CAMPAIGN_SCHEMA, _ASSESSMENT_SCHEMA, _SWEEP_SCHEMA,
                   _TELEMETRY_SCHEMA)
}

#: Row dataclass name → schema kind (detection without importing the types).
_ROW_TYPE_KINDS = {
    "CampaignRow": "campaign",
    "AssessmentRow": "assessment",
    "SweepRow": "sweep",
    "TelemetryRow": "telemetry",
}


def schema_for(kind: str) -> FrameSchema:
    """The registered schema of one row kind."""
    try:
        return _SCHEMAS[kind]
    except KeyError:
        raise StoreError(f"unknown frame kind {kind!r}; "
                         f"known: {sorted(_SCHEMAS)}") from None


def kind_of_row(row) -> str:
    """The schema kind a result-row dataclass instance belongs to."""
    name = type(row).__name__
    try:
        return _ROW_TYPE_KINDS[name]
    except KeyError:
        raise StoreError(
            f"no frame schema stores {name} rows; storable kinds: "
            f"{sorted(_ROW_TYPE_KINDS.values())}") from None
