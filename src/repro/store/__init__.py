"""Columnar campaign store: numpy frames, npz + manifest disk format, query.

The store is the persistence and analysis layer of campaign-scale runs
(:class:`repro.core.flow.AttackCampaign`, :class:`repro.pnr.sweep.\
PlacementSweep`):

* :mod:`repro.store.schema`   — typed column schemas of the three result-row
  kinds (campaign / assessment / sweep) and their dataclass conversions;
* :mod:`repro.store.frame`    — :class:`CampaignFrame`, the one-array-per-
  column nullable table that round-trips the dataclasses exactly;
* :mod:`repro.store.query`    — lazy filter/select, group-by aggregation,
  MTD percentiles, verdict pivots, pareto fronts;
* :mod:`repro.store.disk`     — the bit-exact npz frame format;
* :mod:`repro.store.manifest` — the JSON manifest with per-shard completion
  records that makes crashed sweeps resumable;
* :mod:`repro.store.store`    — :class:`CampaignStore`, the directory handle
  tying it together, plus the ``load_*`` consumers.

The package is numpy-only and a dependency leaf: nothing here imports the
rest of the repo at module scope, so every layer can use it.
"""

from .disk import read_frame, write_frame
from .frame import CampaignFrame
from .manifest import MANIFEST_NAME, ShardRecord, StoreManifest
from .query import (
    AmbiguousQueryError,
    GroupedFrame,
    LazyFrame,
    PivotTable,
    mtd_percentiles,
    pareto_front,
    single_row,
    verdict_pivot,
)
from .schema import (
    SCHEMA_VERSION,
    ColumnSpec,
    FrameSchema,
    StoreError,
    kind_of_row,
    schema_for,
)
from .store import (
    CampaignStore,
    grid_fingerprint,
    load_campaign_frames,
    load_campaign_result,
    load_sweep_rows,
    open_store,
)

__all__ = [
    "AmbiguousQueryError",
    "CampaignFrame",
    "CampaignStore",
    "ColumnSpec",
    "FrameSchema",
    "GroupedFrame",
    "LazyFrame",
    "MANIFEST_NAME",
    "PivotTable",
    "SCHEMA_VERSION",
    "ShardRecord",
    "StoreError",
    "StoreManifest",
    "grid_fingerprint",
    "kind_of_row",
    "load_campaign_frames",
    "load_campaign_result",
    "load_sweep_rows",
    "mtd_percentiles",
    "open_store",
    "pareto_front",
    "read_frame",
    "schema_for",
    "single_row",
    "verdict_pivot",
    "write_frame",
]
