"""The query layer over :class:`~repro.store.frame.CampaignFrame`.

Three levels, smallest first:

* :class:`LazyFrame` — a deferred ``filter``/``select`` pipeline
  (:meth:`CampaignFrame.lazy`): operations accumulate and run in one pass on
  :meth:`~LazyFrame.collect`, so composing a query never materializes
  intermediate frames;
* :class:`GroupedFrame` — ``group_by(...).agg(...)`` aggregations over key
  columns (deterministic sorted-group order, nulls dropped per column);
* campaign-specific reports — :func:`mtd_percentiles` (messages-to-disclosure
  quantiles per group, undisclosed rows counted separately),
  :func:`verdict_pivot` (disclosed/flagged fraction matrix over two label
  axes) and :func:`pareto_front` (non-dominated rows over minimize/maximize
  objective columns — e.g. protection vs area, dissymmetry vs wirelength).

Aggregate and pivot results are *derived* frames/tables: they no longer map
to a result dataclass and are meant for analysis, not persistence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .frame import CampaignFrame
from .schema import ColumnSpec, FrameSchema, StoreError


class AmbiguousQueryError(LookupError):
    """A query expected one row but matched several (the matches are named
    in the message); tighten the key instead of trusting the first hit."""


# ------------------------------------------------------------- lazy queries
class LazyFrame:
    """A deferred query plan over one frame.

    ``filter``/``select`` calls stack up without touching the data;
    :meth:`collect` executes the plan front to back.  The plan objects are
    immutable — every call returns a new :class:`LazyFrame` — so partial
    plans can be shared and extended independently.
    """

    def __init__(self, frame: CampaignFrame,
                 plan: Tuple[Tuple[str, object], ...] = ()):
        self._frame = frame
        self._plan = plan

    def filter(self, predicate=None, **equals) -> "LazyFrame":
        return LazyFrame(self._frame,
                         self._plan + (("filter", (predicate, equals)),))

    def select(self, *names: str) -> "LazyFrame":
        return LazyFrame(self._frame, self._plan + (("select", names),))

    def collect(self) -> CampaignFrame:
        frame = self._frame
        for op, payload in self._plan:
            if op == "filter":
                predicate, equals = payload
                frame = frame.filter(predicate, **equals)
            else:
                frame = frame.select(*payload)
        return frame

    def group_by(self, *keys: str) -> "GroupedFrame":
        """Execute the plan and group the result (terminal)."""
        return GroupedFrame(self.collect(), keys)

    def __len__(self) -> int:
        return len(self.collect())


# ------------------------------------------------------------- aggregation
_PERCENTILE_NAME = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


def _aggregate(values: np.ndarray, how) -> float:
    """One aggregate over the valid (non-null) values of a group."""
    if callable(how):
        return float(how(values))
    if values.size == 0:
        return float("nan")
    if how == "min":
        return float(values.min())
    if how == "max":
        return float(values.max())
    if how == "mean":
        return float(values.mean())
    if how == "median":
        return float(np.median(values))
    if how == "sum":
        return float(values.sum())
    if how == "std":
        return float(values.std())
    match = _PERCENTILE_NAME.match(how) if isinstance(how, str) else None
    if match:
        return float(np.percentile(values, float(match.group(1))))
    raise StoreError(
        f"unknown aggregate {how!r}; expected min/max/mean/median/sum/std, "
        "a percentile like 'p90', or a callable")


class GroupedFrame:
    """Rows grouped by key columns, awaiting a terminal ``agg``."""

    def __init__(self, frame: CampaignFrame, keys: Sequence[str]):
        if not keys:
            raise StoreError("group_by needs at least one key column")
        for key in keys:
            frame.schema.column(key)
        self._frame = frame
        self._keys = tuple(keys)

    def groups(self) -> List[Tuple[Tuple, np.ndarray]]:
        """(key tuple, row indices) per group, in sorted key order."""
        frame = self._frame
        key_columns = [frame.column(key) for key in self._keys]
        by_key: Dict[Tuple, List[int]] = {}
        for index in range(len(frame)):
            key = tuple(column[index].item() for column in key_columns)
            by_key.setdefault(key, []).append(index)
        return [(key, np.asarray(by_key[key], dtype=np.intp))
                for key in sorted(by_key)]

    def agg(self, **aggregates: Tuple[str, object]) -> CampaignFrame:
        """One row per group: key columns plus ``name=(column, how)`` stats.

        ``how`` is ``min``/``max``/``mean``/``median``/``sum``/``std``, a
        percentile name like ``"p90"``, or a callable over the group's valid
        values; ``name="count"`` shorthand ``name=(column, "count")`` counts
        valid values, and every result frame carries a ``rows`` column with
        the group size.  Nulls are dropped per column before aggregating
        (an all-null group aggregates to NaN).
        """
        if not aggregates:
            raise StoreError("agg needs at least one name=(column, how)")
        frame = self._frame
        for name, (column, _how) in aggregates.items():
            frame.schema.column(column)
            if name in self._keys or name == "rows":
                raise StoreError(f"aggregate name {name!r} collides with a "
                                 "key/rows column")
        groups = self.groups()
        key_specs = tuple(ColumnSpec(frame.schema.column(key).name,
                                     frame.schema.column(key).kind)
                          for key in self._keys)
        out_columns: Dict[str, List] = {key: [] for key in self._keys}
        out_columns["rows"] = []
        for name in aggregates:
            out_columns[name] = []
        for key, indices in groups:
            for key_name, key_value in zip(self._keys, key):
                out_columns[key_name].append(key_value)
            out_columns["rows"].append(len(indices))
            for name, (column, how) in aggregates.items():
                values = frame.column(column)[indices]
                valid = ~frame.null_mask(column)[indices]
                values = values[valid]
                if how == "count":
                    out_columns[name].append(float(values.size))
                else:
                    out_columns[name].append(
                        _aggregate(np.asarray(values, dtype=float), how))
        specs = key_specs + (ColumnSpec("rows", "int"),) + tuple(
            ColumnSpec(name, "float") for name in aggregates)
        schema = FrameSchema(kind=f"{frame.schema.kind}:agg", columns=specs)
        arrays = {}
        for spec in specs:
            if spec.kind == "str":
                dtype = np.str_ if out_columns[spec.name] else "U1"
            else:
                dtype = {"int": np.int64, "float": np.float64,
                         "bool": np.bool_}[spec.kind]
            arrays[spec.name] = np.asarray(out_columns[spec.name],
                                           dtype=dtype)
        return CampaignFrame(schema, arrays)


# ----------------------------------------------------- campaign-level views
def mtd_percentiles(frame: CampaignFrame, *,
                    by: Sequence[str] = ("design",),
                    q: Sequence[float] = (50, 90, 99),
                    column: str = "disclosure") -> CampaignFrame:
    """Messages-to-disclosure quantiles per group of a campaign frame.

    Rows whose ``column`` is null never disclosed within the trace budget;
    they are excluded from the percentiles and reported in the
    ``undisclosed`` column instead (the percentiles are therefore
    *conditional on disclosure* — read them next to the count).
    """
    aggregates = {f"p{value:g}": (column, f"p{value:g}") for value in q}
    aggregates["disclosed"] = (column, "count")
    result = frame.group_by(*by).agg(**aggregates)
    disclosed = result.column("disclosed").astype(np.int64)
    undisclosed = result.column("rows") - disclosed
    specs = result.schema.columns + (ColumnSpec("undisclosed", "int"),)
    columns = {spec.name: result.column(spec.name)
               for spec in result.schema.columns}
    columns["undisclosed"] = undisclosed.astype(np.int64)
    return CampaignFrame(FrameSchema(kind=result.schema.kind, columns=specs),
                         columns)


@dataclass
class PivotTable:
    """A two-axis fraction matrix (e.g. disclosed rate design × attack)."""

    row_axis: str
    col_axis: str
    value: str
    row_labels: List[str]
    col_labels: List[str]
    fractions: np.ndarray
    counts: np.ndarray

    def fraction(self, row: str, col: str) -> float:
        return float(self.fractions[self.row_labels.index(row),
                                    self.col_labels.index(col)])

    def as_table(self) -> str:
        width = max([10] + [len(label) + 2 for label in self.col_labels])
        left = max([len(self.row_axis)]
                   + [len(label) for label in self.row_labels]) + 2
        header = f"{self.row_axis:<{left}s}" + "".join(
            f"{label:>{width}s}" for label in self.col_labels)
        lines = [f"{self.value} rate by {self.row_axis} x {self.col_axis}",
                 header, "-" * len(header)]
        for row_index, label in enumerate(self.row_labels):
            cells = []
            for col_index in range(len(self.col_labels)):
                if self.counts[row_index, col_index] == 0:
                    cells.append(f"{'-':>{width}s}")
                else:
                    cells.append(
                        f"{self.fractions[row_index, col_index]:>{width}.2f}")
            lines.append(f"{label:<{left}s}" + "".join(cells))
        return "\n".join(lines)


def verdict_pivot(frame: CampaignFrame, *, rows: str = "design",
                  cols: str = "attack",
                  value: Optional[str] = None) -> PivotTable:
    """The verdict-fraction matrix of a campaign or assessment frame.

    ``value`` defaults per kind: campaign frames pivot the *disclosed*
    verdict (``rank_of_correct == 1``; rows without a known key count as
    not disclosed), assessment frames the TVLA ``flagged`` verdict (rows
    without a verdict are excluded from their cell's denominator).
    """
    if value is None:
        if frame.kind == "campaign":
            value = "disclosed"
        elif frame.kind == "assessment":
            value = "flagged"
        else:
            raise StoreError(f"no default pivot value for frame kind "
                             f"{frame.kind!r}; pass value=...")
    if value == "disclosed" and "disclosed" not in frame.schema.names():
        rank = frame.column("rank_of_correct")
        verdict = (rank == 1) & ~frame.null_mask("rank_of_correct")
        counted = np.ones(len(frame), dtype=bool)
    else:
        verdict = frame.column(value).astype(bool)
        counted = ~frame.null_mask(value)
    row_values = frame.column(rows)
    col_values = frame.column(cols)
    row_labels = sorted({str(label) for label in row_values})
    col_labels = sorted({str(label) for label in col_values})
    fractions = np.full((len(row_labels), len(col_labels)), np.nan)
    counts = np.zeros((len(row_labels), len(col_labels)), dtype=np.int64)
    for row_index, row_label in enumerate(row_labels):
        row_mask = (row_values == row_label) & counted
        for col_index, col_label in enumerate(col_labels):
            cell = row_mask & (col_values == col_label)
            count = int(cell.sum())
            counts[row_index, col_index] = count
            if count:
                fractions[row_index, col_index] = \
                    float(verdict[cell].mean())
    return PivotTable(row_axis=rows, col_axis=cols, value=value,
                      row_labels=row_labels, col_labels=col_labels,
                      fractions=fractions, counts=counts)


def pareto_front(frame: CampaignFrame, *,
                 minimize: Sequence[str] = (),
                 maximize: Sequence[str] = ()) -> CampaignFrame:
    """The non-dominated rows over the named objective columns.

    A row is kept when no other row is at least as good in every objective
    and strictly better in one (ties keep both).  Rows with a null in any
    objective are excluded.  The classic use is the protection-vs-cost
    trade-off: ``pareto_front(sweep, minimize=("max_dissymmetry",
    "wirelength_um"))`` or disclosure-resistance vs area.  Row order of the
    input is preserved.
    """
    names = tuple(minimize) + tuple(maximize)
    if len(names) < 2:
        raise StoreError("pareto_front needs at least two objective columns")
    valid = np.ones(len(frame), dtype=bool)
    for name in names:
        valid &= ~frame.null_mask(name)
    indices = np.flatnonzero(valid)
    objectives = np.column_stack(
        [np.asarray(frame.column(name)[indices], dtype=float)
         for name in minimize]
        + [-np.asarray(frame.column(name)[indices], dtype=float)
           for name in maximize])
    keep = _non_dominated(objectives)
    return frame.take(np.sort(indices[keep]))


def _non_dominated(points: np.ndarray) -> np.ndarray:
    """Indices of the minimization-pareto-optimal rows of ``points``."""
    count, dims = points.shape
    if count == 0:
        return np.empty(0, dtype=np.intp)
    if dims == 2:
        # Sorted sweep: within one f0 value only the f1 minima survive, and
        # only when strictly below every f1 seen at smaller f0.
        order = np.lexsort((points[:, 1], points[:, 0]))
        kept: List[int] = []
        best = np.inf
        cursor = 0
        while cursor < count:
            f0 = points[order[cursor], 0]
            stop = cursor
            while stop < count and points[order[stop], 0] == f0:
                stop += 1
            group = order[cursor:stop]
            group_min = points[group, 1].min()
            if group_min < best:
                kept.extend(int(i) for i in group
                            if points[i, 1] == group_min)
                best = group_min
            cursor = stop
        return np.asarray(sorted(kept), dtype=np.intp)
    keep = np.ones(count, dtype=bool)
    for index in range(count):
        if not keep[index]:
            continue
        others = points[keep]
        dominated = (np.all(others <= points[index], axis=1)
                     & np.any(others < points[index], axis=1))
        if dominated.any():
            keep[index] = False
    return np.flatnonzero(keep)


def single_row(frame: CampaignFrame, label_columns: Sequence[str],
               **equals) -> int:
    """The index of the unique row matching ``equals`` — the strict lookup
    behind :meth:`repro.core.flow.CampaignResult.row`.

    Raises :class:`KeyError` when nothing matches and
    :class:`AmbiguousQueryError` (listing the matching label tuples) when
    the key is partial enough to match several rows.
    """
    matches = frame.indices_where(**equals)
    if len(matches) == 0:
        criteria = ", ".join(f"{k}={v!r}" for k, v in equals.items())
        raise KeyError(f"no {frame.kind} row matches {criteria}")
    if len(matches) > 1:
        labels = [tuple(str(frame.column(name)[index])
                        for name in label_columns)
                  for index in matches]
        criteria = ", ".join(f"{k}={v!r}" for k, v in equals.items())
        shown = ", ".join(repr(label) for label in labels[:8])
        if len(labels) > 8:
            shown += f", ... ({len(labels) - 8} more)"
        raise AmbiguousQueryError(
            f"{len(matches)} {frame.kind} rows match {criteria}: {shown}; "
            f"narrow the query with "
            f"{'/'.join(label_columns)} to a unique row")
    return int(matches[0])
