"""The campaign store: a directory of shard npz files behind one manifest.

Layout of a store directory (``kind`` is ``campaign`` or ``sweep``)::

    manifest.json                      # grid identity + completion records
    shard-00007-rows.npz               # one frame per table per scenario
    shard-00007-assessments.npz
    ...
    frame.npz                          # merged main table (after finalize)
    assessments.npz                    # merged assessment table (campaign)

:class:`CampaignStore` is the producer handle used by
:meth:`repro.core.flow.AttackCampaign.run` and
:meth:`repro.pnr.sweep.PlacementSweep.run`: ``open`` creates or resumes the
manifest (refusing grid mismatches), ``write_shard`` persists one completed
scenario (frames first, manifest after — crash-safe), ``finalize`` writes
the merged tables.  The reader side is :func:`load_campaign_result` /
:func:`load_sweep_rows`, which also serve *partial* stores by merging
whatever shards completed before a crash.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs.telemetry import current
from .disk import read_frame, write_frame
from .frame import CampaignFrame
from .manifest import ShardRecord, StoreManifest
from .schema import StoreError

logger = logging.getLogger(__name__)

#: Filename of each merged table (the main table keeps the historic name).
_MERGED_NAMES = {"rows": "frame.npz"}


def grid_fingerprint(payload: Dict[str, object]) -> str:
    """A stable digest of everything that shapes a run's result table.

    The payload must be JSON-serializable (labels, counts, seeds, knob
    values — *not* callables: noise factories and custom trace sources are
    represented by their labels, which is as far as equality can be checked
    without executing them).
    """
    try:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except TypeError as error:
        raise StoreError(f"grid fingerprint payload is not JSON-stable: "
                         f"{error}") from None
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class CampaignStore:
    """Producer/consumer handle on one store directory."""

    def __init__(self, path: Union[str, Path], manifest: StoreManifest):
        self.path = Path(path)
        self.manifest = manifest

    # ------------------------------------------------------------- opening
    @classmethod
    def open(cls, path: Union[str, Path], *, kind: str,
             scenario_keys: Sequence[str], fingerprint: str,
             metadata: Optional[Dict[str, str]] = None) -> "CampaignStore":
        """Create a fresh store or resume an existing compatible one."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        existing = StoreManifest.load_if_present(path)
        if existing is not None:
            existing.check_compatible(kind=kind, fingerprint=fingerprint,
                                      scenario_keys=list(scenario_keys))
            logger.info("resuming %s store at %s: %d/%d shards complete",
                        kind, path, len(existing.completed_keys()),
                        len(existing.scenario_keys))
            return cls(path, existing)
        manifest = StoreManifest(kind=kind, fingerprint=fingerprint,
                                 scenario_keys=list(scenario_keys),
                                 metadata=dict(metadata or {}))
        manifest.save(path)
        return cls(path, manifest)

    # ------------------------------------------------------------- shards
    def completed_keys(self) -> List[str]:
        return self.manifest.completed_keys()

    def pending_keys(self) -> List[str]:
        return self.manifest.pending_keys()

    def _shard_filename(self, index: int, table: str) -> str:
        return f"shard-{index:05d}-{table}.npz"

    def write_shard_tables(self, key: str,
                           tables: Dict[str, CampaignFrame]) -> ShardRecord:
        """Write one scenario's shard frames to disk — manifest untouched.

        The returned :class:`ShardRecord` is the tiny, picklable receipt a
        :mod:`repro.serve` worker ships back to the scheduler, which alone
        calls :meth:`commit_shard`: writers may be many processes, but the
        manifest has exactly one owner, so resume state never races.
        """
        try:
            index = self.manifest.scenario_keys.index(key)
        except ValueError:
            raise StoreError(f"shard key {key!r} is not a scenario of this "
                             "store") from None
        filenames = {}
        rows = {}
        for table, frame in tables.items():
            filename = self._shard_filename(index, table)
            write_frame(frame, self.path / filename)
            filenames[table] = filename
            rows[table] = len(frame)
        return ShardRecord(key=key, index=index, tables=filenames, rows=rows)

    def commit_shard(self, record: ShardRecord) -> None:
        """Record an already-written shard in the manifest (crash-safe:
        the frames were durable before this runs)."""
        telemetry = current()
        self.manifest.record_shard(record)
        self.manifest.save(self.path)
        telemetry.count("shards_written")
        telemetry.count("rows_spilled", sum(record.rows.values()))

    def write_shard(self, key: str,
                    tables: Dict[str, CampaignFrame]) -> ShardRecord:
        """Persist one completed scenario (frames first, manifest after)."""
        with current().span("store.write_shard", key=key):
            record = self.write_shard_tables(key, tables)
            self.commit_shard(record)
        return record

    def read_shard(self, key: str) -> Dict[str, CampaignFrame]:
        record = self.manifest.shards.get(key)
        if record is None:
            raise StoreError(f"scenario {key!r} has no completed shard")
        tables = {}
        for table, filename in record.tables.items():
            frame = read_frame(self.path / filename)
            if len(frame) != record.rows[table]:
                raise StoreError(
                    f"shard {filename} holds {len(frame)} rows; manifest "
                    f"records {record.rows[table]} — store is corrupt")
            tables[table] = frame
        return tables

    # -------------------------------------------------------------- merge
    def merge_tables(self, table_kinds: Dict[str, str],
                     keys: Optional[Sequence[str]] = None,
                     cache: Optional[Dict[str, Dict[str, CampaignFrame]]]
                     = None) -> Dict[str, CampaignFrame]:
        """Concatenate shard frames in scenario order, per table.

        ``table_kinds`` names each table and its frame kind (for empty
        stores); ``keys`` defaults to every completed scenario.  ``cache``
        maps keys to their in-memory table dicts — shards a producer just
        wrote skip the disk round trip (npy serialization is bit-exact, so
        the merge is identical either way).
        """
        keys = list(self.completed_keys() if keys is None else keys)
        cache = cache or {}
        telemetry = current()
        with telemetry.span("store.merge", shards=len(keys),
                            tables=len(table_kinds)):
            shards = [cache[key] if key in cache else self.read_shard(key)
                      for key in keys]
            merged = {}
            for table, kind in table_kinds.items():
                merged[table] = CampaignFrame.concat(
                    [tables[table] for tables in shards if table in tables],
                    kind=kind)
            telemetry.count("rows_merged",
                            sum(len(frame) for frame in merged.values()))
        return merged

    def finalize(self, tables: Dict[str, CampaignFrame]) -> None:
        """Write the merged tables and mark the manifest complete."""
        with current().span("store.finalize", tables=len(tables)):
            merged = {}
            for table, frame in tables.items():
                filename = _MERGED_NAMES.get(table, f"{table}.npz")
                write_frame(frame, self.path / filename)
                merged[table] = filename
            self.manifest.merged = merged
            self.manifest.save(self.path)
        logger.info("finalized %s store at %s (%d merged tables)",
                    self.manifest.kind, self.path, len(merged))

    def read_merged(self, table: str) -> CampaignFrame:
        filename = self.manifest.merged.get(table)
        if filename is None:
            raise StoreError(f"store at {self.path} has no merged "
                             f"{table!r} table (run did not finalize); "
                             "use merge_tables for a partial view")
        return read_frame(self.path / filename)


# -------------------------------------------------------------- consumers
def open_store(path: Union[str, Path]) -> CampaignStore:
    """Open an existing store directory read-only-ish (manifest as found)."""
    return CampaignStore(Path(path), StoreManifest.load(path))


def _merged_or_partial(store: CampaignStore, table: str,
                       kind: str) -> CampaignFrame:
    if table in store.manifest.merged:
        return store.read_merged(table)
    return store.merge_tables({table: kind})[table]


def load_campaign_frames(path: Union[str, Path]
                         ) -> Dict[str, CampaignFrame]:
    """The (merged or partial) row/assessment frames of a campaign store."""
    store = open_store(path)
    if store.manifest.kind != "campaign":
        raise StoreError(f"store at {path} holds {store.manifest.kind!r} "
                         "results, not campaign results")
    return {
        "rows": _merged_or_partial(store, "rows", "campaign"),
        "assessments": _merged_or_partial(store, "assessments",
                                          "assessment"),
    }


def load_campaign_result(path: Union[str, Path]):
    """Rebuild a :class:`repro.core.flow.CampaignResult` from a store.

    Incomplete stores (crashed runs) load too: the result then holds the
    rows of every *completed* scenario, in scenario order — queryable
    without re-running anything.
    """
    from ..core.flow import CampaignResult

    frames = load_campaign_frames(path)
    return CampaignResult(rows=frames["rows"].to_rows(),
                          assessments=frames["assessments"].to_rows())


def load_sweep_rows(path: Union[str, Path]):
    """Rebuild a :class:`repro.pnr.sweep.SweepResult` from a sweep store."""
    from ..pnr.sweep import SweepResult

    store = open_store(path)
    if store.manifest.kind != "sweep":
        raise StoreError(f"store at {path} holds {store.manifest.kind!r} "
                         "results, not placement-sweep results")
    frame = _merged_or_partial(store, "rows", "sweep")
    return SweepResult(
        flow=store.manifest.metadata.get("flow", ""),
        design=store.manifest.metadata.get("design", ""),
        rows=frame.to_rows(),
    )
